"""One-shot driver: regenerate the paper's headline results in a minute.

Runs condensed versions of the Fig 14 / 15 / 16 experiments and prints a
single paper-vs-measured summary. The full per-figure harness lives in
``benchmarks/`` (pytest benchmarks with assertions); this script is the
human-readable tour.

Run:  python examples/paper_reproduction.py
"""

from repro import Chip, Hypervisor, MeshShape, VNpuSpec, sim_config
from repro.arch.config import fpga_config
from repro.arch.dma import DmaEngine, TensorAccess
from repro.arch.topology import Topology
from repro.baselines.mig import mig_partitions, place_on_mig
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.core.vchunk import RangeTranslator
from repro.mem.address_space import PhysicalTranslator
from repro.mem.page_table import PageTableTranslator
from repro.runtime.session import compile_model, estimate_together
from repro.workloads import gpt2, resnet, transformer_block

MB = 1 << 20


def fig14_headline() -> tuple[float, float]:
    """vChunk vs IOTLB4 overhead on a ResNet-50 weight stream."""
    tensors, va = [], 0x1_0000
    for layer in resnet(50).layers:
        if layer.weight_bytes:
            nbytes = min(layer.weight_bytes, 1 * MB)
            tensors.append(TensorAccess(va, nbytes))
            va += (nbytes + 0xFFF) & ~0xFFF
    span = (va + 0xFFF) & ~0xFFF

    vchunk = RangeTranslator(tlb_entries=4)
    for tensor in tensors:
        vchunk.map_range(tensor.virtual_address, tensor.virtual_address,
                         tensor.nbytes)
    pages = PageTableTranslator(tlb_entries=4)
    pages.map_range(0, 0, span)

    def cycles(translator):
        return DmaEngine(0, translator, bytes_per_cycle=4.0).stream_weights(
            tensors, streams=6).total_cycles

    baseline = cycles(PhysicalTranslator())
    return (cycles(vchunk) / baseline - 1, cycles(pages) / baseline - 1)


def fig15_headline() -> float:
    """Single-instance transformer: UVM time over vNPU time."""
    chip = Chip(fpga_config())
    hv = Hypervisor(chip, min_block=1 << 16)
    vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 2 * MB))
    model = transformer_block(64, 16)
    placed = compile_model(model, vnpu, chip)
    noc = estimate_together(chip, [placed])[model.name]
    uvm = estimate_together(chip, [placed], uvm_tasks={model.name})[model.name]
    return uvm.iteration_cycles / noc.iteration_cycles


def fig16_headline() -> float:
    """GPT2-large: vNPU fps over MIG fps on a 48-core chip."""
    config = sim_config(48)
    model = gpt2("large", 256)

    chip = Chip(config)
    hv = Hypervisor(chip)
    hv.create_vnpu(VNpuSpec("gpt2-small", MeshShape(3, 4), 256 * MB))
    large = hv.create_vnpu(VNpuSpec("gpt2-large", MeshShape(6, 6), 1024 * MB))
    vnpu_fps = estimate_together(
        chip, [compile_model(model, large, chip)])[model.name].fps

    mig_chip = Chip(config)
    halves = mig_partitions(config, 2)
    mapped = map_stages(
        partition(model, 36, weight_zone_bytes=config.core.weight_zone_bytes),
        Topology.mesh2d(6, 6))
    mig_fps = estimate_together(
        mig_chip,
        [place_on_mig(mapped, halves[1], mig_chip.topology)])[model.name].fps
    return vnpu_fps / mig_fps


def main() -> None:
    print("reproducing headline results (full harness: pytest benchmarks/)\n")
    vchunk, iotlb4 = fig14_headline()
    rows = [
        ("Fig 14: vChunk translation overhead", "< 4.3%", f"{vchunk:.1%}"),
        ("Fig 14: IOTLB4 translation overhead", "~20%", f"{iotlb4:.1%}"),
        ("Fig 15: transformer, UVM / vNPU time", "2.29x",
         f"{fig15_headline():.2f}x"),
        ("Fig 16: GPT2-large, vNPU / MIG fps", "up to 1.92x",
         f"{fig16_headline():.2f}x"),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'experiment'.ljust(width)}  {'paper':>12s}  {'measured':>9s}")
    for name, paper, measured in rows:
        print(f"{name.ljust(width)}  {paper:>12s}  {measured:>9s}")


if __name__ == "__main__":
    main()
