"""Quickstart: carve a virtual NPU out of a 36-core chip and deploy a model.

Run:  python examples/quickstart.py
"""

from repro import Chip, Hypervisor, MeshShape, VNpuSpec, deploy, sim_config
from repro.workloads import resnet

MB = 1 << 20


def main() -> None:
    # A 6x6 inter-core connected NPU (Table 2's SIM configuration).
    chip = Chip(sim_config(36))
    hypervisor = Hypervisor(chip)

    # Request a 4x6 virtual topology with 256 MB of HBM.
    vnpu = hypervisor.create_vnpu(
        VNpuSpec("tenant-a", MeshShape(4, 6), memory_bytes=256 * MB))
    print(f"vNPU {vnpu.vmid} ({vnpu.name!r})")
    print(f"  physical cores : {vnpu.physical_cores}")
    print(f"  routing table  : {type(vnpu.routing_table).__name__} "
          f"({vnpu.routing_table.entry_count} entries)")
    print(f"  RTT entries    : {vnpu.translator.entry_count} "
          f"(buddy blocks mapped as ranges)")
    print(f"  mapping        : {vnpu.mapping.strategy}, "
          f"edit distance {vnpu.mapping.distance}")

    # Compile and deploy ResNet-34 onto the virtual topology.
    report = deploy(resnet(34), vnpu, chip)
    print(f"\nResNet-34 on {vnpu.core_count} cores:")
    print(f"  throughput : {report.fps:,.0f} inferences/s")
    print(f"  iteration  : {report.iteration_cycles:,} cycles")
    print(f"  warm-up    : {report.warmup_cycles:,} cycles "
          f"({chip.seconds(report.warmup_cycles) * 1e3:.2f} ms)")
    print(f"  bottleneck : {report.bottleneck}")

    print(f"\nchip utilization: {hypervisor.core_utilization():.0%}")


if __name__ == "__main__":
    main()
