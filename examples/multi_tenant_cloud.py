"""Multi-tenant cloud scenario: vNPU vs MIG on one 48-core chip.

Two tenants share the chip: GPT2-small (needs 12 cores) and GPT2-large
(needs 36). vNPU allocates exactly what each asked for; MIG hands each a
fixed 24-core half — stranding cores under the small tenant and forcing
time-division multiplexing on the large one.

Run:  python examples/multi_tenant_cloud.py
"""

from repro import Chip, Hypervisor, MeshShape, VNpuSpec, sim_config
from repro.arch.topology import Topology
from repro.baselines.mig import mig_partitions, place_on_mig
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.runtime.session import compile_model, estimate_together
from repro.workloads import gpt2

MB = 1 << 20
SEQ = 256


def run_vnpu(config):
    chip = Chip(config)
    hypervisor = Hypervisor(chip)
    small = hypervisor.create_vnpu(
        VNpuSpec("gpt2-small", MeshShape(3, 4), 256 * MB))
    large = hypervisor.create_vnpu(
        VNpuSpec("gpt2-large", MeshShape(6, 6), 1024 * MB))
    placed = [
        compile_model(gpt2("small", SEQ), small, chip),
        compile_model(gpt2("large", SEQ), large, chip),
    ]
    return estimate_together(chip, placed), hypervisor.core_utilization()


def run_mig(config):
    chip = Chip(config)
    halves = mig_partitions(config, count=2)
    weight_zone = config.core.weight_zone_bytes
    small = map_stages(
        partition(gpt2("small", SEQ), 12, weight_zone_bytes=weight_zone),
        Topology.mesh2d(3, 4))
    large = map_stages(
        partition(gpt2("large", SEQ), 36, weight_zone_bytes=weight_zone),
        Topology.mesh2d(6, 6))
    placed = [
        place_on_mig(small, halves[0], chip.topology),
        place_on_mig(large, halves[1], chip.topology),
    ]
    used = {core for task in placed for core in task.core_macs}
    return estimate_together(chip, placed), len(used) / config.core_count


def main() -> None:
    config = sim_config(48)
    vnpu_reports, vnpu_util = run_vnpu(config)
    mig_reports, mig_util = run_mig(config)

    print(f"{'tenant':12s} {'vNPU fps':>10s} {'MIG fps':>10s} {'speedup':>8s}")
    for tenant in ("gpt2-small", "gpt2-large"):
        v = vnpu_reports[tenant].fps
        m = mig_reports[tenant].fps
        print(f"{tenant:12s} {v:10,.0f} {m:10,.0f} {v / m:7.2f}x")

    print(f"\nactive-core utilization: vNPU {vnpu_util:.0%} vs MIG {mig_util:.0%}")
    print("\nwarm-up (cycles):")
    for tenant in ("gpt2-small", "gpt2-large"):
        print(f"  {tenant:12s} vNPU {vnpu_reports[tenant].warmup_cycles:>10,} "
              f"MIG {mig_reports[tenant].warmup_cycles:>10,}")


if __name__ == "__main__":
    main()
