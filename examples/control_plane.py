"""Always-on serving: a control plane, a wire client, a warm restart.

Starts a :class:`ControlPlane` on a Unix socket in ``realtime`` mode
(simulated cycles advance with scaled wall time), admits a declarative
:class:`TraceSpec` workload over the newline-delimited JSON protocol,
watches the live metrics move, then drains, snapshots and restores the
whole service from the checkpoint file.

Run:  python examples/control_plane.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.serving import (
    DEFAULT_SLO_MIX,
    ControlPlane,
    ServiceClient,
    ServingConfig,
    TraceSpec,
)


async def demo() -> None:
    # The whole scheduler configuration as one declarative object —
    # the same dict crosses sockets and checkpoint files.
    config = ServingConfig.from_dict({
        "policy": "priority",
        "elastic": "shrink_then_preempt",
    })
    spec = TraceSpec(max_cores=16, arrival_process="bursty",
                     slo_mix=DEFAULT_SLO_MIX,
                     mean_interarrival_cycles=500_000)
    trace = spec.generate(seed=7, sessions=24)

    with tempfile.TemporaryDirectory(prefix="control-plane-") as scratch:
        socket_path = str(Path(scratch) / "serving.sock")
        plane = ControlPlane(chips=4, cores=16, config=config,
                             mode="realtime",
                             cycles_per_second=2_000_000_000)
        await plane.start(unix_path=socket_path)
        client = await ServiceClient.connect(unix_path=socket_path)

        print(f"control plane up on unix:{socket_path}")
        for session in trace:
            response = await client.admit(session)
            if response["status"] == "busy":
                print(f"  backpressure: retry in "
                      f"{response['retry_after_cycles']:,} cycles")
        status = (await client.status())
        print(f"admitted {status['admitted_total']} sessions "
              f"(queue depth {status['queue_depth']}/"
              f"{status['max_pending']})")

        # Let the realtime pacer move the clock with the wall for a
        # moment, then look at the live metrics endpoint.
        await asyncio.sleep(0.25)
        live = await client.metrics()
        print(f"realtime: cycle {live['cycle']:,}, "
              f"{live['active']} active, {live['pending']} pending, "
              f"{live['summary']['sessions_completed']} completed, "
              f"mapper hit rate {live['mapper']['hit_rate']:.0%}")

        # Finish the run explicitly, checkpoint, and shut the service.
        done = await client.drain()
        summary = done["summary"]
        print(f"drained: {summary['sessions_completed']} sessions, "
              f"makespan {summary['makespan_cycles']:,} cycles, "
              f"p95 queue delay "
              f"{summary['queue_delay_cycles']['p95']:,.0f} cycles")
        snap_path = str(Path(scratch) / "serving.snapshot.pkl")
        await client.snapshot(snap_path)
        await client.shutdown()
        await client.close()
        await plane.stop()

        # Warm restart: a fresh process would do exactly this (see
        # `python -m repro.serving.service --restore ... --drain`).
        restored = ControlPlane.restore(snap_path, autostart=False)
        print(f"restored from {Path(snap_path).name} at cycle "
              f"{restored.fleet.sim.now:,} with "
              f"{restored.fleet.active_count} active sessions")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
