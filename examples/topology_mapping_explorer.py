"""Topology-mapping explorer: watch allocation strategies carve a chip.

Renders the 6x6 mesh as ASCII after each allocation and compares the
exact / similar / straightforward strategies on a fragmented chip —
including the paper's "topology lock-in" failure.

Run:  python examples/topology_mapping_explorer.py
"""

from repro import Chip, Hypervisor, MeshShape, VNpuSpec, sim_config
from repro.errors import TopologyLockIn

MB = 1 << 20
GLYPHS = "ABCDEFGH"


def render(chip, hypervisor) -> str:
    owner = {}
    for index, vnpu in enumerate(hypervisor.vnpus):
        for core in vnpu.physical_cores:
            owner[core] = GLYPHS[index % len(GLYPHS)]
    rows = []
    for row in range(chip.config.mesh_rows):
        cells = []
        for col in range(chip.config.mesh_cols):
            core = row * chip.config.mesh_cols + col
            cells.append(owner.get(core, "."))
        rows.append(" ".join(cells))
    return "\n".join(rows)


def main() -> None:
    chip = Chip(sim_config(36))
    hypervisor = Hypervisor(chip)

    print("empty 6x6 chip:")
    print(render(chip, hypervisor))

    a = hypervisor.create_vnpu(
        VNpuSpec("A", MeshShape(3, 3), 64 * MB), strategy="exact")
    print(f"\nA: exact 3x3 -> cores {a.physical_cores}")
    print(render(chip, hypervisor))

    b = hypervisor.create_vnpu(
        VNpuSpec("B", MeshShape(2, 5), 64 * MB), strategy="exact")
    print(f"\nB: exact 2x5 -> cores {b.physical_cores}")
    print(render(chip, hypervisor))

    # A 4x4 cannot fit exactly any more: the paper's topology lock-in.
    try:
        hypervisor.create_vnpu(
            VNpuSpec("C", MeshShape(4, 4), 64 * MB), strategy="exact")
    except TopologyLockIn as exc:
        print(f"\nC: exact 4x4 -> TopologyLockIn: {exc}")

    c = hypervisor.create_vnpu(
        VNpuSpec("C", MeshShape(4, 4), 64 * MB), strategy="similar")
    print(f"\nC: similar 4x4 -> cores {c.physical_cores} "
          f"(edit distance {c.mapping.distance})")
    print(render(chip, hypervisor))

    leftover = hypervisor.free_core_count()
    d = hypervisor.create_vnpu(
        VNpuSpec("D", MeshShape(1, leftover), 16 * MB, noc_isolation=False),
        strategy="fragmented")
    print(f"\nD: fragmented 1x{leftover} -> cores {d.physical_cores} "
          f"(connected: {d.mapping.connected})")
    print(render(chip, hypervisor))

    print(f"\nfinal utilization: {hypervisor.core_utilization():.0%} "
          f"({36 - hypervisor.free_core_count()}/36 cores)")


if __name__ == "__main__":
    main()
