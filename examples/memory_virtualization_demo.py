"""vChunk memory virtualization demo: ranges vs pages, caps in action.

Streams BERT's weights through the three translation schemes of Fig 14,
dumps the live Range Translation Table, and shows the per-vNPU bandwidth
cap throttling a noisy neighbour.

Run:  python examples/memory_virtualization_demo.py
"""

from repro.arch.dma import DmaEngine, TensorAccess
from repro.core.vchunk import AccessCounter, RangeTranslator
from repro.mem.address_space import PhysicalTranslator
from repro.mem.page_table import PageTableTranslator
from repro.workloads import bert_base

MB = 1 << 20


def tensors_for(model, cap=1 * MB):
    out, va = [], 0x1_0000
    for layer in model.layers:
        if layer.weight_bytes:
            nbytes = min(layer.weight_bytes, cap)
            out.append(TensorAccess(va, nbytes))
            va += (nbytes + 0xFFF) & ~0xFFF
    return out


def main() -> None:
    model = bert_base()
    tensors = tensors_for(model)
    total = sum(t.nbytes for t in tensors)
    print(f"streaming {total / MB:.1f} MB of {model.name} weights "
          f"({len(tensors)} tensors)\n")

    # --- translation schemes -------------------------------------------------
    span = tensors[-1].virtual_address + tensors[-1].nbytes
    span = (span + 0xFFF) & ~0xFFF

    schemes = {}
    vchunk = RangeTranslator(tlb_entries=4)
    for tensor in tensors:
        vchunk.map_range(tensor.virtual_address, tensor.virtual_address,
                         tensor.nbytes)
    schemes["vChunk (range)"] = vchunk
    for entries in (32, 4):
        pages = PageTableTranslator(tlb_entries=entries)
        pages.map_range(0, 0, span)
        schemes[f"IOTLB{entries} (pages)"] = pages
    schemes["physical"] = PhysicalTranslator()

    print(f"{'scheme':16s} {'entries':>8s} {'cycles':>12s} {'stall %':>8s}")
    baseline = None
    for name, translator in schemes.items():
        engine = DmaEngine(0, translator, bytes_per_cycle=4.0)
        result = engine.stream_weights(tensors, streams=6)
        if name == "physical":
            baseline = result.total_cycles
        entries = getattr(translator, "entry_count", 0)
        stall = 100 * result.translation_stall_cycles / result.total_cycles
        print(f"{name:16s} {entries:8d} {result.total_cycles:12,} "
              f"{stall:7.1f}%")
    print(f"\n(1 RTT entry per tensor vs "
          f"{span // 4096:,} page-table entries for the same span)")

    # --- peek at the RTT walker state ---------------------------------------
    print("\nfirst RTT entries (after streaming, last_v hints learned):")
    for index, entry in enumerate(vchunk.table.entries[:5]):
        print(f"  [{index}] VA {entry.virtual_address:#9x} size "
              f"{entry.size:>9,} last_v={entry.last_v}")
    print(f"  range-TLB hit rate: {vchunk.hit_rate:.1%}, "
          f"last_v refills: {vchunk.last_v_hits}")

    # --- bandwidth cap --------------------------------------------------------
    print("\nbandwidth cap (Access Counter): 64 KB per 10k-cycle window")
    counter = AccessCounter(window_cycles=10_000,
                            max_bytes_per_window=64 * 1024)
    capped = DmaEngine(0, PhysicalTranslator(), bytes_per_cycle=4.0,
                       access_counter=counter)
    result = capped.stream_weights(tensors[:8], streams=4)
    print(f"  throttle stalls: {result.throttle_stall_cycles:,} cycles "
          f"on a {result.payload_bytes / MB:.1f} MB stream")


if __name__ == "__main__":
    main()
