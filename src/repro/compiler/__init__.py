"""repro.compiler subpackage (regular package so ``pip install`` ships it)."""
