"""Pipeline partitioner: split a model graph across NPU cores.

Layers are kept in topological order and split into contiguous *stages*,
one stage per core, minimizing the bottleneck stage's MAC count (the
classic chains-on-chains problem, solved exactly by binary search over
the bottleneck + greedy feasibility). When a virtual NPU has more cores
than the model has layers, the heaviest stages are *tensor-split* across
several cores (work divides; an intra-stage all-gather flow appears).

Scratchpad capacity is a hard constraint: a stage's weights must fit in
one core's weight zone, and an infeasible split raises
:class:`~repro.errors.CompilationError` rather than silently spilling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.workloads.graph import ModelGraph


@dataclass
class Stage:
    """One pipeline stage: a contiguous slice of layers on >= 1 cores."""

    index: int
    layer_indices: list[int]
    #: Number of cores this stage is tensor-split across.
    parallelism: int = 1
    #: Weights exceed the scratchpad even after splitting: stream them
    #: from HBM each iteration through vChunk (§4.2's large-model case).
    streaming: bool = False

    def macs(self, graph: ModelGraph) -> int:
        return sum(graph.layers[i].macs for i in self.layer_indices)

    def weight_bytes(self, graph: ModelGraph) -> int:
        return sum(graph.layers[i].weight_bytes for i in self.layer_indices)

    def macs_per_core(self, graph: ModelGraph) -> int:
        return -(-self.macs(graph) // self.parallelism)

    def weight_bytes_per_core(self, graph: ModelGraph) -> int:
        return -(-self.weight_bytes(graph) // self.parallelism)


@dataclass
class Partition:
    """The full pipeline plan for one model on ``core_count`` cores."""

    graph: ModelGraph
    stages: list[Stage]
    core_count: int
    #: stage index -> list of pipeline-position slots (one per core).
    stage_slots: list[list[int]] = field(default_factory=list)

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    def bottleneck_macs(self) -> int:
        return max(stage.macs_per_core(self.graph) for stage in self.stages)

    def stage_of_layer(self, layer_index: int) -> int:
        for stage in self.stages:
            if layer_index in stage.layer_indices:
                return stage.index
        raise CompilationError(f"layer {layer_index} not in any stage")


def _greedy_fits(loads: list[int], stages: int, bottleneck: int) -> bool:
    """Can ``loads`` split into <= ``stages`` contiguous runs <= bottleneck?"""
    used = 1
    current = 0
    for load in loads:
        if load > bottleneck:
            return False
        if current + load > bottleneck:
            used += 1
            current = 0
            if used > stages:
                return False
        current += load
    return True


def _split_contiguous(loads: list[int], stages: int) -> list[list[int]]:
    """Optimal min-bottleneck contiguous split (indices per stage)."""
    low = max(loads) if loads else 0
    high = sum(loads)
    while low < high:
        mid = (low + high) // 2
        if _greedy_fits(loads, stages, mid):
            high = mid
        else:
            low = mid + 1
    bottleneck = low
    groups: list[list[int]] = [[]]
    current = 0
    for index, load in enumerate(loads):
        remaining_items = len(loads) - index
        remaining_groups = stages - len(groups)
        must_break = groups[-1] and remaining_items <= remaining_groups
        if groups[-1] and (current + load > bottleneck or must_break):
            groups.append([])
            current = 0
        groups[-1].append(index)
        current += load
    return groups


def partition(graph: ModelGraph, core_count: int,
              weight_zone_bytes: int | None = None) -> Partition:
    """Split ``graph`` into a pipeline over ``core_count`` cores."""
    if core_count < 1:
        raise CompilationError(f"need at least one core, got {core_count}")
    if graph.layer_count == 0:
        raise CompilationError(f"model {graph.name!r} has no layers")

    loads = [layer.macs for layer in graph.layers]
    stage_count = min(core_count, graph.layer_count)
    groups = _split_contiguous(loads, stage_count)
    stages = [
        Stage(index=i, layer_indices=group)
        for i, group in enumerate(groups)
    ]

    # Distribute leftover cores: first to stages whose weights overflow
    # the scratchpad (splitting shrinks the per-core footprint), then to
    # the compute-heaviest stages (tensor parallel for throughput).
    spare = core_count - len(stages)
    if weight_zone_bytes is not None:
        oversized = [
            s for s in stages
            if s.weight_bytes_per_core(graph) > weight_zone_bytes
        ]
        for stage in sorted(oversized,
                            key=lambda s: -s.weight_bytes(graph)):
            while (spare > 0
                   and stage.weight_bytes_per_core(graph) > weight_zone_bytes):
                stage.parallelism += 1
                spare -= 1
    while spare > 0:
        heaviest = max(stages, key=lambda s: s.macs_per_core(graph))
        if heaviest.macs(graph) == 0:
            break  # nothing left worth splitting
        heaviest.parallelism += 1
        spare -= 1

    if weight_zone_bytes is not None:
        for stage in stages:
            if stage.weight_bytes_per_core(graph) > weight_zone_bytes:
                # Even fully split the weights do not fit: stream them
                # from global memory every iteration instead of pinning.
                stage.streaming = True

    # Assign pipeline slots: stage i occupies slots [start, start+par).
    slots: list[list[int]] = []
    cursor = 0
    for stage in stages:
        slots.append(list(range(cursor, cursor + stage.parallelism)))
        cursor += stage.parallelism
    return Partition(graph=graph, stages=stages, core_count=core_count,
                     stage_slots=slots)
