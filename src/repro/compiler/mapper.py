"""Stage-to-core mapping and flow extraction.

The partitioner produces pipeline *slots* (stage replicas); the mapper
binds each slot to a virtual core of the task's topology and derives the
NoC *flows* (per-iteration messages) implied by the model graph:

- inter-stage flows carry the producer layer's output activations;
- tensor-split stages add intra-stage all-gather flows between replicas.

Slots are laid along a snake (boustrophedon BFS) walk of the virtual
topology so consecutive pipeline stages land on adjacent virtual cores —
the adjacency the dataflow programming model expects (§3.1). How *far*
those virtual neighbours end up physically is the hypervisor's mapping
quality, which is exactly what Fig 18 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.compiler.partitioner import Partition
from repro.errors import CompilationError


@dataclass(frozen=True)
class VirtualFlow:
    """One per-iteration message between two virtual cores."""

    src_vcore: int
    dst_vcore: int
    nbytes: int
    kind: str  # "pipeline" | "allgather"


@dataclass
class MappedTask:
    """A model bound to virtual cores: compute + flows, pre-vRouter."""

    name: str
    partition: Partition
    #: pipeline slot -> virtual core
    slot_to_vcore: list[int]
    #: virtual core -> MACs per iteration
    compute_macs: dict[int, int]
    #: virtual core -> weight bytes resident (per-core scratchpad demand)
    weight_bytes: dict[int, int]
    #: virtual core -> weight bytes re-streamed from HBM every iteration
    #: (stages whose weights exceed the scratchpad even when split).
    stream_bytes: dict[int, int] = field(default_factory=dict)
    flows: list[VirtualFlow] = field(default_factory=list)

    @property
    def vcores(self) -> list[int]:
        return sorted(self.compute_macs)

    def total_flow_bytes(self) -> int:
        return sum(flow.nbytes for flow in self.flows)


def snake_order(topology: Topology) -> list[int]:
    """Boustrophedon walk when coordinates exist, BFS otherwise.

    On a mesh the walk visits each row alternately left-to-right and
    right-to-left, so consecutive cores are always physically adjacent.
    """
    if topology.coords:
        def key(node):
            row, col = topology.coords[node]
            return (row, col if row % 2 == 0 else -col)
        return sorted(topology.nodes, key=key)
    start = min(topology.nodes, key=topology.degree)
    return topology.bfs_order(start)


def map_stages(partition: Partition, topology: Topology,
               name: str | None = None) -> MappedTask:
    """Bind pipeline slots to virtual cores and derive flows."""
    slot_count = sum(stage.parallelism for stage in partition.stages)
    if slot_count > topology.node_count:
        raise CompilationError(
            f"partition needs {slot_count} cores but topology "
            f"{topology.name!r} has {topology.node_count}"
        )
    order = snake_order(topology)
    slot_to_vcore = order[:slot_count]
    graph = partition.graph

    compute: dict[int, int] = {}
    weights: dict[int, int] = {}
    streams: dict[int, int] = {}
    stage_cores: list[list[int]] = []
    for stage in partition.stages:
        cores = [slot_to_vcore[slot] for slot in partition.stage_slots[stage.index]]
        stage_cores.append(cores)
        for core in cores:
            compute[core] = stage.macs_per_core(graph)
            if stage.streaming:
                weights[core] = 0
                streams[core] = stage.weight_bytes_per_core(graph)
            else:
                weights[core] = stage.weight_bytes_per_core(graph)

    flows: list[VirtualFlow] = []
    seen: set[tuple[int, int, str]] = set()

    # Inter-stage flows from model-graph edges.
    for src_layer, dst_layer in graph.edges:
        src_stage = partition.stage_of_layer(src_layer)
        dst_stage = partition.stage_of_layer(dst_layer)
        if src_stage == dst_stage:
            continue
        nbytes = graph.layers[src_layer].output_bytes
        if nbytes == 0:
            continue
        src_cores = stage_cores[src_stage]
        dst_cores = stage_cores[dst_stage]
        # Activations are sharded over replicas on both sides.
        share = max(1, nbytes // (len(src_cores) * len(dst_cores)))
        for src_core in src_cores:
            for dst_core in dst_cores:
                key = (src_core, dst_core, "pipeline")
                flows.append(VirtualFlow(src_core, dst_core, share, "pipeline"))
                seen.add(key)

    # Intra-stage all-gather between replicas of a split stage.
    for stage, cores in zip(partition.stages, stage_cores):
        if len(cores) < 2:
            continue
        out_bytes = sum(
            graph.layers[i].output_bytes for i in stage.layer_indices
        )
        share = max(1, out_bytes // len(cores))
        for i, src_core in enumerate(cores):
            dst_core = cores[(i + 1) % len(cores)]  # ring all-gather
            flows.append(VirtualFlow(src_core, dst_core, share, "allgather"))

    return MappedTask(
        name=name or graph.name,
        partition=partition,
        slot_to_vcore=slot_to_vcore,
        compute_macs=compute,
        weight_bytes=weights,
        stream_bytes=streams,
        flows=flows,
    )
