"""Placement: bind a mapped task to physical cores through a vNPU.

This is where the guest/host boundary sits: the mapper speaks virtual
core IDs; placement pushes every core reference and every flow through
the vNPU's routing table and NoC vRouter, yielding physical cores and
concrete packet routes. ``place_bare_metal`` is the no-virtualization
control (identical maths, no vRouter latencies) used for the < 1 %
overhead comparison in §6.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch import calibration
from repro.arch.topology import Topology
from repro.compiler.mapper import MappedTask
from repro.core.vnpu import VirtualNPU
from repro.errors import CompilationError


@dataclass(frozen=True)
class PhysicalFlow:
    """A per-iteration message with a concrete route."""

    src: int
    dst: int
    nbytes: int
    path: tuple[int, ...]
    kind: str

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


@dataclass
class PlacedTask:
    """A task fully bound to physical resources."""

    name: str
    vmid: int | None
    core_macs: dict[int, int]
    weight_bytes: dict[int, int]
    #: physical core -> bytes streamed from HBM every iteration.
    stream_bytes: dict[int, int] = field(default_factory=dict)
    flows: list[PhysicalFlow] = field(default_factory=list)
    #: Extra engine-occupancy cycles per flow per iteration added by the
    #: vRouter (RT lookup + rewrite on send, meta fetch on receive).
    vrouter_overhead: int = 0
    #: Physical cores owned (for interference/ownership accounting).
    owned_cores: frozenset[int] = frozenset()

    @property
    def cores(self) -> list[int]:
        return sorted(self.core_macs)

    def total_weight_bytes(self) -> int:
        return sum(self.weight_bytes.values())

    def foreign_traversals(self) -> int:
        """Path nodes outside the task's owned cores (NoC interference)."""
        return sum(
            sum(1 for node in flow.path if node not in self.owned_cores)
            for flow in self.flows
        )


def place_on_vnpu(mapped: MappedTask, vnpu: VirtualNPU,
                  chip_topology: Topology) -> PlacedTask:
    """Push a mapped task through the vNPU's vRouters."""
    missing = [v for v in mapped.vcores if v not in vnpu.mapping.vmap]
    if missing:
        raise CompilationError(
            f"task {mapped.name!r} uses virtual cores {missing} not present "
            f"in vNPU {vnpu.name!r}"
        )
    vmap = vnpu.mapping.vmap
    flows = []
    for flow in mapped.flows:
        route = vnpu.noc_vrouter.resolve(flow.src_vcore, flow.dst_vcore)
        path = route.path
        if path is None:
            if route.p_src == route.p_dst:
                path = [route.p_src]
            else:
                path = chip_topology.dor_path(route.p_src, route.p_dst)
        flows.append(PhysicalFlow(
            src=route.p_src, dst=route.p_dst, nbytes=flow.nbytes,
            path=tuple(path), kind=flow.kind,
        ))
    overhead = (calibration.VROUTER_RT_LOOKUP + calibration.VROUTER_REWRITE
                + calibration.VROUTER_META_FETCH)
    return PlacedTask(
        name=mapped.name,
        vmid=vnpu.vmid,
        core_macs={vmap[v]: macs for v, macs in mapped.compute_macs.items()},
        weight_bytes={vmap[v]: b for v, b in mapped.weight_bytes.items()},
        stream_bytes={vmap[v]: b for v, b in mapped.stream_bytes.items()},
        flows=flows,
        vrouter_overhead=overhead,
        owned_cores=frozenset(vnpu.physical_cores),
    )


def place_bare_metal(mapped: MappedTask,
                     chip_topology: Topology) -> PlacedTask:
    """Identity placement: virtual cores *are* physical cores."""
    for vcore in mapped.vcores:
        if vcore not in chip_topology:
            raise CompilationError(
                f"bare-metal task {mapped.name!r} references core {vcore} "
                f"absent from the chip"
            )
    flows = []
    for flow in mapped.flows:
        if flow.src_vcore == flow.dst_vcore:
            path = [flow.src_vcore]
        else:
            path = chip_topology.dor_path(flow.src_vcore, flow.dst_vcore)
        flows.append(PhysicalFlow(
            src=flow.src_vcore, dst=flow.dst_vcore, nbytes=flow.nbytes,
            path=tuple(path), kind=flow.kind,
        ))
    return PlacedTask(
        name=mapped.name,
        vmid=None,
        core_macs=dict(mapped.compute_macs),
        weight_bytes=dict(mapped.weight_bytes),
        stream_bytes=dict(mapped.stream_bytes),
        flows=flows,
        vrouter_overhead=0,
        owned_cores=frozenset(chip_topology.nodes),
    )
