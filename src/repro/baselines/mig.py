"""MIG-style NPU virtualization baseline (§6.3.2, Fig 16).

Commercial NPUs (e.g. TPU v6e) partition the chip into a *fixed* set of
rectangular sub-topologies; a tenant takes a whole partition whatever it
asked for. Inside a partition, inter-core connections work and isolation
across partitions is strong — the equitable baseline the paper compares
against. The two failure modes vNPU fixes:

- **under-utilization** — a 12-core request occupies an 18- or 24-core
  partition; the extra cores idle;
- **over-subscription** — a 36-core request on a 24-core partition falls
  back to time-division multiplexing (:mod:`repro.baselines.tdm`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import SoCConfig
from repro.arch.topology import Topology
from repro.baselines.tdm import bind_tdm
from repro.compiler.mapper import MappedTask, snake_order
from repro.compiler.placement import PhysicalFlow, PlacedTask
from repro.errors import AllocationError


@dataclass(frozen=True)
class MigPartition:
    """One fixed partition: an aligned rectangle of the chip mesh."""

    index: int
    cores: tuple[int, ...]
    rows: int
    cols: int

    @property
    def core_count(self) -> int:
        return len(self.cores)


def mig_partitions(config: SoCConfig, count: int = 2) -> list[MigPartition]:
    """Split the chip into ``count`` equal row-bands (the MIG catalog)."""
    if count < 1 or config.mesh_rows % count:
        raise AllocationError(
            f"cannot split {config.mesh_rows} mesh rows into {count} "
            f"equal partitions"
        )
    rows_per = config.mesh_rows // count
    partitions = []
    for index in range(count):
        cores = tuple(
            r * config.mesh_cols + c
            for r in range(index * rows_per, (index + 1) * rows_per)
            for c in range(config.mesh_cols)
        )
        partitions.append(MigPartition(index=index, cores=cores,
                                       rows=rows_per, cols=config.mesh_cols))
    return partitions


def place_on_mig(mapped: MappedTask, partition: MigPartition,
                 chip_topology: Topology,
                 load_aware_tdm: bool = True) -> PlacedTask:
    """Bind a mapped task to a MIG partition (TDM when too small).

    Virtual cores walk the partition in snake order; when the task has
    more virtual cores than the partition, TDM binding shares physical
    cores. MIG needs no vRouter, so no per-flow virtualization overhead —
    but also no flexibility.
    """
    partition_topology = chip_topology.subtopology(partition.cores)
    walk = snake_order(partition_topology)
    vcores = mapped.vcores

    if len(vcores) <= len(walk):
        binding = dict(zip(vcores, walk))
    else:
        loads = {
            vcore: mapped.compute_macs.get(vcore, 0) for vcore in vcores
        }
        binding = bind_tdm(loads, list(walk), load_aware=load_aware_tdm)

    core_macs: dict[int, int] = {}
    weight_bytes: dict[int, int] = {}
    stream_bytes: dict[int, int] = {}
    for vcore in vcores:
        pcore = binding[vcore]
        core_macs[pcore] = (core_macs.get(pcore, 0)
                            + mapped.compute_macs.get(vcore, 0))
        weight_bytes[pcore] = (weight_bytes.get(pcore, 0)
                               + mapped.weight_bytes.get(vcore, 0))
        if vcore in mapped.stream_bytes:
            stream_bytes[pcore] = (stream_bytes.get(pcore, 0)
                                   + mapped.stream_bytes[vcore])

    flows = []
    for flow in mapped.flows:
        p_src, p_dst = binding[flow.src_vcore], binding[flow.dst_vcore]
        if p_src == p_dst:
            continue  # co-resident virtual cores exchange via scratchpad
        path = chip_topology.dor_path(p_src, p_dst)
        flows.append(PhysicalFlow(
            src=p_src, dst=p_dst, nbytes=flow.nbytes,
            path=tuple(path), kind=flow.kind,
        ))

    return PlacedTask(
        name=mapped.name,
        vmid=None,
        core_macs=core_macs,
        weight_bytes=weight_bytes,
        stream_bytes=stream_bytes,
        flows=flows,
        vrouter_overhead=0,
        owned_cores=frozenset(partition.cores),
    )
