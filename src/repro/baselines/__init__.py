"""repro.baselines subpackage (regular package so ``pip install`` ships it)."""
