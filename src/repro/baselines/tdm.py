"""Time-division multiplexing of virtual cores onto physical cores.

MIG's escape hatch (§6.3.2): when a tenant needs more cores than its
fixed partition provides, several *virtual* cores share one *physical*
core by time slicing. The physical core's per-iteration busy time is the
sum of its virtual cores' loads, so pipeline throughput drops by the
worst core's multiplexing burden.

Two binding policies:

- ``load_aware=True`` — longest-processing-time (LPT) bin packing: heavy
  virtual cores are paired with light ones, which is why the paper sees
  MIG lose only ~1.28x on imbalanced ResNet but ~1.92x on uniform GPT.
- ``load_aware=False`` — naive round-robin, for the ablation.
"""

from __future__ import annotations

import heapq

from repro.errors import AllocationError


def bind_tdm(virtual_loads: dict[int, int], physical_cores: list[int],
             load_aware: bool = True) -> dict[int, int]:
    """Assign virtual cores to physical cores; returns vcore -> pcore."""
    if not physical_cores:
        raise AllocationError("TDM binding needs at least one physical core")
    if not virtual_loads:
        return {}
    if len(set(physical_cores)) != len(physical_cores):
        raise AllocationError("duplicate physical cores in TDM binding")

    if not load_aware:
        ordered = sorted(virtual_loads)
        return {
            vcore: physical_cores[index % len(physical_cores)]
            for index, vcore in enumerate(ordered)
        }

    # LPT: place each virtual core (heaviest first) on the currently
    # least-loaded physical core.
    heap = [(0, pcore) for pcore in physical_cores]
    heapq.heapify(heap)
    binding: dict[int, int] = {}
    for vcore in sorted(virtual_loads, key=virtual_loads.get, reverse=True):
        load, pcore = heapq.heappop(heap)
        binding[vcore] = pcore
        heapq.heappush(heap, (load + virtual_loads[vcore], pcore))
    return binding


def tdm_factor(binding: dict[int, int],
               virtual_loads: dict[int, int]) -> float:
    """Worst-case slowdown: busiest physical core's load over the busiest
    virtual core's load (1.0 = no multiplexing penalty)."""
    if not binding:
        return 1.0
    per_physical: dict[int, int] = {}
    for vcore, pcore in binding.items():
        per_physical[pcore] = per_physical.get(pcore, 0) + virtual_loads[vcore]
    busiest_physical = max(per_physical.values())
    busiest_virtual = max(virtual_loads.values())
    return busiest_physical / busiest_virtual if busiest_virtual else 1.0
