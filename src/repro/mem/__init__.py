"""Memory-system substrate: translation schemes, allocator, traces."""

from repro.mem.address_space import (
    PhysicalTranslator,
    TranslationResult,
    Translator,
)
from repro.mem.buddy import Block, BuddyAllocator
from repro.mem.page_table import IoTlb, PageTableTranslator
from repro.mem.trace import MemoryTrace, TracePatternReport

__all__ = [
    "Block",
    "BuddyAllocator",
    "IoTlb",
    "MemoryTrace",
    "PageTableTranslator",
    "PhysicalTranslator",
    "TracePatternReport",
    "TranslationResult",
    "Translator",
]
