"""Address-translation interfaces shared by all translation schemes.

The DMA engine is written against :class:`Translator`, so the page-based
baseline ("IOTLB" in Fig 14), the vChunk range translator and the
no-translation physical mode are interchangeable.

Access-permission strings follow the paper's RTT permission field: any
subset of ``"R"`` (read), ``"W"`` (write), ``"X"`` (execute).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import TranslationFault

VALID_PERMISSIONS = frozenset("RWX")


def check_permission_string(perm: str) -> str:
    if not perm or any(ch not in VALID_PERMISSIONS for ch in perm):
        raise TranslationFault(0, detail=f"invalid permission string {perm!r}")
    return perm


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one translation lookup."""

    virtual_address: int
    physical_address: int
    #: Bytes from ``virtual_address`` for which this translation holds
    #: (to the end of the page or range).
    contiguous_bytes: int
    #: Cycles the lookup cost (TLB hit latency or miss walk).
    cycles: int
    hit: bool


class Translator(ABC):
    """Translates a virtual address stream for one DMA engine."""

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def translate(self, va: int, access: str = "R") -> TranslationResult:
        """Translate one address; raises TranslationFault when unmapped."""

    def translate_span(self, va: int, nbytes: int,
                       access: str = "R") -> list[TranslationResult]:
        """Translate a byte span, one lookup per translation unit crossed."""
        if nbytes <= 0:
            raise TranslationFault(va, detail=f"span size must be positive, got {nbytes}")
        results = []
        cursor = va
        remaining = nbytes
        while remaining > 0:
            result = self.translate(cursor, access=access)
            step = min(remaining, result.contiguous_bytes)
            results.append(result)
            cursor += step
            remaining -= step
        return results

    def _record(self, hit: bool) -> None:
        self.lookups += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 1.0

    def reset_stats(self) -> None:
        self.lookups = self.hits = self.misses = 0


class PhysicalTranslator(Translator):
    """Identity mapping with zero cost — the paper's "Physical Mem" bar."""

    def __init__(self, span_bytes: int = 1 << 48) -> None:
        super().__init__()
        self.span_bytes = span_bytes

    def translate(self, va: int, access: str = "R") -> TranslationResult:
        check_permission_string(access)
        if va < 0 or va >= self.span_bytes:
            raise TranslationFault(va, detail="outside physical span")
        self._record(hit=True)
        return TranslationResult(
            virtual_address=va,
            physical_address=va,
            contiguous_bytes=self.span_bytes - va,
            cycles=0,
            hit=True,
        )
