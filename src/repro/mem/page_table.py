"""Page-based translation baseline: page table plus a small IOTLB.

This is the scheme the paper argues is a poor fit for NPU DMA streams
(§4.2): fixed 4 KB pages mean a multi-megabyte weight tensor spans
thousands of translation units, and with looping access patterns an LRU
TLB smaller than the working set thrashes — every page access walks.
Fig 14's ``IOTLB4`` / ``IOTLB32`` bars are this translator with 4 and 32
entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.arch import calibration
from repro.errors import PermissionFault, TranslationFault
from repro.mem.address_space import (
    TranslationResult,
    Translator,
    check_permission_string,
)


@dataclass(frozen=True)
class PageTableEntry:
    virtual_page: int
    physical_page: int
    permissions: str


class IoTlb:
    """A small, LRU, fully-associative translation cache."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise TranslationFault(0, detail=f"TLB needs >= 1 entry, got {entries}")
        self.capacity = entries
        self._entries: OrderedDict[int, PageTableEntry] = OrderedDict()

    def lookup(self, virtual_page: int) -> PageTableEntry | None:
        entry = self._entries.get(virtual_page)
        if entry is not None:
            self._entries.move_to_end(virtual_page)
        return entry

    def insert(self, entry: PageTableEntry) -> None:
        self._entries[entry.virtual_page] = entry
        self._entries.move_to_end(entry.virtual_page)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PageTableTranslator(Translator):
    """Per-VM page table walked on IOTLB misses."""

    def __init__(self, tlb_entries: int = 32,
                 page_size: int = calibration.PAGE_SIZE,
                 walk_latency: int = calibration.PAGE_WALK_LATENCY,
                 hit_latency: int = calibration.TLB_HIT_LATENCY) -> None:
        super().__init__()
        if page_size <= 0 or page_size & (page_size - 1):
            raise TranslationFault(0, detail=f"page size must be a power of two, got {page_size}")
        self.page_size = page_size
        self.walk_latency = walk_latency
        self.hit_latency = hit_latency
        self.tlb = IoTlb(tlb_entries)
        self._table: dict[int, PageTableEntry] = {}

    # -- mapping management (hypervisor side) --------------------------------
    def map_range(self, va: int, pa: int, nbytes: int,
                  permissions: str = "RW") -> int:
        """Map ``nbytes`` starting at page-aligned ``va`` -> ``pa``.

        Returns the number of page-table entries created — the footprint
        cost the paper contrasts with the RTT's single entry per range.
        """
        check_permission_string(permissions)
        if va % self.page_size or pa % self.page_size:
            raise TranslationFault(va, detail="mappings must be page-aligned")
        if nbytes <= 0:
            raise TranslationFault(va, detail="mapping size must be positive")
        pages = (nbytes + self.page_size - 1) // self.page_size
        for index in range(pages):
            vpage = va // self.page_size + index
            ppage = pa // self.page_size + index
            self._table[vpage] = PageTableEntry(vpage, ppage, permissions)
        return pages

    def unmap_range(self, va: int, nbytes: int) -> None:
        pages = (nbytes + self.page_size - 1) // self.page_size
        for index in range(pages):
            self._table.pop(va // self.page_size + index, None)
        self.tlb.flush()

    @property
    def entry_count(self) -> int:
        return len(self._table)

    # -- translation -----------------------------------------------------------
    def translate(self, va: int, access: str = "R") -> TranslationResult:
        check_permission_string(access)
        vpage, offset = divmod(va, self.page_size)
        cached = self.tlb.lookup(vpage)
        if cached is not None:
            entry, cycles, hit = cached, self.hit_latency, True
        else:
            entry = self._table.get(vpage)
            if entry is None:
                self._record(hit=False)
                raise TranslationFault(va, detail="no page-table entry")
            self.tlb.insert(entry)
            cycles, hit = self.walk_latency, False
        self._record(hit=hit)
        if any(ch not in entry.permissions for ch in access):
            raise PermissionFault(va, requested=access, granted=entry.permissions)
        return TranslationResult(
            virtual_address=va,
            physical_address=entry.physical_page * self.page_size + offset,
            contiguous_bytes=self.page_size - offset,
            cycles=cycles,
            hit=hit,
        )
