"""Global-memory access-trace capture and pattern analysis (Fig 6, §4.2).

The paper motivates vChunk with three access patterns observed in NPU
weight streaming:

- **Pattern-1** — transfers happen at tensor granularity;
- **Pattern-2** — within one iteration each core's addresses increase
  monotonically;
- **Pattern-3** — iterations repeat the same address sequence.

:class:`MemoryTrace` records ``(core, iteration, va, nbytes)`` events and
:class:`TracePatternReport` quantifies all three, which is what
``benchmarks/bench_fig06_trace.py`` prints for a ResNet workload.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AccessEvent:
    core: int
    iteration: int
    virtual_address: int
    nbytes: int


@dataclass
class CorePatternStats:
    """Per-core pattern metrics across all recorded iterations."""

    core: int
    accesses_per_iteration: float
    mean_access_bytes: float
    #: Fraction of consecutive same-iteration access pairs with increasing VA.
    monotonic_fraction: float
    #: Fraction of iteration pairs whose address sequences are identical.
    repeat_fraction: float


class MemoryTrace:
    """Accumulates DMA access events for pattern analysis.

    Long workloads can produce traces far bigger than the analysis
    needs, so the capture can be bounded: with ``max_events`` set, the
    trace keeps a sliding window of the *newest* events (the steady
    state is what the §4.2 patterns are about) and counts what it
    dropped. ``flush`` hands the captured window to the caller and
    resets the trace for the next capture interval.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(
                f"max_events must be positive or None, got {max_events}")
        self.max_events = max_events
        self.events: deque[AccessEvent] = deque(maxlen=max_events)
        #: Events evicted from the window since the last flush.
        self.dropped = 0

    def record(self, core: int, iteration: int, virtual_address: int,
               nbytes: int) -> None:
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(AccessEvent(core, iteration, virtual_address, nbytes))

    def flush(self) -> list[AccessEvent]:
        """Return the captured window and reset the trace (and ``dropped``)."""
        captured = list(self.events)
        self.events.clear()
        self.dropped = 0
        return captured

    def __len__(self) -> int:
        return len(self.events)

    def cores(self) -> list[int]:
        return sorted({event.core for event in self.events})

    def sequence(self, core: int, iteration: int) -> list[int]:
        """Ordered virtual addresses one core touched in one iteration."""
        return [
            event.virtual_address
            for event in self.events
            if event.core == core and event.iteration == iteration
        ]

    # -- analysis ----------------------------------------------------------
    def analyze_core(self, core: int) -> CorePatternStats:
        by_iteration: dict[int, list[AccessEvent]] = defaultdict(list)
        for event in self.events:
            if event.core == core:
                by_iteration[event.iteration].append(event)
        if not by_iteration:
            raise ValueError(f"no events recorded for core {core}")

        pair_total = 0
        pair_monotonic = 0
        total_accesses = 0
        total_bytes = 0
        for events in by_iteration.values():
            total_accesses += len(events)
            total_bytes += sum(e.nbytes for e in events)
            for first, second in zip(events, events[1:]):
                pair_total += 1
                if second.virtual_address >= first.virtual_address:
                    pair_monotonic += 1

        iterations = sorted(by_iteration)
        sequences = {
            it: [e.virtual_address for e in by_iteration[it]]
            for it in iterations
        }
        repeat_pairs = list(zip(iterations, iterations[1:]))
        repeats = sum(
            1 for a, b in repeat_pairs if sequences[a] == sequences[b]
        )
        return CorePatternStats(
            core=core,
            accesses_per_iteration=total_accesses / len(by_iteration),
            mean_access_bytes=total_bytes / total_accesses,
            monotonic_fraction=(
                pair_monotonic / pair_total if pair_total else 1.0
            ),
            repeat_fraction=(
                repeats / len(repeat_pairs) if repeat_pairs else 1.0
            ),
        )

    def analyze(self) -> list[CorePatternStats]:
        return [self.analyze_core(core) for core in self.cores()]

    def summary(self) -> "TracePatternReport":
        stats = self.analyze()
        if not stats:
            return TracePatternReport()
        return TracePatternReport(
            per_core=stats,
            monotonic_fraction=(
                sum(s.monotonic_fraction for s in stats) / len(stats)
            ),
            repeat_fraction=(
                sum(s.repeat_fraction for s in stats) / len(stats)
            ),
            mean_access_bytes=(
                sum(s.mean_access_bytes for s in stats) / len(stats)
            ),
        )


@dataclass
class TracePatternReport:
    """Chip-level aggregate of the three §4.2 patterns."""

    per_core: list[CorePatternStats] = field(default_factory=list)
    monotonic_fraction: float = 0.0
    repeat_fraction: float = 0.0
    mean_access_bytes: float = 0.0

    @property
    def tensor_granular(self) -> bool:
        """Pattern-1 holds when accesses are KB-scale chunks, not words."""
        return self.mean_access_bytes >= 1024
