"""Buddy allocator for the NPU's global memory (§5.2).

The hypervisor allocates each virtual NPU's HBM with a buddy system and
maps *whole blocks* into RTT entries — unlike a page table, which would
shatter the same block into thousands of fixed pages. Block addresses and
sizes are powers of two; adjacent free buddies coalesce on free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError


@dataclass(frozen=True)
class Block:
    """An allocated block: ``[address, address + size)``."""

    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


class BuddyAllocator:
    """Power-of-two buddy allocator over ``[base, base + capacity)``."""

    def __init__(self, capacity: int, base: int = 0,
                 min_block: int = 4096) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise AllocationError(
                f"capacity must be a positive power of two, got {capacity}"
            )
        if min_block <= 0 or min_block & (min_block - 1):
            raise AllocationError(
                f"min_block must be a positive power of two, got {min_block}"
            )
        if min_block > capacity:
            raise AllocationError("min_block larger than capacity")
        self.capacity = capacity
        self.base = base
        self.min_block = min_block
        self._max_order = (capacity // min_block).bit_length() - 1
        # free_lists[order] holds offsets (relative to base) of free blocks
        # of size min_block << order.
        self._free_lists: list[set[int]] = [set() for _ in range(self._max_order + 1)]
        self._free_lists[self._max_order].add(0)
        self._allocated: dict[int, int] = {}  # offset -> order

    # -- size bookkeeping -----------------------------------------------------
    def _order_for(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        blocks = (size + self.min_block - 1) // self.min_block
        order = max(0, (blocks - 1).bit_length())
        if order > self._max_order:
            raise OutOfMemoryError(
                f"request {size} exceeds capacity {self.capacity}"
            )
        return order

    def block_size(self, order: int) -> int:
        return self.min_block << order

    @property
    def free_bytes(self) -> int:
        return sum(
            len(offsets) * self.block_size(order)
            for order, offsets in enumerate(self._free_lists)
        )

    @property
    def allocated_bytes(self) -> int:
        return sum(self.block_size(order) for order in self._allocated.values())

    @property
    def fully_coalesced(self) -> bool:
        """True when the allocator is back to one maximal free block.

        This is the no-leak invariant: after every allocation has been
        freed, buddy coalescing must have rebuilt the initial state —
        nothing allocated, no stray sub-blocks on any free list.
        """
        if self._allocated:
            return False
        if any(self._free_lists[order] for order in range(self._max_order)):
            return False
        return self._free_lists[self._max_order] == {0}

    @property
    def allocated_blocks(self) -> list[Block]:
        return sorted(
            (Block(self.base + off, self.block_size(order))
             for off, order in self._allocated.items()),
            key=lambda b: b.address,
        )

    # -- allocation -----------------------------------------------------------
    def alloc(self, size: int) -> Block:
        """Allocate ``size`` bytes, rounded up to a power-of-two block."""
        order = self._order_for(size)
        split_from = None
        for candidate in range(order, self._max_order + 1):
            if self._free_lists[candidate]:
                split_from = candidate
                break
        if split_from is None:
            raise OutOfMemoryError(
                f"no free block for {size} bytes "
                f"(free {self.free_bytes} of {self.capacity}, fragmented)"
            )
        offset = min(self._free_lists[split_from])
        self._free_lists[split_from].remove(offset)
        while split_from > order:
            split_from -= 1
            buddy = offset + self.block_size(split_from)
            self._free_lists[split_from].add(buddy)
        self._allocated[offset] = order
        return Block(self.base + offset, self.block_size(order))

    def free(self, address: int) -> None:
        """Free the block starting at ``address``; coalesces with buddies."""
        offset = address - self.base
        order = self._allocated.pop(offset, None)
        if order is None:
            raise AllocationError(f"free of unallocated address {address:#x}")
        while order < self._max_order:
            buddy = offset ^ self.block_size(order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].remove(buddy)
            offset = min(offset, buddy)
            order += 1
        self._free_lists[order].add(offset)

    def free_all(self) -> None:
        """Reset to one maximal free block."""
        self._allocated.clear()
        self._free_lists = [set() for _ in range(self._max_order + 1)]
        self._free_lists[self._max_order].add(0)
