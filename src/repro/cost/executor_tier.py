"""The ``executor`` tier: price workloads by actually running them.

For every priced session this tier builds a *scratch chip* (same SoC
config, private simulator), reconstructs a canonical placement of the
session's placement class, lowers the compiled model to per-core
instruction streams (:mod:`repro.cost.lowering`) and runs them through
the event-driven :class:`~repro.runtime.executor.Executor` — DMA weight
loads through the vNPU's translator for warm-up, then a few measured
iterations of the dataflow pipeline with link-level NoC contention for
the steady state.

Placement classes
-----------------
Running on the live serving chip is impossible (the scheduler's own
simulator is mid-flight, and co-tenants would perturb the solo
estimate), so sessions are priced on a canonical placement derived from
their :func:`placement_class`:

- ``exact`` — the mapping landed with zero edit distance: reproduced by
  the similar mapper on an empty scratch chip;
- ``stretched`` — connected but distance > 0: reproduced by the
  straightforward (zig-zag) mapper, the canonical stretched layout;
- ``fragmented`` — disconnected core set: reproduced by punching a
  deterministic hole pattern into the scratch chip and mapping with the
  fragmented strategy.

The class is a deliberate equivalence: all placements in a class price
identically, which is what makes the ``cached`` tier's memoization both
correct (hits reproduce this tier exactly) and effective (a 500-session
trace collapses to a few dozen keys). The residual within-class spread
is part of the fidelity gap the calibration harness reports.
"""

from __future__ import annotations

import math

from repro.arch.chip import Chip
from repro.arch.config import SoCConfig
from repro.arch.topology import MeshShape
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.core.hypervisor import Hypervisor
from repro.core.topology_mapping import MappingResult
from repro.core.vnpu import VNpuSpec
from repro.cost.lowering import lower_mapped_task
from repro.cost.model import CostModel, WorkloadCost, register_cost_model
from repro.errors import AllocationError, ServingError
from repro.runtime.executor import Executor

#: Placement-class names, coarsest fidelity split first.
PLACEMENT_CLASSES = ("exact", "stretched", "fragmented")


def placement_class(mapping: MappingResult) -> str:
    """Classify a placement for cost purposes (see module docstring)."""
    if not mapping.connected:
        return "fragmented"
    if mapping.distance == 0:
        return "exact"
    return "stretched"


def _hole_pattern(chip: Chip, keep_free: int) -> list[int]:
    """Deterministic scratch-chip blockers forcing a shattered free set.

    Punches holes at even-row/odd-column cells, trimmed (largest core id
    first) until at least ``keep_free`` cores stay free.
    """
    coords = chip.topology.coords
    if coords:
        holes = [node for node in sorted(chip.topology.nodes)
                 if coords[node][0] % 2 == 0 and coords[node][1] % 2 == 1]
    else:  # pragma: no cover - meshes always carry coordinates
        holes = [node for node in sorted(chip.topology.nodes) if node % 4 == 1]
    while holes and chip.core_count - len(holes) < keep_free:
        holes.pop()
    return holes


def canonical_vnpu(hypervisor: Hypervisor, spec: VNpuSpec, klass: str):
    """Provision ``spec`` on a scratch hypervisor in placement ``klass``.

    The scratch chip must be empty; blockers for the fragmented class
    are provisioned here. If the blockers starve the request (cores or
    guest memory), they are torn down and the fragmented strategy is
    retried on the clean, unfragmented chip — the label is kept; the
    class is an approximation by construction.
    """
    if klass == "exact":
        return hypervisor.create_vnpu(spec, strategy="similar")
    if klass == "stretched":
        return hypervisor.create_vnpu(spec, strategy="straightforward")
    if klass != "fragmented":
        raise ServingError(
            f"unknown placement class {klass!r}; choose from "
            f"{PLACEMENT_CLASSES}"
        )
    holes = _hole_pattern(hypervisor.chip, spec.core_count)
    blocker_spec = VNpuSpec("cost-blocker", MeshShape(1, 1),
                            hypervisor.buddy.min_block)
    blockers = [
        hypervisor._provision(
            blocker_spec,
            MappingResult(strategy="blocker", vmap={0: node},
                          distance=0.0, connected=True),
        )
        for node in holes
    ]
    try:
        return hypervisor.create_vnpu(spec, strategy="fragmented")
    except AllocationError:
        # Holes squeezed the free set too hard (memory or mapper caps):
        # release them and price on the unfragmented chip instead.
        for blocker in blockers:
            hypervisor.destroy_vnpu(blocker.vmid)
        return hypervisor.create_vnpu(spec, strategy="fragmented")


class ExecutorCostModel(CostModel):
    """Ground-truth pricing: run the lowered workload, count the cycles.

    Compilation and lowering are memoized (pure functions of the model
    and shape); the event-driven run itself happens on every call —
    that is the cost the ``cached`` tier exists to amortize.
    """

    name = "executor"

    #: Coarse DMA burst for pricing runs: totals for bandwidth-bound
    #: weight streams are burst-size invariant (issue cost stays below
    #: the bandwidth term), so measuring at 64 KiB instead of the 512 B
    #: hardware burst trades nothing visible for a ~100x smaller event
    #: walk. Pass ``dma_burst_bytes=None`` to price at hardware grain.
    DEFAULT_PRICING_BURST = 64 * 1024

    def __init__(self, models: dict | None = None,
                 measure_iterations: int = 3,
                 dma_burst_bytes: int | None = DEFAULT_PRICING_BURST) -> None:
        super().__init__(models)
        if measure_iterations < 1:
            raise ServingError(
                f"measure_iterations must be >= 1, got {measure_iterations}")
        self.measure_iterations = measure_iterations
        self.dma_burst_bytes = dma_burst_bytes
        #: (config, model, rows, cols) -> MappedTask (compile memo).
        self._mapped: dict[tuple, object] = {}
        #: (config, model, rows, cols, guest span) -> (warmup, iteration).
        self._programs: dict[tuple, tuple] = {}
        #: Event-driven runs performed (observability for benches/tests).
        self.runs = 0

    def workload_cost(self, chip: Chip, session, vnpu) -> WorkloadCost:
        return self.measure(
            chip.config, session.model, session.rows, session.cols,
            session.memory_bytes, placement_class(vnpu.mapping),
        )

    # -- measurement -------------------------------------------------------
    def measure(self, config: SoCConfig, model_name: str, rows: int,
                cols: int, memory_bytes: int, klass: str) -> WorkloadCost:
        """Price (model, shape, memory, placement class) on ``config``.

        Deterministic: the same key always reproduces the same scratch
        chip, canonical placement and event schedule — the property the
        cached tier's exact-on-hit guarantee rests on.
        """
        scratch = Chip(config)
        hypervisor = Hypervisor(scratch)
        spec = VNpuSpec(f"cost-probe-{model_name}", MeshShape(rows, cols),
                        memory_bytes)
        vnpu = canonical_vnpu(hypervisor, spec, klass)

        mapped = self._compile(config, model_name, rows, cols, vnpu)
        warmup_prog, iteration_prog = self._lower(
            config, model_name, rows, cols, vnpu.memory_bytes, mapped)

        executor = Executor(scratch, dma_burst_bytes=self.dma_burst_bytes)
        warmup = 0
        if len(warmup_prog):
            warmup = executor.run(warmup_prog, vnpu=vnpu).total_cycles
        total = executor.run(iteration_prog, vnpu=vnpu,
                             iterations=self.measure_iterations).total_cycles
        self.runs += 1
        return WorkloadCost(
            warmup_cycles=warmup,
            iteration_cycles=max(1, math.ceil(total
                                              / self.measure_iterations)),
            tier=self.name,
            source="executor",
            placement_class=klass,
        )

    # -- memoized pure stages ----------------------------------------------
    def _compile(self, config, model_name, rows, cols, vnpu):
        key = (config.name, model_name, rows, cols)
        mapped = self._mapped.get(key)
        if mapped is None:
            model = self.build_model(model_name)
            plan = partition(
                model, vnpu.core_count,
                weight_zone_bytes=config.core.weight_zone_bytes,
            )
            mapped = map_stages(plan, vnpu.virtual_topology(),
                                name=model.name)
            self._mapped[key] = mapped
        return mapped

    def _lower(self, config, model_name, rows, cols, guest_bytes, mapped):
        key = (config.name, model_name, rows, cols, guest_bytes)
        programs = self._programs.get(key)
        if programs is None:
            programs = lower_mapped_task(mapped, guest_bytes)
            self._programs[key] = programs
        return programs


register_cost_model(ExecutorCostModel)
