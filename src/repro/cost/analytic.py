"""The ``analytic`` tier: memoized steady-state bottleneck pricing.

This is the refactored home of the serving layer's original
``ServiceTimeEstimator``: compile the session's model onto its actual
vNPU placement, run the :mod:`repro.runtime.pipeline` bottleneck model
for the iteration interval, and the §6.3.4 weight-load formula for
warm-up. Estimates are the *solo* steady state — cross-tenant slowdown
is deliberately not fed back (it would make every departure time depend
on the whole residency history); interference-prone placements stay
visible through the recorded mapping distance instead.

Costs are memoized per (chip config, model, mesh shape): under churn
the same request shapes recur, so a 500-session trace costs a handful
of compiles.
"""

from __future__ import annotations

from repro.arch.chip import Chip
from repro.cost.model import CostModel, WorkloadCost, register_cost_model
from repro.runtime.session import compile_model, estimate_together


class AnalyticCostModel(CostModel):
    """Fast closed-form pricing from the steady-state pipeline model."""

    name = "analytic"

    def __init__(self, models: dict | None = None) -> None:
        super().__init__(models)
        #: (config name, model, rows, cols) -> (warmup, iteration) cycles.
        self._cache: dict[tuple[str, str, int, int], tuple[int, int]] = {}

    def workload_cost(self, chip: Chip, session, vnpu) -> WorkloadCost:
        key = (chip.config.name, session.model, session.rows, session.cols)
        cached = self._cache.get(key)
        if cached is None:
            model = self.build_model(session.model)
            placed = compile_model(model, vnpu, chip)
            report = estimate_together(chip, [placed])[placed.name]
            cached = (report.warmup_cycles, report.iteration_cycles)
            self._cache[key] = cached
        warmup, iteration = cached
        return WorkloadCost(
            warmup_cycles=warmup,
            iteration_cycles=iteration,
            tier=self.name,
            source="analytic",
        )

    def snapshot_state(self) -> dict:
        return {"cache": dict(self._cache)}

    def restore_state(self, state: dict) -> None:
        self._cache.update(state["cache"])


register_cost_model(AnalyticCostModel)
