"""The ``cached`` tier: executor fidelity at near-analytic throughput.

Prices are memoized executor-tier measurements keyed on
``(chip config, model, mesh shape, guest memory, placement class)`` —
the executor tier's own canonical-placement key, so a cache hit returns
*exactly* the cycles the executor tier would measure. Under churn the
same (model, shape, class) triples recur constantly; a 500-session
fleet trace collapses to a few dozen event-driven runs.

On a miss the tier runs the executor once and remembers the result —
unless the configured ``max_executor_runs`` budget is spent, in which
case it *interpolates*: take the cached executor measurement of the
nearest donor key for the same model and scale it by the ratio of the
analytic tier's predictions for the two keys. The analytic model is
trusted for the *shape* of the scaling (how cost moves with core count
and placement), the executor measurement anchors the *level*. Sessions
priced this way are marked ``source="interpolated"``; with no donor at
all the analytic price is used directly (``source="analytic"``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.chip import Chip
from repro.cost.analytic import AnalyticCostModel
from repro.cost.executor_tier import ExecutorCostModel, placement_class
from repro.cost.model import CostModel, WorkloadCost, register_cost_model
from repro.errors import ServingError

#: Cache keys order placement classes for donor-distance ranking.
_CLASS_RANK = {"exact": 0, "stretched": 1, "fragmented": 2}


class CachedCostModel(CostModel):
    """Memoized executor pricing with analytic-scaled interpolation."""

    name = "cached"

    def __init__(self, models: dict | None = None,
                 max_executor_runs: int | None = None,
                 measure_iterations: int = 3) -> None:
        super().__init__(models)
        if max_executor_runs is not None and max_executor_runs < 0:
            raise ServingError(
                f"max_executor_runs must be >= 0 or None, got "
                f"{max_executor_runs}")
        self.max_executor_runs = max_executor_runs
        self._executor = ExecutorCostModel(
            models=self.models, measure_iterations=measure_iterations)
        self._analytic = AnalyticCostModel(models=self.models)
        #: key -> (served cost, analytic reference for interpolation —
        #: None when priced under an unlimited budget, where
        #: interpolation can never trigger and the reference would go
        #: unread).
        self._cache: dict[tuple,
                          tuple[WorkloadCost, WorkloadCost | None]] = {}
        self.hits = 0
        self.misses = 0
        self.executor_runs = 0
        self.interpolations = 0

    # -- model zoo ---------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        super().register_model(name, builder)
        # Sub-models hold their own copies of the table; keep them in step.
        self._executor.models[name] = builder
        self._analytic.models[name] = builder

    # -- pricing -----------------------------------------------------------
    def workload_cost(self, chip: Chip, session, vnpu) -> WorkloadCost:
        klass = placement_class(vnpu.mapping)
        key = (chip.config.name, session.model, session.rows, session.cols,
               session.memory_bytes, klass)
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            return entry[0]
        self.misses += 1
        # The analytic reference only feeds interpolation, which only
        # triggers under a finite executor budget — skip the compile on
        # the unlimited-budget default path.
        analytic = None
        if self.max_executor_runs is not None:
            analytic = self._analytic.workload_cost(chip, session, vnpu)
        if (self.max_executor_runs is None
                or self.executor_runs < self.max_executor_runs):
            self.executor_runs += 1
            cost = self._executor.measure(
                chip.config, session.model, session.rows, session.cols,
                session.memory_bytes, klass)
            cost = replace(cost, tier=self.name)
        else:
            cost = self._interpolate(key, analytic, klass)
        self._cache[key] = (cost, analytic)
        return cost

    def _interpolate(self, key: tuple, analytic: WorkloadCost,
                     klass: str) -> WorkloadCost:
        """Scale the nearest same-model executor measurement analytically."""
        donor = self._donor(key)
        if donor is None:
            return replace(analytic, tier=self.name,
                           placement_class=klass)
        donor_cost, donor_analytic = donor
        self.interpolations += 1
        return WorkloadCost(
            warmup_cycles=_scaled(donor_cost.warmup_cycles,
                                  analytic.warmup_cycles,
                                  donor_analytic.warmup_cycles),
            iteration_cycles=max(1, _scaled(donor_cost.iteration_cycles,
                                            analytic.iteration_cycles,
                                            donor_analytic.iteration_cycles)),
            tier=self.name,
            source="interpolated",
            placement_class=klass,
        )

    def _donor(self, key: tuple):
        """Closest executor-backed entry for the same config + model."""
        config_name, model, rows, cols, _memory, klass = key
        best = None
        best_rank = None
        for other, entry in self._cache.items():
            # Unlimited-budget entries carry no analytic reference (see
            # __init__) and cannot anchor a scaling ratio.
            if entry[0].source != "executor" or entry[1] is None:
                continue
            o_config, o_model, o_rows, o_cols, _o_memory, o_klass = other
            if o_config != config_name or o_model != model:
                continue
            rank = (abs(o_rows * o_cols - rows * cols),
                    abs(_CLASS_RANK[o_klass] - _CLASS_RANK[klass]),
                    o_rows, o_cols, o_klass)
            if best_rank is None or rank < best_rank:
                best, best_rank = entry, rank
        return best

    # -- checkpoint --------------------------------------------------------
    def snapshot_state(self) -> dict:
        # The executor sub-model keeps only compile caches — re-deriving
        # them is deterministic, so the memoized prices and the counters
        # are the whole behavioral state.
        return {
            "cache": dict(self._cache),
            "analytic": self._analytic.snapshot_state(),
            "hits": self.hits,
            "misses": self.misses,
            "executor_runs": self.executor_runs,
            "interpolations": self.interpolations,
        }

    def restore_state(self, state: dict) -> None:
        self._cache.update(state["cache"])
        self._analytic.restore_state(state["analytic"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.executor_runs = state["executor_runs"]
        self.interpolations = state["interpolations"]

    # -- observability -----------------------------------------------------
    def cache_stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "entries": len(self._cache),
            "executor_runs": self.executor_runs,
            "interpolations": self.interpolations,
        }


def _scaled(donor_value: int, analytic_here: int, analytic_donor: int) -> int:
    """``donor * (analytic_here / analytic_donor)``, guarding zeros."""
    if analytic_donor <= 0:
        return analytic_here
    return round(donor_value * analytic_here / analytic_donor)


register_cost_model(CachedCostModel)
