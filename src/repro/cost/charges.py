"""Shared cycle charges: migration data movement + reconfiguration.

These are the cost-engine primitives that are *not* per-workload: moving
a tenant's resident guest memory between (possibly heterogeneous) memory
systems, plus the Fig-11 routing-table reconfiguration the controller
already metered as the new vNPU's ``setup_cycles``. The hypervisor and
every :class:`~repro.cost.model.CostModel` tier route their
migration/reconfig charges through here, so the serving layer, the
fleet defragmenter and the benchmarks all agree on one formula.

This module deliberately imports nothing from :mod:`repro.cost.model` or
:mod:`repro.core` — it sits below both, which is what lets
:class:`~repro.core.hypervisor.Hypervisor` use it without an import
cycle.
"""

from __future__ import annotations

import math

from repro.arch.config import SoCConfig


def migration_data_cycles(source: SoCConfig, destination: SoCConfig,
                          resident_bytes: int) -> int:
    """Cycles to drain + refill ``resident_bytes`` of guest memory.

    The transfer runs at the slower of the two memory systems (the
    bottleneck end of the copy); zero resident bytes cost zero cycles.
    """
    if resident_bytes <= 0:
        return 0
    bytes_per_cycle = min(
        source.memory.bytes_per_cycle(source.frequency_hz),
        destination.memory.bytes_per_cycle(destination.frequency_hz),
    )
    return math.ceil(resident_bytes / bytes_per_cycle)


def migration_cycles(source: SoCConfig, destination: SoCConfig,
                     resident_bytes: int, setup_cycles: int) -> int:
    """Total live-migration charge: data movement + Fig-11 reconfig.

    ``setup_cycles`` is the destination controller's routing-table
    installation cost, already measured when the migrated vNPU was
    provisioned.
    """
    return (migration_data_cycles(source, destination, resident_bytes)
            + setup_cycles)


def resize_cycles(config: SoCConfig, retained_bytes: int,
                  setup_cycles: int, relocated: bool) -> int:
    """Live grow/shrink charge for an elastic vNPU resize.

    An *in-place* resize (the new core set contains, or is contained by,
    the old one) keeps the tenant's resident data where it is — only the
    Fig-11 routing-table reconfiguration is charged. A *relocated*
    resize (the mapper could not grow/shrink within the adjacent cores
    and re-placed the tenant) additionally copies the retained guest
    memory — ``min(old, new)`` resident bytes — through the chip's own
    memory system, priced by the same formula as a same-chip migration.
    """
    moved = retained_bytes if relocated else 0
    return migration_data_cycles(config, config, moved) + setup_cycles
