"""Lower a compiled workload into executable per-core programs.

The compiler stops at a :class:`~repro.compiler.mapper.MappedTask` —
per-virtual-core MAC counts, resident/streamed weight bytes and NoC
flows. The analytic tier prices that directly; the executor tier needs
actual instruction streams. This module synthesizes them:

- a **warm-up program**: each core DMA-loads its resident weights from
  guest memory (the §6.3.4 weight-load phase, run once);
- an **iteration program**: per core, the per-iteration weight
  re-streaming (oversized stages), the stage's compute as one fused MAC
  block, then every outgoing flow as a tagged ``Send`` with the matching
  ``Receive`` on the consumer core.

Each core issues all of its sends before any receive. Sends complete
independently of the receiver (transfers land in mailboxes), so this
ordering is deadlock-free for arbitrary flow graphs — including the
cyclic ring all-gathers the mapper emits — without needing a topological
schedule. It costs some pipelining realism (a core blocks on its own
transfer serialization), which is part of the analytic-vs-executor gap
the calibration harness measures.

Guest virtual addresses are synthesized by walking the vNPU's mapped
range cyclically: every load stays inside ``[va_base, va_base +
guest_bytes)``, the region the hypervisor's RTT actually maps, so DMA
translation behaves as it would for a real tenant.
"""

from __future__ import annotations

from repro.compiler.mapper import MappedTask
from repro.errors import ServingError
from repro.isa.program import TaskProgram

#: Matches repro.core.hypervisor.GUEST_VA_BASE without importing the
#: hypervisor (lowering sits below the core layer).
DEFAULT_VA_BASE = 0x1_0000


class _GuestWalk:
    """Hands out cyclic chunks of the guest VA window."""

    def __init__(self, base: int, span: int) -> None:
        if span <= 0:
            raise ServingError(
                f"guest memory span must be positive, got {span}")
        self.base = base
        self.span = span
        self.offset = 0

    def chunks(self, nbytes: int):
        """Yield (va, size) chunks covering ``nbytes``, wrapping the window."""
        remaining = nbytes
        while remaining > 0:
            size = min(remaining, self.span - self.offset)
            yield self.base + self.offset, size
            self.offset = (self.offset + size) % self.span
            remaining -= size


def lower_mapped_task(mapped: MappedTask, guest_bytes: int,
                      va_base: int = DEFAULT_VA_BASE,
                      ) -> tuple[TaskProgram, TaskProgram]:
    """Synthesize (warm-up, iteration) programs for ``mapped``.

    ``guest_bytes`` is the vNPU's mapped guest-memory span; all DMA
    traffic is kept inside it. The returned programs speak *virtual*
    core IDs — the executor translates through the vNPU at run time.
    """
    warmup = TaskProgram(f"{mapped.name}-warmup")
    iteration = TaskProgram(mapped.name)
    walk = _GuestWalk(va_base, guest_bytes)

    for vcore in mapped.vcores:
        weight_bytes = mapped.weight_bytes.get(vcore, 0)
        if weight_bytes > 0:
            core = warmup.core(vcore)
            for va, size in walk.chunks(weight_bytes):
                core.dma_load(va, size, label="weights")
        core = iteration.core(vcore)
        stream_bytes = mapped.stream_bytes.get(vcore, 0)
        if stream_bytes > 0:
            for va, size in walk.chunks(stream_bytes):
                core.dma_load(va, size, label="stream")
        macs = mapped.compute_macs.get(vcore, 0)
        if macs > 0:
            core.macs(macs, label="stage")

    # All sends before all receives per core (see module docstring); the
    # flow index keys each send to exactly one receive.
    for index, flow in enumerate(mapped.flows):
        iteration.core(flow.src_vcore).send(
            flow.dst_vcore, flow.nbytes, tag=f"f{index}")
    for index, flow in enumerate(mapped.flows):
        iteration.core(flow.dst_vcore).receive(
            flow.src_vcore, tag=f"f{index}")

    return warmup, iteration
