"""The unified cost engine: one interface, registered fidelity tiers.

Every cycle number the serving stack charges a tenant — service time,
migration, reconfiguration — flows through a :class:`CostModel`. The
interface is deliberately small:

- :meth:`CostModel.workload_cost` returns the (warm-up, per-iteration)
  cycle pair for one session's model on its placement;
- :meth:`CostModel.service_cycles` folds that into the session's total
  residency (warm-up + inferences x iteration + routing-table setup),
  the number the schedulers sleep on;
- :meth:`CostModel.migration_cycles` prices a live migration through the
  shared :mod:`repro.cost.charges` formulas.

Tiers are registered by name through the same
:class:`~repro.core.registry.Registry` idiom as mapping strategies and
admission policies, so ``ClusterScheduler(chip, cost_model="cached")``
works the same as ``policy="best_fit"``. The built-ins:

========== ============================================= ==============
tier       how it prices a workload                      relative speed
========== ============================================= ==============
analytic   bottleneck steady-state model (pipeline.py)   fastest
executor   full event-driven run of the lowered program  slowest
cached     memoized executor runs per placement class    executor once,
           (analytic-scaled interpolation on miss)       then ~analytic
========== ============================================= ==============

Custom tiers subclass :class:`CostModel`, set ``name``, implement
``workload_cost`` and call :func:`register_cost_model` — see the README
section "Cost model tiers".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.core.registry import Registry
from repro.cost.charges import migration_cycles as _migration_charge
from repro.errors import ServingError
from repro.workloads.zoo import SERVING_MODEL_BUILDERS


@dataclass(frozen=True)
class WorkloadCost:
    """One workload's priced shape: warm-up plus steady-state iteration.

    ``tier`` names the cost model that produced the number; ``source``
    records its provenance — ``"analytic"``, ``"executor"`` or
    ``"interpolated"`` — which the cached tier uses to distinguish exact
    executor replays from analytic-scaled estimates.
    """

    warmup_cycles: int
    iteration_cycles: int
    tier: str
    source: str
    placement_class: str = "exact"

    def service_cycles(self, inferences: int, setup_cycles: int = 0) -> int:
        """Total residency of a session running ``inferences`` iterations."""
        return max(1, self.warmup_cycles + inferences * self.iteration_cycles
                   + setup_cycles)


class CostModel(abc.ABC):
    """A fidelity tier: prices workloads, migrations and reconfigs.

    Subclasses implement :meth:`workload_cost`; everything else has a
    shared default. Each instance owns a model-builder table (defaulting
    to the serving zoo) so experiments can register custom models
    without touching the global zoo.
    """

    #: Registry name of the tier (empty for ad-hoc/unregistered models).
    name: str = ""

    def __init__(self, models: dict | None = None) -> None:
        self.models = dict(SERVING_MODEL_BUILDERS if models is None
                           else models)

    # -- model zoo ---------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        """Make ``builder`` (zero-arg -> ModelGraph) available to traces."""
        if name in self.models:
            raise ServingError(f"model {name!r} already registered")
        self.models[name] = builder

    def build_model(self, name: str):
        """Instantiate a registered model graph by name."""
        try:
            builder = self.models[name]
        except KeyError:
            raise ServingError(
                f"unknown model {name!r}; registered: "
                f"{tuple(sorted(self.models))}"
            ) from None
        return builder()

    # -- pricing -----------------------------------------------------------
    @abc.abstractmethod
    def workload_cost(self, chip: Chip, session, vnpu) -> WorkloadCost:
        """Price ``session``'s model on its actual placement on ``chip``."""

    def service_cycles(self, chip: Chip, session, vnpu) -> int:
        """Total solo residency of ``session`` — what the scheduler waits."""
        cost = self.workload_cost(chip, session, vnpu)
        return cost.service_cycles(session.inferences, vnpu.setup_cycles)

    def migration_cycles(self, source: Chip, destination: Chip,
                         resident_bytes: int, setup_cycles: int) -> int:
        """Price a live migration between two chips."""
        return _migration_charge(source.config, destination.config,
                                 resident_bytes, setup_cycles)

    # -- checkpoint --------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Picklable pricing state (memoized prices, counters).

        Pricing caches are *behavioral* state: a tier that prices a
        (model, shape) key once and serves the memo afterwards must
        carry the memo across a checkpoint, or the restored run would
        re-price the key on a different placement and drift. The model
        builder table stays out (builders may be lambdas; restore
        constructs the tier, which rebuilds the table).
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Splice a ``snapshot_state`` dict into this (same-tier) model."""
        return None


_TIERS: Registry[type[CostModel]] = Registry("cost model tier", ServingError)


def register_cost_model(tier: type[CostModel],
                        replace: bool = False) -> type[CostModel]:
    """Register a :class:`CostModel` subclass under its ``name``."""
    if not (isinstance(tier, type) and issubclass(tier, CostModel)):
        raise ServingError(
            f"cost model tier must be a CostModel subclass; got {tier!r}")
    return _TIERS.register(tier, replace=replace)


def unregister_cost_model(name: str) -> None:
    return _TIERS.unregister(name)


def resolve_cost_model(name: str) -> type[CostModel]:
    """The registered tier class for ``name`` (ServingError when unknown)."""
    return _TIERS.resolve(name)


def available_cost_models() -> tuple[str, ...]:
    return _TIERS.names()


def coerce_cost_model(model: "CostModel | str") -> CostModel:
    """Resolve a tier name to a fresh instance, or validate an instance.

    Unified on :meth:`repro.core.registry.Registry.coerce` (with
    ``factory=True``: this family registers tier *classes*, so a
    resolved name is instantiated). Unknown names raise
    :class:`~repro.errors.ServingError` naming the offending value and
    the registered tiers; non-``CostModel`` objects — including tier
    classes, which would otherwise duck-type — are rejected the same
    way ``coerce_policy`` rejects policy classes.
    """
    return _TIERS.coerce(model, instance_of=CostModel, factory=True)
