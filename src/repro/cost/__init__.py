"""Unified fidelity-tiered cost engine.

One :class:`CostModel` interface, three registered tiers — ``analytic``
(steady-state bottleneck math), ``executor`` (full event-driven runs of
real compiled workloads on a scratch chip) and ``cached`` (memoized
executor results per placement class, analytic-scaled interpolation on
miss). The serving schedulers, the hypervisor's migration charges and
the calibration/benchmark harnesses all price cycles through this
package.
"""

from repro.cost.analytic import AnalyticCostModel
from repro.cost.cached import CachedCostModel
from repro.cost.charges import migration_cycles, migration_data_cycles
from repro.cost.executor_tier import (
    PLACEMENT_CLASSES,
    ExecutorCostModel,
    canonical_vnpu,
    placement_class,
)
from repro.cost.lowering import lower_mapped_task
from repro.cost.model import (
    CostModel,
    WorkloadCost,
    available_cost_models,
    coerce_cost_model,
    register_cost_model,
    resolve_cost_model,
    unregister_cost_model,
)

__all__ = [
    "AnalyticCostModel",
    "CachedCostModel",
    "CostModel",
    "ExecutorCostModel",
    "PLACEMENT_CLASSES",
    "WorkloadCost",
    "available_cost_models",
    "canonical_vnpu",
    "coerce_cost_model",
    "lower_mapped_task",
    "migration_cycles",
    "migration_data_cycles",
    "placement_class",
    "register_cost_model",
    "resolve_cost_model",
    "unregister_cost_model",
]
