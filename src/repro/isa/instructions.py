"""NPU instruction set.

Mirrors the operations visible in the IPU-style programming model (§3.1):
DMA loads of weight chunks, dense compute on the systolic array / vector
unit, and explicit ``send``/``receive`` between cores over the NoC. Every
instruction carries the *virtual* core IDs it references — the vRouter
rewrites them to physical IDs at dispatch/transfer time, which is the
whole point of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError


@dataclass(frozen=True)
class Instruction:
    """Base class for all NPU instructions."""

    def validate(self) -> None:
        """Raise ProgramError on malformed fields."""


@dataclass(frozen=True)
class DmaLoad(Instruction):
    """Load ``nbytes`` from global memory VA into the local scratchpad."""

    virtual_address: int
    nbytes: int
    label: str = ""

    def validate(self) -> None:
        if self.virtual_address < 0:
            raise ProgramError(f"negative VA {self.virtual_address:#x}")
        if self.nbytes <= 0:
            raise ProgramError(f"DmaLoad size must be positive, got {self.nbytes}")


@dataclass(frozen=True)
class DmaStore(Instruction):
    """Write ``nbytes`` from scratchpad back to global memory."""

    virtual_address: int
    nbytes: int
    label: str = ""

    def validate(self) -> None:
        if self.virtual_address < 0:
            raise ProgramError(f"negative VA {self.virtual_address:#x}")
        if self.nbytes <= 0:
            raise ProgramError(f"DmaStore size must be positive, got {self.nbytes}")


@dataclass(frozen=True)
class Compute(Instruction):
    """Occupy the compute units for a kernel.

    ``kind`` selects the timing model: ``"matmul"`` (m, k, n), ``"conv"``
    (h, w, cin, cout, kernel) or ``"macs"`` (macs). Raw MAC counts are what
    the compiler emits for model layers.
    """

    kind: str
    params: tuple[int, ...]
    label: str = ""

    _ARITY = {"matmul": 3, "conv": 5, "macs": 1, "vector": 1}

    def validate(self) -> None:
        arity = self._ARITY.get(self.kind)
        if arity is None:
            raise ProgramError(f"unknown compute kind {self.kind!r}")
        if len(self.params) != arity:
            raise ProgramError(
                f"{self.kind} expects {arity} params, got {len(self.params)}"
            )
        if any(p <= 0 for p in self.params) and self.kind != "macs":
            raise ProgramError(f"{self.kind} params must be positive")
        if self.kind == "macs" and self.params[0] < 0:
            raise ProgramError("macs count must be non-negative")


@dataclass(frozen=True)
class Send(Instruction):
    """Transmit ``nbytes`` to virtual core ``dst`` over the NoC."""

    dst: int
    nbytes: int
    tag: str = ""

    def validate(self) -> None:
        if self.dst < 0:
            raise ProgramError(f"negative destination core {self.dst}")
        if self.nbytes <= 0:
            raise ProgramError(f"Send size must be positive, got {self.nbytes}")


@dataclass(frozen=True)
class Receive(Instruction):
    """Block until a message tagged ``tag`` arrives from virtual core ``src``."""

    src: int
    tag: str = ""

    def validate(self) -> None:
        if self.src < 0:
            raise ProgramError(f"negative source core {self.src}")
