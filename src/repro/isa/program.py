"""Per-core instruction programs and whole-task validation.

A :class:`TaskProgram` holds one instruction list per *virtual* core. Its
validator performs the cross-core checks a real toolchain would: every
``Send`` must have a matching ``Receive`` on the destination core (same
tag, matching endpoints) and vice versa, and no instruction may reference
a core outside the task's virtual topology. A mismatched send/receive
would deadlock the dataflow machine, so this is checked at build time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.instructions import (
    Compute,
    DmaLoad,
    DmaStore,
    Instruction,
    Receive,
    Send,
)


@dataclass
class CoreProgram:
    """The ordered instruction stream of one virtual core."""

    core: int
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "CoreProgram":
        instruction.validate()
        self.instructions.append(instruction)
        return self

    # Fluent builders used by examples and tests.
    def dma_load(self, va: int, nbytes: int, label: str = "") -> "CoreProgram":
        return self.append(DmaLoad(va, nbytes, label))

    def dma_store(self, va: int, nbytes: int, label: str = "") -> "CoreProgram":
        return self.append(DmaStore(va, nbytes, label))

    def matmul(self, m: int, k: int, n: int, label: str = "") -> "CoreProgram":
        return self.append(Compute("matmul", (m, k, n), label))

    def conv(self, h: int, w: int, cin: int, cout: int, kernel: int,
             label: str = "") -> "CoreProgram":
        return self.append(Compute("conv", (h, w, cin, cout, kernel), label))

    def macs(self, count: int, label: str = "") -> "CoreProgram":
        return self.append(Compute("macs", (count,), label))

    def send(self, dst: int, nbytes: int, tag: str = "") -> "CoreProgram":
        return self.append(Send(dst, nbytes, tag))

    def receive(self, src: int, tag: str = "") -> "CoreProgram":
        return self.append(Receive(src, tag))

    @property
    def sends(self) -> list[Send]:
        return [i for i in self.instructions if isinstance(i, Send)]

    @property
    def receives(self) -> list[Receive]:
        return [i for i in self.instructions if isinstance(i, Receive)]

    def dma_bytes(self) -> int:
        return sum(
            i.nbytes for i in self.instructions
            if isinstance(i, (DmaLoad, DmaStore))
        )


class TaskProgram:
    """All core programs of one task on one virtual NPU."""

    def __init__(self, name: str = "task") -> None:
        self.name = name
        self._programs: dict[int, CoreProgram] = {}

    def core(self, core_id: int) -> CoreProgram:
        """Get (or create) the program of virtual core ``core_id``."""
        if core_id < 0:
            raise ProgramError(f"negative core id {core_id}")
        if core_id not in self._programs:
            self._programs[core_id] = CoreProgram(core_id)
        return self._programs[core_id]

    @property
    def cores(self) -> list[int]:
        return sorted(self._programs)

    def programs(self) -> list[CoreProgram]:
        return [self._programs[c] for c in self.cores]

    def __len__(self) -> int:
        return sum(len(p.instructions) for p in self._programs.values())

    # -- validation -----------------------------------------------------------
    def validate(self, allowed_cores: set[int] | None = None) -> None:
        """Check instruction well-formedness and send/receive pairing."""
        for program in self._programs.values():
            for instruction in program.instructions:
                instruction.validate()

        cores = set(self._programs)
        if allowed_cores is not None:
            stray = cores - set(allowed_cores)
            if stray:
                raise ProgramError(
                    f"programs reference cores outside the topology: {sorted(stray)}"
                )
            universe = set(allowed_cores)
        else:
            universe = cores

        sends = Counter()
        receives = Counter()
        for program in self._programs.values():
            for send in program.sends:
                if send.dst not in universe:
                    raise ProgramError(
                        f"core {program.core} sends to unknown core {send.dst}"
                    )
                sends[(program.core, send.dst, send.tag)] += 1
            for receive in program.receives:
                if receive.src not in universe:
                    raise ProgramError(
                        f"core {program.core} receives from unknown core "
                        f"{receive.src}"
                    )
                receives[(receive.src, program.core, receive.tag)] += 1
        if sends != receives:
            unmatched_sends = sends - receives
            unmatched_receives = receives - sends
            raise ProgramError(
                f"unpaired communication in {self.name!r}: "
                f"sends without receive {dict(unmatched_sends)}, "
                f"receives without send {dict(unmatched_receives)}"
            )

    # -- aggregate statistics ----------------------------------------------
    def total_dma_bytes(self) -> int:
        return sum(p.dma_bytes() for p in self._programs.values())

    def total_noc_bytes(self) -> int:
        return sum(s.nbytes for p in self._programs.values() for s in p.sends)
