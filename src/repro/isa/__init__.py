"""repro.isa subpackage (regular package so ``pip install`` ships it)."""
