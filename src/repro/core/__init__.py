"""repro.core subpackage (regular package so ``pip install`` ships it)."""
