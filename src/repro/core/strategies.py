"""Pluggable topology-mapping strategies and their registry.

The hypervisor used to hard-code an if/else over the four paper
strategies. Under a serving workload new policies want to add their own
placement logic (e.g. "best effort, then fragmented"), so strategies are
now first-class objects resolved by name through a process-wide registry:

- :class:`MappingStrategy` — the protocol: a ``name`` plus
  ``map(mapper, spec, allocated)`` returning a
  :class:`~repro.core.topology_mapping.MappingResult`;
- :func:`register_strategy` / :func:`unregister_strategy` — extend the
  registry (duplicates are rejected unless ``replace=True``);
- :func:`resolve_strategy` — name -> strategy, raising
  :class:`~repro.errors.HypervisorError` for unknown names (the error the
  hypervisor has always raised for bad strategy arguments).

The four built-ins ("exact", "similar", "straightforward", "fragmented")
are registered at import time and behave exactly as the old dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.registry import Registry
from repro.errors import ConfigError, HypervisorError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.topology_mapping import MappingResult, TopologyMapper
    from repro.core.vnpu import VNpuSpec


@runtime_checkable
class MappingStrategy(Protocol):
    """One way of carving a requested virtual topology out of free cores."""

    name: str

    def map(self, mapper: "TopologyMapper", spec: "VNpuSpec",
            allocated: set[int]) -> "MappingResult":
        """Place ``spec.topology`` avoiding ``allocated`` physical cores."""
        ...


class ExactStrategy:
    """Isomorphic placement or :class:`~repro.errors.TopologyLockIn`."""

    name = "exact"

    def map(self, mapper, spec, allocated):
        return mapper.map_exact(spec.topology, allocated)


class SimilarStrategy:
    """Algorithm 1: minimum topology-edit-distance placement."""

    name = "similar"

    def map(self, mapper, spec, allocated):
        return mapper.map_similar(
            spec.topology, allocated,
            require_connected=spec.noc_isolation,
        )


class StraightforwardStrategy:
    """Zig-zag by core ID, ignoring the requested topology."""

    name = "straightforward"

    def map(self, mapper, spec, allocated):
        return mapper.map_straightforward(spec.topology, allocated)


class FragmentedStrategy:
    """Relaxed R-3: disconnected placements over free fragments."""

    name = "fragmented"

    def map(self, mapper, spec, allocated):
        return mapper.map_fragmented(spec.topology, allocated)


#: Unknown lookups raise HypervisorError — the error the hypervisor has
#: always raised for bad strategy arguments.
_REGISTRY: Registry[MappingStrategy] = Registry(
    "mapping strategy", ConfigError, resolve_error=HypervisorError,
)


def register_strategy(strategy: MappingStrategy,
                      replace: bool = False) -> MappingStrategy:
    """Add ``strategy`` to the registry (rejecting silent overwrites)."""
    return _REGISTRY.register(strategy, replace=replace)


def unregister_strategy(name: str) -> None:
    return _REGISTRY.unregister(name)


def resolve_strategy(name: str) -> MappingStrategy:
    return _REGISTRY.resolve(name)


def available_strategies() -> tuple[str, ...]:
    return _REGISTRY.names()


for _builtin in (ExactStrategy(), SimilarStrategy(),
                 StraightforwardStrategy(), FragmentedStrategy()):
    register_strategy(_builtin)
