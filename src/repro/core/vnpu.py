"""The virtual-NPU abstraction handed to a guest VM (§5.2).

A :class:`VirtualNPU` bundles everything the hypervisor configured for one
tenant: the topology mapping (virtual core IDs -> physical core IDs), the
routing table driving both vRouters, the vChunk range translator over the
guest's HBM allocation, and the optional bandwidth cap. Guests only ever
speak virtual core IDs and guest-virtual addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import MeshShape, Topology
from repro.core.routing_table import RoutingTable
from repro.core.topology_mapping import MappingResult
from repro.core.vchunk import AccessCounter, RangeTranslator
from repro.core.vrouter import NocVRouter
from repro.errors import ConfigError
from repro.mem.buddy import Block


@dataclass
class VNpuSpec:
    """A tenant's request: cores + topology + memory (+ QoS knobs)."""

    name: str
    topology: Topology | MeshShape
    memory_bytes: int
    #: Confine NoC packets to the virtual topology (predefined directions,
    #: §4.1.2). Requires a connected mapping (R-3). False -> default DOR.
    noc_isolation: bool = True
    #: Memory-bandwidth cap in bytes per monitoring window (None = uncapped).
    memory_cap_bytes_per_window: int | None = None
    memory_cap_window_cycles: int = 10_000

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigError("vNPU needs a positive memory size")
        if isinstance(self.topology, MeshShape):
            self.topology = Topology.mesh2d(
                self.topology.rows, self.topology.cols,
                name=f"{self.name}-req",
            )

    @property
    def core_count(self) -> int:
        return self.topology.node_count


@dataclass
class VirtualNPU:
    """A configured, running virtual NPU."""

    vmid: int
    spec: VNpuSpec
    mapping: MappingResult
    routing_table: RoutingTable
    noc_vrouter: NocVRouter
    translator: RangeTranslator
    memory_blocks: list[Block] = field(default_factory=list)
    access_counter: AccessCounter | None = None
    #: Cycles the controller spent configuring routing tables (Fig 11).
    setup_cycles: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def virtual_cores(self) -> list[int]:
        return sorted(self.mapping.vmap)

    @property
    def physical_cores(self) -> list[int]:
        return self.mapping.physical_cores

    @property
    def core_count(self) -> int:
        return len(self.mapping.vmap)

    def physical_core(self, v_core: int) -> int:
        """Guest-visible translation (what the vRouter does in hardware)."""
        return self.routing_table.translate(v_core)

    @property
    def memory_bytes(self) -> int:
        return sum(block.size for block in self.memory_blocks)

    def virtual_topology(self) -> Topology:
        """The topology the guest *requested* (what it programs against)."""
        return self.spec.topology

    def mapped_topology(self, chip_topology: Topology) -> Topology:
        """The induced physical topology actually backing this vNPU."""
        return chip_topology.subtopology(
            self.physical_cores, name=f"{self.name}-mapped",
        )

    def edge_hop_cost(self, chip_topology: Topology) -> dict[tuple[int, int], int]:
        """Physical hop distance of every virtual-topology edge.

        An exact mapping yields all-1 hops; a similar/fragmented mapping
        stretches some edges — the stretch is what degrades Fig 18's
        straightforward-mapping performance.
        """
        hops = {}
        for u, v in self.spec.topology.edges:
            hops[(u, v)] = chip_topology.hop_distance(
                self.mapping.vmap[u], self.mapping.vmap[v],
            )
        return hops
