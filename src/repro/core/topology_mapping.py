"""Topology-mapping strategies for virtual-NPU core allocation (§4.3).

The hypervisor must carve a requested virtual topology out of whatever
physical cores are still free. Strategies, in the paper's terminology:

- **Exact mapping** — find a free induced subgraph isomorphic to the
  request; raise :class:`~repro.errors.TopologyLockIn` when none exists
  even though enough cores are free (the paper's motivating failure).
- **Straightforward (zig-zag) mapping** — take the first free cores in
  boustrophedon row order, ignoring topology. Cheap, but the resulting
  communication pattern can be far from the request (Fig 18's baseline).
- **Similar topology mapping** (Algorithm 1) — enumerate candidate
  connected free subgraphs of the right size (R-1, R-3), deduplicate by
  isomorphism certificate, early-return on an exact match, and otherwise
  pick the candidate with minimum topology edit distance (R-2).
- **Fragmented mapping** — relax R-3: allow a disconnected core set so
  fragments can still be used, trading NoC interference for utilization.

Candidate enumeration uses the ESU ("enumerate subgraphs") algorithm,
which visits every connected ``k``-subset exactly once; a candidate cap
keeps worst cases bounded (the paper prunes and parallelizes similarly).

Under fleet churn the mapper is the dominant serving cost, so it carries
a **fast path** (on by default, ``fast_path=False`` retains the
reference implementation for equivalence checks and perf regressions):

- *incremental free sets* — ``notify_alloc``/``notify_free`` deltas keep
  one free :class:`Topology` up to date instead of rebuilding it per
  call, with a secondary one-slot cache for ad-hoc allocated sets;
- *memoized candidate machinery* — connected-subset enumerations keyed
  by (free set, k); induced subtopologies, WL certificates and all-pairs
  hop tables keyed by ``frozenset(nodes)`` (the chip-level table is
  computed once and reused verbatim for convex mesh-block candidates,
  where the subgraph metric collapses to the chip metric);
- *lower-bound screening* — candidates are visited cheapest
  :func:`~repro.core.ged.bijection_lower_bound` first and pruned once
  the bound exceeds the incumbent's exact score (``cache_stats`` exposes
  the considered/pruned/refined counters);
- *delta-evaluated 2-opt* — ``_polish`` re-prices only the terms a swap
  can change (O(degree) per trial) instead of the full objective, with a
  best-so-far early exit across refinement seeds. Deltas are used only
  when the edit costs are provably dyadic (the defaults are); exotic
  float costs fall back to the full-recompute refine so accept/reject
  decisions — and hence results — never drift;
- *numpy-vectorized inner loops* — Hungarian reward matrices and
  admissible lower bounds are built with broadcasting
  (:func:`~repro.core.ged._pair_cost_block`, bit-identical to the scalar
  loops under the default dyadic costs), and hop tables come from one
  multi-source matrix-BFS instead of per-node Python BFS. Custom cost
  callables automatically fall back to the scalar loops.

Both paths return identical ``(distance, vmap)`` results; the
equivalence is enforced by property tests and the
``bench_mapping_perf`` determinism harness.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, replace

from repro.arch.topology import Topology
from repro.core.ged import (
    EditCosts,
    _default_edge_cost,
    _default_node_substitute,
    best_bijection,
    bijection_lower_bound,
    induced_edit_cost,
)
from repro.errors import AllocationError, TopologyError, TopologyLockIn

import networkx as nx
import numpy as np


@dataclass
class MappingResult:
    """A concrete placement of a virtual topology onto physical cores."""

    strategy: str
    #: virtual core ID -> physical core ID
    vmap: dict[int, int]
    #: Topology edit distance between request and mapped subgraph (0 = exact).
    distance: float
    #: Is the mapped physical core set connected (R-3)?
    connected: bool
    candidates_considered: int = 0

    @property
    def physical_cores(self) -> list[int]:
        return sorted(self.vmap.values())

    @property
    def is_exact(self) -> bool:
        return self.distance == 0


def enumerate_connected_subsets(topology: Topology, k: int,
                                limit: int | None = None) -> list[frozenset[int]]:
    """All connected induced ``k``-subsets of ``topology`` (ESU algorithm).

    Each subset is produced exactly once. ``limit`` caps the result for
    pathological sizes; enumeration stops once reached.
    """
    if k < 1:
        raise TopologyError(f"subset size must be >= 1, got {k}")
    results: list[frozenset[int]] = []
    nodes = topology.nodes

    def extend(subgraph: set[int], extension: set[int], root: int) -> bool:
        if len(subgraph) == k:
            results.append(frozenset(subgraph))
            return limit is not None and len(results) >= limit
        candidates = sorted(extension)
        for node in candidates:
            remaining = {c for c in candidates if c > node}
            # ESU exclusive neighborhood: neighbors of `node` greater than
            # root that are neither in the subgraph nor adjacent to it.
            exclusive = set()
            for nbr in topology.neighbors(node):
                if nbr <= root or nbr in subgraph:
                    continue
                if any(nbr in topology.neighbors(s) for s in subgraph):
                    continue
                exclusive.add(nbr)
            if extend(subgraph | {node}, remaining | exclusive, root):
                return True
        return False

    for root in nodes:
        extension = {nbr for nbr in topology.neighbors(root) if nbr > root}
        if extend({root}, extension, root):
            break
    return results


class TopologyMapper:
    """Implements the allocation strategies over one chip topology."""

    def __init__(self, chip_topology: Topology,
                 costs: EditCosts | None = None,
                 candidate_limit: int = 20_000,
                 esu_max_request: int = 9,
                 cache_size: int = 512,
                 fast_path: bool = True,
                 memo_size: int = 4096) -> None:
        self.chip = chip_topology
        self.costs = costs or EditCosts()
        self.candidate_limit = candidate_limit
        #: Largest request size for which candidates are enumerated
        #: exhaustively (ESU); beyond it a compact-region generator is used
        #: (the paper prunes aggressively and parallelizes instead).
        self.esu_max_request = esu_max_request
        #: LRU memo for :meth:`map_similar`, keyed on (request structure,
        #: frozen free-core set). Under tenant churn the same shapes recur
        #: against the same fragmentation states, and candidate enumeration
        #: plus GED scoring is by far the hot path. ``cache_size=0``
        #: disables caching.
        self.cache_size = cache_size
        self._similar_cache: OrderedDict[tuple, MappingResult] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: ``False`` selects the retained reference implementation: fresh
        #: free-topology builds, no memoization, no screening, and the
        #: full-recompute 2-opt. The fast path returns identical
        #: ``(distance, vmap)`` results (see module docstring).
        self.fast_path = fast_path
        # Delta-evaluated 2-opt tracks the full recomputation bit-for-bit
        # only when every objective term is a small dyadic rational —
        # default cost callables plus 1/16-granular scalars qualify.
        # Exotic float costs (e.g. 0.1) sum non-associatively and could
        # flip accept decisions at the 1e-12 threshold, so they fall back
        # to the full-recompute refine (screening and memos stay on:
        # their equivalence does not depend on summation order).
        self._delta_exact = (
            self.costs.node_substitute is _default_node_substitute
            and self.costs.edge_delete is _default_edge_cost
            and all(
                (16 * float(value)).is_integer()
                for value in (self.costs.node_delete,
                              self.costs.node_insert,
                              self.costs.edge_insert)
            )
        )
        #: Bound on each frozenset-keyed memo (certificates, induced
        #: subtopologies, hop tables, subset enumerations).
        self.memo_size = memo_size
        # Chip-level lookups hoisted out of _mesh_placements (they are
        # pure functions of the chip): coordinate index, grid extents and
        # the boustrophedon walk of the full chip.
        self._by_coord = {coord: node
                          for node, coord in chip_topology.coords.items()}
        if chip_topology.coords:
            self._chip_rows = max(r for r, _ in chip_topology.coords.values()) + 1
            self._chip_cols = max(c for _, c in chip_topology.coords.values()) + 1
        else:
            self._chip_rows = 0
            self._chip_cols = 0
        self._chip_zigzag = self._zigzag_order(chip_topology)
        # Coordinates are required, not just mesh structure: without them
        # mesh_shape() falls back to isomorphism, which would misdetect a
        # snake-shaped candidate as a "1xN block" and reuse understated
        # chip hops in _candidate_hops.
        self._chip_is_mesh = (bool(chip_topology.coords)
                              and chip_topology.mesh_shape() is not None)
        self._chip_hops: dict[int, dict[int, int]] | None = None
        # Fast-path memos (all LRU-bounded by memo_size). Score and polish
        # are keyed by (request structure, candidate node set): the same
        # candidate regions recur across calls even when the surrounding
        # free set differs, which is where churn actually repeats itself.
        self._cert_memo: OrderedDict[frozenset, str] = OrderedDict()
        self._subtopo_memo: OrderedDict[frozenset, Topology] = OrderedDict()
        self._hops_memo: OrderedDict[frozenset, dict] = OrderedDict()
        self._subset_memo: OrderedDict[tuple, list] = OrderedDict()
        self._score_memo: OrderedDict[tuple, tuple] = OrderedDict()
        self._polish_memo: OrderedDict[tuple, tuple] = OrderedDict()
        self._bound_memo: OrderedDict[tuple, float] = OrderedDict()
        # Incremental free-set maintenance: the tracked allocated set is
        # kept in sync by notify_alloc/notify_free (wired through the
        # hypervisor), and the matching free Topology is updated with
        # O(degree) node deltas instead of rebuilt per call. Ad-hoc
        # allocated sets (trial placements, migrations) get a one-slot
        # cache keyed by the frozen set.
        self._tracked_allocated: set[int] = set()
        self._tracked_free: Topology | None = None
        self._adhoc_key: frozenset[int] | None = None
        self._adhoc_free: Topology | None = None
        # Fast-path operation counters (surfaced via cache_stats()).
        self.candidates_considered = 0
        self.candidates_pruned = 0
        self.candidates_refined = 0
        self.objective_evaluations = 0
        self.free_rebuilds = 0
        self.free_updates = 0

    # -- mapping cache -------------------------------------------------------
    def _request_key(self, request: Topology) -> tuple:
        """Structural identity of a request topology.

        The request's name is deliberately excluded (every tenant names its
        mesh differently); coordinates are included because
        ``_mesh_placements`` slides the request by its grid layout, and
        node attributes because they price substitutions.
        """
        return (
            tuple(request.nodes),
            tuple(request.edges),
            tuple(sorted(request.coords.items())) if request.coords else None,
            tuple(sorted(request.node_attrs.items()))
            if request.node_attrs else None,
        )

    def _cache_key(self, request: Topology, free: Topology,
                   require_connected: bool) -> tuple:
        """Structural identity of a ``map_similar`` call."""
        return (
            self._request_key(request),
            frozenset(free.nodes),
            require_connected,
        )

    def clear_mapping_cache(self) -> None:
        self._similar_cache.clear()

    def cache_stats(self) -> dict[str, int | float]:
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._similar_cache),
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "candidates_considered": self.candidates_considered,
            "candidates_pruned": self.candidates_pruned,
            "candidates_refined": self.candidates_refined,
            "objective_evaluations": self.objective_evaluations,
            "free_rebuilds": self.free_rebuilds,
            "free_updates": self.free_updates,
        }

    def _memoized(self, memo: OrderedDict, key, build):
        """LRU-bounded memo shared by the frozenset-keyed fast-path caches."""
        hit = memo.get(key)
        if hit is not None:
            memo.move_to_end(key)
            return hit
        value = build()
        memo[key] = value
        while len(memo) > self.memo_size:
            memo.popitem(last=False)
        return value

    # -- incremental free-set maintenance ------------------------------------
    def notify_alloc(self, cores) -> None:
        """Record that ``cores`` were just allocated on the chip.

        The hypervisor calls this on every successful provision so the
        mapper's tracked free set stays in sync; the cached free topology
        is updated in place with O(degree) node removals.
        """
        cores = set(cores)
        self._tracked_allocated |= cores
        if self._tracked_free is not None:
            if self.fast_path:
                for core in sorted(cores):
                    self._tracked_free._discard_node(core)
                self.free_updates += 1
            else:
                self._tracked_free = None

    def notify_free(self, cores) -> None:
        """Record that ``cores`` were just released back to the chip."""
        cores = set(cores)
        self._tracked_allocated -= cores
        if self._tracked_free is not None:
            if self.fast_path:
                for core in sorted(cores):
                    self._tracked_free._restore_node(self.chip, core)
                self.free_updates += 1
            else:
                self._tracked_free = None

    def reset_free_tracking(self, allocated: set[int] | None = None) -> None:
        """Re-seed the tracked allocated set (e.g. after bulk changes)."""
        self._tracked_allocated = set(allocated or ())
        self._tracked_free = None

    # -- helpers ------------------------------------------------------------
    def _build_free(self, allocated: set[int]) -> Topology:
        self.free_rebuilds += 1
        free = [n for n in self.chip.nodes if n not in allocated]
        return self.chip.subtopology(free, name="free")

    def free_topology(self, allocated: set[int]) -> Topology:
        """The induced topology over currently-free cores.

        On the fast path the returned object is a cached view — valid
        until the next ``notify_alloc``/``notify_free`` — refreshed
        incrementally when ``allocated`` matches the tracked set and via
        a one-slot frozenset cache otherwise. The reference path builds
        a fresh subtopology per call (the seed behavior).
        """
        if not self.fast_path:
            return self._build_free(allocated)
        if allocated == self._tracked_allocated:
            if self._tracked_free is None:
                self._tracked_free = self._build_free(allocated)
            return self._tracked_free
        key = frozenset(allocated)
        if key == self._adhoc_key:
            return self._adhoc_free
        self._adhoc_free = self._build_free(allocated)
        self._adhoc_key = key
        return self._adhoc_free

    def _check_capacity(self, request: Topology, free: Topology) -> None:
        if request.node_count > free.node_count:
            raise AllocationError(
                f"request needs {request.node_count} cores but only "
                f"{free.node_count} are free"
            )

    @staticmethod
    def _zigzag_order(topology: Topology) -> list[int]:
        """Boustrophedon order: row 0 left-to-right, row 1 right-to-left..."""
        if not topology.coords:
            return topology.nodes
        def key(node):
            row, col = topology.coords[node]
            return (row, col if row % 2 == 0 else -col)
        return sorted(topology.nodes, key=key)

    def _zigzag_within(self, nodes) -> list[int]:
        """Zig-zag order of a chip-node subset via the cached chip walk.

        Equivalent to ``_zigzag_order`` of the induced subtopology (the
        sort key depends only on chip coordinates) without building one.
        """
        members = set(nodes)
        return [n for n in self._chip_zigzag if n in members]

    def _isomorphism_mapping(self, request: Topology,
                             candidate: Topology) -> dict[int, int] | None:
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            request.to_networkx(), candidate.to_networkx(),
            node_match=lambda a, b: a.get("abbr", "") == b.get("abbr", ""),
        )
        if matcher.is_isomorphic():
            return dict(matcher.mapping)
        return None

    # -- candidate generation -------------------------------------------------
    def _request_grid(self, request: Topology) -> dict[int, tuple[int, int]] | None:
        """Virtual node -> (row, col) within the request mesh, if a mesh."""
        shape = request.mesh_shape()
        if shape is None:
            return None
        if request.coords:
            min_row = min(r for r, _ in request.coords.values())
            min_col = min(c for _, c in request.coords.values())
            return {
                node: (r - min_row, c - min_col)
                for node, (r, c) in request.coords.items()
            }
        return {
            node: divmod(index, shape.cols)
            for index, node in enumerate(sorted(request.nodes))
        }

    def _mesh_placements(self, request: Topology, free: Topology):
        """Yield exact vmaps by sliding the request mesh over free cells."""
        grid = self._request_grid(request)
        if grid is None or not self.chip.coords:
            return
        by_coord = self._by_coord
        free_nodes = set(free.nodes)
        chip_rows = self._chip_rows
        chip_cols = self._chip_cols
        shape = request.mesh_shape()
        orientations = [grid]
        if shape.rows != shape.cols:
            orientations.append({n: (c, r) for n, (r, c) in grid.items()})
        for oriented in orientations:
            height = max(r for r, _ in oriented.values()) + 1
            width = max(c for _, c in oriented.values()) + 1
            for base_row in range(chip_rows - height + 1):
                for base_col in range(chip_cols - width + 1):
                    vmap = {}
                    for node, (r, c) in oriented.items():
                        physical = by_coord.get((base_row + r, base_col + c))
                        if physical is None or physical not in free_nodes:
                            vmap = None
                            break
                        vmap[node] = physical
                    if vmap is not None:
                        yield vmap

    def _compact_sets(self, free: Topology, k: int) -> list[frozenset[int]]:
        """Diverse connected k-regions: BFS balls grown from every free node."""
        seen: set[frozenset[int]] = set()
        subsets: list[frozenset[int]] = []
        for seed in free.nodes:
            ball = free.bfs_order(seed)[:k]
            if len(ball) < k:
                continue
            key = frozenset(ball)
            if key in seen:
                continue
            seen.add(key)
            subsets.append(key)
        return subsets

    def _candidate_sets(self, free: Topology, k: int) -> list[frozenset[int]]:
        """Connected k-subsets of ``free`` (memoized per free set on the
        fast path — churn revisits the same fragmentation states)."""
        def build():
            if k <= self.esu_max_request:
                return enumerate_connected_subsets(free, k,
                                                   limit=self.candidate_limit)
            return self._compact_sets(free, k)
        if not self.fast_path:
            return build()
        return self._memoized(self._subset_memo,
                              (frozenset(free.nodes), k), build)

    def _induced(self, free: Topology, nodes: frozenset[int]) -> Topology:
        """Candidate subtopology; memoized by node set on the fast path.

        A subset of the free cores induces the same subgraph from the
        chip as from the free topology, so the memo survives free-set
        churn.
        """
        if not self.fast_path:
            return free.subtopology(nodes)
        return self._memoized(self._subtopo_memo, frozenset(nodes),
                              lambda: self.chip.subtopology(nodes))

    def _certificate(self, candidate: Topology) -> str:
        """WL certificate, memoized by node set on the fast path."""
        if not self.fast_path:
            return candidate.wl_certificate()
        return self._memoized(self._cert_memo, frozenset(candidate.nodes),
                              candidate.wl_certificate)

    def _candidate_pool(self, request: Topology, free: Topology) -> tuple[list[Topology], int]:
        """Connected candidates of the right size plus a considered count."""
        subsets = self._candidate_sets(free, request.node_count)
        return [self._induced(free, s) for s in subsets], len(subsets)

    # -- strategies -----------------------------------------------------------
    def map_exact(self, request: Topology,
                  allocated: set[int] | None = None) -> MappingResult:
        """Exact-topology placement or TopologyLockIn."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        for vmap in self._mesh_placements(request, free):
            return MappingResult(
                strategy="exact", vmap=vmap, distance=0.0,
                connected=True, candidates_considered=1,
            )
        considered = 0
        request_cert = request.wl_certificate()
        candidates, considered = self._candidate_pool(request, free)
        for candidate in candidates:
            if self._certificate(candidate) != request_cert:
                continue
            mapping = self._isomorphism_mapping(request, candidate)
            if mapping is not None:
                return MappingResult(
                    strategy="exact", vmap=mapping, distance=0.0,
                    connected=True, candidates_considered=considered,
                )
        raise TopologyLockIn(
            f"no exact placement for {request.name!r} "
            f"({request.node_count} cores requested, {free.node_count} free) "
            f"— the topology lock-in problem"
        )

    def map_straightforward(self, request: Topology,
                            allocated: set[int] | None = None) -> MappingResult:
        """Zig-zag by core ID, ignoring the requested topology."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        chosen = self._zigzag_within(free.nodes)[: request.node_count]
        vmap = dict(zip(sorted(request.nodes), chosen))
        candidate = free.subtopology(chosen)
        # Price the *naive* assignment itself — this strategy does not
        # optimize which virtual core lands on which physical core.
        distance = induced_edit_cost(request, candidate, dict(vmap), self.costs)
        return MappingResult(
            strategy="straightforward", vmap=vmap, distance=distance,
            connected=self.chip.is_connected(set(chosen)),
            candidates_considered=1,
        )

    def map_similar(self, request: Topology,
                    allocated: set[int] | None = None,
                    require_connected: bool = True) -> MappingResult:
        """Algorithm 1: minimum topology-edit-distance placement.

        Results are memoized per (request structure, free-core set): the
        placement is a pure function of those inputs, so a cache hit
        returns a copy of the earlier result without re-enumerating
        candidates or re-scoring GED.
        """
        allocated = allocated or set()
        free = self.free_topology(allocated)
        self._check_capacity(request, free)
        if self.cache_size <= 0:
            return self._map_similar_uncached(request, free, allocated,
                                              require_connected)
        key = self._cache_key(request, free, require_connected)
        cached = self._similar_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._similar_cache.move_to_end(key)
            return replace(cached, vmap=dict(cached.vmap))
        self.cache_misses += 1
        result = self._map_similar_uncached(request, free, allocated,
                                            require_connected)
        self._similar_cache[key] = replace(result, vmap=dict(result.vmap))
        while len(self._similar_cache) > self.cache_size:
            self._similar_cache.popitem(last=False)
        return result

    def _map_similar_uncached(self, request: Topology, free: Topology,
                              allocated: set[int],
                              require_connected: bool) -> MappingResult:
        request_cert = request.wl_certificate()

        for vmap in self._mesh_placements(request, free):
            return MappingResult(  # Algorithm 1 line 22: early exact return
                strategy="similar", vmap=vmap, distance=0.0,
                connected=True, candidates_considered=1,
            )

        pool, considered = self._candidate_pool(request, free)
        candidates: list[Topology] = []
        seen_certs: set[str] = set()
        for candidate in pool:
            cert = self._certificate(candidate)
            if cert == request_cert:
                mapping = self._isomorphism_mapping(request, candidate)
                if mapping is not None:  # Algorithm 1 line 22: early return
                    return MappingResult(
                        strategy="similar", vmap=mapping, distance=0.0,
                        connected=True, candidates_considered=considered,
                    )
            if cert in seen_certs:  # line 25: dedup identical topologies
                continue
            seen_certs.add(cert)
            candidates.append(candidate)

        if not candidates:
            if require_connected:
                raise AllocationError(
                    f"free cores hold no connected {request.node_count}-subset"
                )
            return self.map_fragmented(request, allocated)

        if self.fast_path:
            request_key = self._request_key(request)
            candidate, mapping = self._select_screened(request_key, request,
                                                       candidates)
            seed = mapping
            distance, polished = self._memoized(
                self._polish_memo, (request_key, frozenset(candidate.nodes)),
                lambda: self._polish(request, candidate, seed))
            mapping = dict(polished)
        else:
            best: tuple[float, Topology, dict[int, int]] | None = None
            for candidate in candidates:  # line 30-32 (serial here)
                distance, mapping = best_bijection(request, candidate,
                                                   self.costs,
                                                   vectorize=False)
                if best is None or distance < best[0]:
                    best = (distance, candidate, mapping)
            _distance, candidate, mapping = best
            distance, mapping = self._polish(request, candidate, mapping)
        return MappingResult(
            strategy="similar", vmap=mapping, distance=distance,
            connected=True, candidates_considered=considered,
        )

    def _scored(self, request_key: tuple, request: Topology,
                candidate: Topology) -> tuple[float, dict[int, int]]:
        """Hungarian score + mapping, memoized per (request, candidate).

        The fast path builds the Hungarian reward matrix with numpy
        broadcasting (bit-identical to the scalar loop, so the
        assignment — and hence the mapping — cannot drift).
        """
        distance, mapping = self._memoized(
            self._score_memo, (request_key, frozenset(candidate.nodes)),
            lambda: best_bijection(request, candidate, self.costs,
                                   vectorize=True))
        return distance, dict(mapping)

    def _select_screened(self, request_key: tuple, request: Topology,
                         candidates: list[Topology]
                         ) -> tuple[Topology, dict[int, int]]:
        """R-2 argmin with admissible lower-bound pruning (fast path).

        Candidates are visited cheapest bound first; once the bound (and,
        on ties, the enumeration index the reference loop breaks ties by)
        exceeds the incumbent's *exact* Hungarian score, no remaining
        candidate can win and the tail is pruned unscored. Selection is
        therefore identical to the reference loop — including which of
        several equal-distance candidates wins.
        """
        self.candidates_considered += len(candidates)
        bounds = [
            self._memoized(
                self._bound_memo, (request_key, frozenset(candidate.nodes)),
                lambda candidate=candidate: bijection_lower_bound(
                    request, candidate, self.costs, vectorize=True))
            for candidate in candidates
        ]
        order = sorted(range(len(candidates)), key=lambda i: (bounds[i], i))
        best: tuple[float, int, dict[int, int]] | None = None
        for position, index in enumerate(order):
            if best is not None and (bounds[index], index) > best[:2]:
                self.candidates_pruned += len(order) - position
                break
            self.candidates_refined += 1
            distance, mapping = self._scored(request_key, request,
                                             candidates[index])
            if best is None or (distance, index) < best[:2]:
                best = (distance, index, mapping)
        return candidates[best[1]], best[2]

    def _polish(self, request: Topology, candidate: Topology,
                hungarian_seed: dict[int, int]) -> tuple[float, dict[int, int]]:
        """2-opt refinement from the Hungarian seed and a BFS-aligned seed.

        The Hungarian assignment only sees node-local costs; aligning two
        BFS traversals gives a geometry-aware alternative. The better
        refined bijection wins. The fast path skips duplicate seeds,
        evaluates swaps incrementally and stops once a refinement reaches
        objective zero (nothing can beat an exact, stretch-free mapping).
        """
        seeds = [hungarian_seed]
        request_corner = min(request.nodes, key=request.degree)
        candidate_corner = min(candidate.nodes, key=candidate.degree)
        seeds.append(dict(zip(request.bfs_order(request_corner),
                              candidate.bfs_order(candidate_corner))))
        # Snake-aligned seed: boustrophedon walks of both topologies zipped
        # together. Dataflow pipelines are laid along the snake walk of the
        # virtual topology (§3.1 programming model), so this seed keeps the
        # dominant traffic on short physical paths.
        seeds.append(dict(zip(self._zigzag_order(request),
                              self._zigzag_order(candidate))))
        hop = self._candidate_hops(candidate)
        if self.fast_path:
            refine = (self._refine_delta if self._delta_exact
                      else self._stretch_aware_refine)
            best: tuple[float, dict[int, int]] | None = None
            seen: set[tuple] = set()
            for seed in seeds:
                key = tuple(sorted(seed.items()))
                if key in seen:
                    continue
                seen.add(key)
                outcome = refine(request, candidate, seed, hop)
                if best is None or outcome[0] < best[0]:
                    best = outcome
                if best[0] <= 1e-12:
                    break
            best_mapping = best[1]
        else:
            outcomes = [
                self._stretch_aware_refine(request, candidate, seed, hop)
                for seed in seeds
            ]
            best_mapping = min(outcomes, key=lambda pair: pair[0])[1]
        distance = induced_edit_cost(request, candidate, dict(best_mapping),
                                     self.costs)
        return distance, best_mapping

    @staticmethod
    def _all_pairs_hops(topology: Topology) -> dict[int, dict[int, int]]:
        """Reference hop table: one Python BFS per source node."""
        hops: dict[int, dict[int, int]] = {}
        for start in topology.nodes:
            dist = {start: 0}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in topology.neighbors(node):
                    if nbr not in dist:
                        dist[nbr] = dist[node] + 1
                        frontier.append(nbr)
            hops[start] = dist
        return hops

    @staticmethod
    def _all_pairs_hops_vectorized(topology: Topology) -> dict[int, dict[int, int]]:
        """Hop table via one vectorized multi-source BFS (fast path).

        A boolean frontier matrix (one row per source) is advanced by
        adjacency matmul, levelling every source's BFS in lockstep —
        the per-node Python BFS loop becomes ``O(diameter)`` numpy ops.
        Hop counts are integers, so the table equals
        :meth:`_all_pairs_hops` exactly (unreachable pairs are absent
        from both); only dict insertion order may differ, which no
        consumer observes.
        """
        nodes = topology.nodes
        n = len(nodes)
        if n == 0:
            return {}
        index = {node: i for i, node in enumerate(nodes)}
        adjacency = np.zeros((n, n), dtype=np.int64)
        for u, v in topology.edges:
            i, j = index[u], index[v]
            adjacency[i, j] = 1
            adjacency[j, i] = 1
        dist = np.full((n, n), -1, dtype=np.int64)
        frontier = np.eye(n, dtype=bool)
        reached = frontier.copy()
        dist[frontier] = 0
        level = 0
        while True:
            frontier = ((frontier @ adjacency) > 0) & ~reached
            if not frontier.any():
                break
            level += 1
            dist[frontier] = level
            reached |= frontier
        return {
            u: {nodes[j]: int(dist[i, j])
                for j in np.flatnonzero(dist[i] >= 0)}
            for i, u in enumerate(nodes)
        }

    @property
    def chip_hops(self) -> dict[int, dict[int, int]]:
        """Chip-level all-pairs hop table, computed once per mapper."""
        if self._chip_hops is None:
            build = (self._all_pairs_hops_vectorized if self.fast_path
                     else self._all_pairs_hops)
            self._chip_hops = build(self.chip)
        return self._chip_hops

    def _candidate_hops(self, candidate: Topology) -> dict[int, dict[int, int]]:
        """Per-candidate all-pairs hops, memoized by ``frozenset(nodes)``.

        The chip table is always a lower bound on a subgraph's hop count
        (paths may leave the candidate). For convex candidates — a
        contiguous mesh block on a mesh chip — the bound is tight, so the
        chip table (computed once) is reused verbatim; everything else
        falls back to a per-candidate BFS.
        """
        if not self.fast_path:
            return self._all_pairs_hops(candidate)

        def build():
            if self._chip_is_mesh and candidate.mesh_shape() is not None:
                chip_hops = self.chip_hops
                nodes = candidate.nodes
                return {u: {v: chip_hops[u][v] for v in nodes}
                        for u in nodes}
            return self._all_pairs_hops_vectorized(candidate)
        return self._memoized(self._hops_memo, frozenset(candidate.nodes),
                              build)

    #: Weight of edge *stretch* (extra hops of a request edge on the
    #: physical fabric) relative to one edit operation. This realizes the
    #: paper's customizable EdgeMatch: an edge mapped 3 hops apart is worse
    #: than one mapped 2 hops apart, even though plain GED prices both as
    #: a single deletion.
    STRETCH_WEIGHT = 0.5

    def _stretch_objective(self, request: Topology, candidate: Topology,
                           mapping: dict[int, int],
                           hop: dict[int, dict[int, int]]) -> float:
        self.objective_evaluations += 1
        cost = induced_edit_cost(request, candidate, dict(mapping),
                                 self.costs)
        stretch = sum(
            hop[mapping[u]].get(mapping[v], request.node_count) - 1
            for u, v in request.edges
        )
        return cost + self.STRETCH_WEIGHT * stretch

    def _stretch_aware_refine(self, request: Topology, candidate: Topology,
                              seed: dict[int, int],
                              hop: dict[int, dict[int, int]],
                              max_passes: int = 6
                              ) -> tuple[float, dict[int, int]]:
        """2-opt hill climbing on edit-cost + stretch."""
        mapping = dict(seed)
        nodes = request.nodes
        current = self._stretch_objective(request, candidate, mapping, hop)
        for _ in range(max_passes):
            improved = False
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    mapping[a], mapping[b] = mapping[b], mapping[a]
                    trial = self._stretch_objective(
                        request, candidate, mapping, hop)
                    if trial + 1e-12 < current:
                        current = trial
                        improved = True
                    else:
                        mapping[a], mapping[b] = mapping[b], mapping[a]
            if not improved:
                break
        return current, mapping

    def _refine_delta(self, request: Topology, candidate: Topology,
                      seed: dict[int, int],
                      hop: dict[int, dict[int, int]],
                      max_passes: int = 6) -> tuple[float, dict[int, int]]:
        """2-opt on edit-cost + stretch with O(degree) swap deltas.

        Each trial swap re-prices only what it can change — the two node
        substitutions, the edges incident to the swapped request nodes
        (and their images), and the stretch of those same edges — instead
        of recomputing the full objective. Edit costs and stretch weights
        are dyadic rationals under the default :class:`EditCosts`, so the
        incremental objective tracks the full recomputation bit-for-bit
        and the accept/reject sequence (hence the refined mapping) is
        identical to :meth:`_stretch_aware_refine`.
        """
        costs = self.costs
        substitute = costs.node_substitute
        edge_insert = costs.edge_insert
        weight = self.STRETCH_WEIGHT
        mapping = dict(seed)
        inverse = {p: v for v, p in mapping.items()}
        nodes = request.nodes
        fallback = request.node_count
        # Flatten everything a swap trial touches into dict lookups:
        # adjacency sets, node attributes, and per-edge deletion prices
        # (constant during refinement) in both orientations.
        req_adj = {n: request._adj[n] for n in nodes}
        cand_adj = {p: candidate._adj[p] for p in candidate.nodes}
        req_attr = {n: request.attr(n) for n in nodes}
        cand_attr = {p: candidate.attr(p) for p in candidate.nodes}
        del_cost: dict[tuple[int, int], float] = {}
        for u, v in request.edges:
            price = costs.edge_del(request, u, v)
            del_cost[(u, v)] = price
            del_cost[(v, u)] = price
        current = self._stretch_objective(request, candidate, mapping, hop)

        def local(a: int, b: int) -> float:
            # Everything the (a, b) swap can change: the two node
            # substitutions, request edges incident to a or b (deletions
            # + stretch) and candidate edges incident to their images
            # (insertions). Each shared edge is counted once, matching
            # the full objective's edge iteration.
            image_a, image_b = mapping[a], mapping[b]
            total = (substitute(req_attr[a], cand_attr[image_a])
                     + substitute(req_attr[b], cand_attr[image_b]))
            stretch = 0
            hop_a = hop[image_a]
            for v in req_adj[a]:
                image_v = mapping[v]
                stretch += hop_a.get(image_v, fallback) - 1
                if image_v not in cand_adj[image_a]:
                    total += del_cost[(a, v)]
            hop_b = hop[image_b]
            for v in req_adj[b]:
                if v == a:
                    continue
                image_v = mapping[v]
                stretch += hop_b.get(image_v, fallback) - 1
                if image_v not in cand_adj[image_b]:
                    total += del_cost[(b, v)]
            adj_a = req_adj[inverse[image_a]]
            for q in cand_adj[image_a]:
                if inverse[q] not in adj_a:
                    total += edge_insert
            adj_b = req_adj[inverse[image_b]]
            for q in cand_adj[image_b]:
                if q == image_a:
                    continue
                if inverse[q] not in adj_b:
                    total += edge_insert
            return total + weight * stretch

        for _ in range(max_passes):
            improved = False
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    self.objective_evaluations += 1
                    before = local(a, b)
                    mapping[a], mapping[b] = mapping[b], mapping[a]
                    inverse[mapping[a]], inverse[mapping[b]] = a, b
                    after = local(a, b)
                    if after + 1e-12 < before:
                        current += after - before
                        improved = True
                    else:  # revert
                        mapping[a], mapping[b] = mapping[b], mapping[a]
                        inverse[mapping[a]], inverse[mapping[b]] = a, b
            if not improved or current <= 1e-12:
                break
        return current, mapping

    def map_fragmented(self, request: Topology,
                       allocated: set[int] | None = None) -> MappingResult:
        """Relaxed R-3: allow a disconnected placement (uses fragments)."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        chosen: list[int] = []
        remaining = set(free.nodes)
        # Greedily take the largest free fragments first, zig-zag inside.
        while len(chosen) < request.node_count and remaining:
            fragment = self._largest_fragment(free, remaining)
            ordered = self._zigzag_within(fragment)
            take = min(len(ordered), request.node_count - len(chosen))
            chosen.extend(ordered[:take])
            remaining -= fragment
        candidate = free.subtopology(chosen)
        distance, mapping = best_bijection(request, candidate, self.costs,
                                           vectorize=self.fast_path)
        return MappingResult(
            strategy="fragmented", vmap=mapping, distance=distance,
            connected=self.chip.is_connected(set(chosen)),
            candidates_considered=1,
        )

    @staticmethod
    def _largest_fragment(free: Topology, remaining: set[int]) -> set[int]:
        best: set[int] = set()
        unvisited = set(remaining)
        while unvisited:
            seed = next(iter(unvisited))
            stack = [seed]
            comp = {seed}
            while stack:
                node = stack.pop()
                for nbr in free.neighbors(node):
                    if nbr in remaining and nbr not in comp:
                        comp.add(nbr)
                        stack.append(nbr)
            unvisited -= comp
            if len(comp) > len(best):
                best = comp
        return best
