"""Topology-mapping strategies for virtual-NPU core allocation (§4.3).

The hypervisor must carve a requested virtual topology out of whatever
physical cores are still free. Strategies, in the paper's terminology:

- **Exact mapping** — find a free induced subgraph isomorphic to the
  request; raise :class:`~repro.errors.TopologyLockIn` when none exists
  even though enough cores are free (the paper's motivating failure).
- **Straightforward (zig-zag) mapping** — take the first free cores in
  boustrophedon row order, ignoring topology. Cheap, but the resulting
  communication pattern can be far from the request (Fig 18's baseline).
- **Similar topology mapping** (Algorithm 1) — enumerate candidate
  connected free subgraphs of the right size (R-1, R-3), deduplicate by
  isomorphism certificate, early-return on an exact match, and otherwise
  pick the candidate with minimum topology edit distance (R-2).
- **Fragmented mapping** — relax R-3: allow a disconnected core set so
  fragments can still be used, trading NoC interference for utilization.

Candidate enumeration uses the ESU ("enumerate subgraphs") algorithm,
which visits every connected ``k``-subset exactly once; a candidate cap
keeps worst cases bounded (the paper prunes and parallelizes similarly).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.arch.topology import Topology
from repro.core.ged import (
    EditCosts,
    best_bijection,
    induced_edit_cost,
    refine_bijection,
)
from repro.errors import AllocationError, TopologyError, TopologyLockIn

import networkx as nx


@dataclass
class MappingResult:
    """A concrete placement of a virtual topology onto physical cores."""

    strategy: str
    #: virtual core ID -> physical core ID
    vmap: dict[int, int]
    #: Topology edit distance between request and mapped subgraph (0 = exact).
    distance: float
    #: Is the mapped physical core set connected (R-3)?
    connected: bool
    candidates_considered: int = 0

    @property
    def physical_cores(self) -> list[int]:
        return sorted(self.vmap.values())

    @property
    def is_exact(self) -> bool:
        return self.distance == 0


def enumerate_connected_subsets(topology: Topology, k: int,
                                limit: int | None = None) -> list[frozenset[int]]:
    """All connected induced ``k``-subsets of ``topology`` (ESU algorithm).

    Each subset is produced exactly once. ``limit`` caps the result for
    pathological sizes; enumeration stops once reached.
    """
    if k < 1:
        raise TopologyError(f"subset size must be >= 1, got {k}")
    results: list[frozenset[int]] = []
    nodes = topology.nodes

    def extend(subgraph: set[int], extension: set[int], root: int) -> bool:
        if len(subgraph) == k:
            results.append(frozenset(subgraph))
            return limit is not None and len(results) >= limit
        candidates = sorted(extension)
        for node in candidates:
            remaining = {c for c in candidates if c > node}
            # ESU exclusive neighborhood: neighbors of `node` greater than
            # root that are neither in the subgraph nor adjacent to it.
            exclusive = set()
            for nbr in topology.neighbors(node):
                if nbr <= root or nbr in subgraph:
                    continue
                if any(nbr in topology.neighbors(s) for s in subgraph):
                    continue
                exclusive.add(nbr)
            if extend(subgraph | {node}, remaining | exclusive, root):
                return True
        return False

    for root in nodes:
        extension = {nbr for nbr in topology.neighbors(root) if nbr > root}
        if extend({root}, extension, root):
            break
    return results


class TopologyMapper:
    """Implements the allocation strategies over one chip topology."""

    def __init__(self, chip_topology: Topology,
                 costs: EditCosts | None = None,
                 candidate_limit: int = 20_000,
                 esu_max_request: int = 9,
                 cache_size: int = 512) -> None:
        self.chip = chip_topology
        self.costs = costs or EditCosts()
        self.candidate_limit = candidate_limit
        #: Largest request size for which candidates are enumerated
        #: exhaustively (ESU); beyond it a compact-region generator is used
        #: (the paper prunes aggressively and parallelizes instead).
        self.esu_max_request = esu_max_request
        #: LRU memo for :meth:`map_similar`, keyed on (request structure,
        #: frozen free-core set). Under tenant churn the same shapes recur
        #: against the same fragmentation states, and candidate enumeration
        #: plus GED scoring is by far the hot path. ``cache_size=0``
        #: disables caching.
        self.cache_size = cache_size
        self._similar_cache: OrderedDict[tuple, MappingResult] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- mapping cache -------------------------------------------------------
    def _cache_key(self, request: Topology, free: Topology,
                   require_connected: bool) -> tuple:
        """Structural identity of a ``map_similar`` call.

        The request's name is deliberately excluded (every tenant names its
        mesh differently); coordinates are included because
        ``_mesh_placements`` slides the request by its grid layout.
        """
        return (
            tuple(request.nodes),
            tuple(request.edges),
            tuple(sorted(request.coords.items())) if request.coords else None,
            frozenset(free.nodes),
            require_connected,
        )

    def clear_mapping_cache(self) -> None:
        self._similar_cache.clear()

    def cache_stats(self) -> dict[str, int | float]:
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._similar_cache),
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    # -- helpers ------------------------------------------------------------
    def free_topology(self, allocated: set[int]) -> Topology:
        free = [n for n in self.chip.nodes if n not in allocated]
        return self.chip.subtopology(free, name="free")

    def _check_capacity(self, request: Topology, free: Topology) -> None:
        if request.node_count > free.node_count:
            raise AllocationError(
                f"request needs {request.node_count} cores but only "
                f"{free.node_count} are free"
            )

    @staticmethod
    def _zigzag_order(topology: Topology) -> list[int]:
        """Boustrophedon order: row 0 left-to-right, row 1 right-to-left..."""
        if not topology.coords:
            return topology.nodes
        def key(node):
            row, col = topology.coords[node]
            return (row, col if row % 2 == 0 else -col)
        return sorted(topology.nodes, key=key)

    def _isomorphism_mapping(self, request: Topology,
                             candidate: Topology) -> dict[int, int] | None:
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            request.to_networkx(), candidate.to_networkx(),
            node_match=lambda a, b: a.get("abbr", "") == b.get("abbr", ""),
        )
        if matcher.is_isomorphic():
            return dict(matcher.mapping)
        return None

    # -- candidate generation -------------------------------------------------
    def _request_grid(self, request: Topology) -> dict[int, tuple[int, int]] | None:
        """Virtual node -> (row, col) within the request mesh, if a mesh."""
        shape = request.mesh_shape()
        if shape is None:
            return None
        if request.coords:
            min_row = min(r for r, _ in request.coords.values())
            min_col = min(c for _, c in request.coords.values())
            return {
                node: (r - min_row, c - min_col)
                for node, (r, c) in request.coords.items()
            }
        return {
            node: divmod(index, shape.cols)
            for index, node in enumerate(sorted(request.nodes))
        }

    def _mesh_placements(self, request: Topology, free: Topology):
        """Yield exact vmaps by sliding the request mesh over free cells."""
        grid = self._request_grid(request)
        if grid is None or not self.chip.coords:
            return
        by_coord = {coord: node for node, coord in self.chip.coords.items()}
        free_nodes = set(free.nodes)
        chip_rows = max(r for r, _ in self.chip.coords.values()) + 1
        chip_cols = max(c for _, c in self.chip.coords.values()) + 1
        shape = request.mesh_shape()
        orientations = [grid]
        if shape.rows != shape.cols:
            orientations.append({n: (c, r) for n, (r, c) in grid.items()})
        for oriented in orientations:
            height = max(r for r, _ in oriented.values()) + 1
            width = max(c for _, c in oriented.values()) + 1
            for base_row in range(chip_rows - height + 1):
                for base_col in range(chip_cols - width + 1):
                    vmap = {}
                    for node, (r, c) in oriented.items():
                        physical = by_coord.get((base_row + r, base_col + c))
                        if physical is None or physical not in free_nodes:
                            vmap = None
                            break
                        vmap[node] = physical
                    if vmap is not None:
                        yield vmap

    def _compact_candidates(self, free: Topology, k: int) -> list[Topology]:
        """Diverse connected k-regions: BFS balls grown from every free node."""
        seen: set[frozenset[int]] = set()
        candidates = []
        for seed in free.nodes:
            ball = free.bfs_order(seed)[:k]
            if len(ball) < k:
                continue
            key = frozenset(ball)
            if key in seen:
                continue
            seen.add(key)
            candidates.append(free.subtopology(ball))
        return candidates

    def _candidate_pool(self, request: Topology, free: Topology) -> tuple[list[Topology], int]:
        """Connected candidates of the right size plus a considered count."""
        k = request.node_count
        if k <= self.esu_max_request:
            subsets = enumerate_connected_subsets(free, k,
                                                  limit=self.candidate_limit)
            return [free.subtopology(s) for s in subsets], len(subsets)
        candidates = self._compact_candidates(free, k)
        return candidates, len(candidates)

    # -- strategies -----------------------------------------------------------
    def map_exact(self, request: Topology,
                  allocated: set[int] | None = None) -> MappingResult:
        """Exact-topology placement or TopologyLockIn."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        for vmap in self._mesh_placements(request, free):
            return MappingResult(
                strategy="exact", vmap=vmap, distance=0.0,
                connected=True, candidates_considered=1,
            )
        considered = 0
        request_cert = request.wl_certificate()
        candidates, considered = self._candidate_pool(request, free)
        for candidate in candidates:
            if candidate.wl_certificate() != request_cert:
                continue
            mapping = self._isomorphism_mapping(request, candidate)
            if mapping is not None:
                return MappingResult(
                    strategy="exact", vmap=mapping, distance=0.0,
                    connected=True, candidates_considered=considered,
                )
        raise TopologyLockIn(
            f"no exact placement for {request.name!r} "
            f"({request.node_count} cores requested, {free.node_count} free) "
            f"— the topology lock-in problem"
        )

    def map_straightforward(self, request: Topology,
                            allocated: set[int] | None = None) -> MappingResult:
        """Zig-zag by core ID, ignoring the requested topology."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        chosen = self._zigzag_order(free)[: request.node_count]
        vmap = dict(zip(sorted(request.nodes), chosen))
        candidate = free.subtopology(chosen)
        # Price the *naive* assignment itself — this strategy does not
        # optimize which virtual core lands on which physical core.
        distance = induced_edit_cost(request, candidate, dict(vmap), self.costs)
        return MappingResult(
            strategy="straightforward", vmap=vmap, distance=distance,
            connected=self.chip.is_connected(set(chosen)),
            candidates_considered=1,
        )

    def map_similar(self, request: Topology,
                    allocated: set[int] | None = None,
                    require_connected: bool = True) -> MappingResult:
        """Algorithm 1: minimum topology-edit-distance placement.

        Results are memoized per (request structure, free-core set): the
        placement is a pure function of those inputs, so a cache hit
        returns a copy of the earlier result without re-enumerating
        candidates or re-scoring GED.
        """
        allocated = allocated or set()
        free = self.free_topology(allocated)
        self._check_capacity(request, free)
        if self.cache_size <= 0:
            return self._map_similar_uncached(request, free, allocated,
                                              require_connected)
        key = self._cache_key(request, free, require_connected)
        cached = self._similar_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._similar_cache.move_to_end(key)
            return replace(cached, vmap=dict(cached.vmap))
        self.cache_misses += 1
        result = self._map_similar_uncached(request, free, allocated,
                                            require_connected)
        self._similar_cache[key] = replace(result, vmap=dict(result.vmap))
        while len(self._similar_cache) > self.cache_size:
            self._similar_cache.popitem(last=False)
        return result

    def _map_similar_uncached(self, request: Topology, free: Topology,
                              allocated: set[int],
                              require_connected: bool) -> MappingResult:
        request_cert = request.wl_certificate()

        for vmap in self._mesh_placements(request, free):
            return MappingResult(  # Algorithm 1 line 22: early exact return
                strategy="similar", vmap=vmap, distance=0.0,
                connected=True, candidates_considered=1,
            )

        pool, considered = self._candidate_pool(request, free)
        candidates: list[Topology] = []
        seen_certs: set[str] = set()
        for candidate in pool:
            cert = candidate.wl_certificate()
            if cert == request_cert:
                mapping = self._isomorphism_mapping(request, candidate)
                if mapping is not None:  # Algorithm 1 line 22: early return
                    return MappingResult(
                        strategy="similar", vmap=mapping, distance=0.0,
                        connected=True, candidates_considered=considered,
                    )
            if cert in seen_certs:  # line 25: dedup identical topologies
                continue
            seen_certs.add(cert)
            candidates.append(candidate)

        if not candidates:
            if require_connected:
                raise AllocationError(
                    f"free cores hold no connected {request.node_count}-subset"
                )
            return self.map_fragmented(request, allocated)

        best: tuple[float, Topology, dict[int, int]] | None = None
        for candidate in candidates:  # line 30-32 (serial here)
            distance, mapping = best_bijection(request, candidate, self.costs)
            if best is None or distance < best[0]:
                best = (distance, candidate, mapping)
        _distance, candidate, mapping = best
        distance, mapping = self._polish(request, candidate, mapping)
        return MappingResult(
            strategy="similar", vmap=mapping, distance=distance,
            connected=True, candidates_considered=considered,
        )

    def _polish(self, request: Topology, candidate: Topology,
                hungarian_seed: dict[int, int]) -> tuple[float, dict[int, int]]:
        """2-opt refinement from the Hungarian seed and a BFS-aligned seed.

        The Hungarian assignment only sees node-local costs; aligning two
        BFS traversals gives a geometry-aware alternative. The better
        refined bijection wins.
        """
        seeds = [hungarian_seed]
        request_corner = min(request.nodes, key=request.degree)
        candidate_corner = min(candidate.nodes, key=candidate.degree)
        seeds.append(dict(zip(request.bfs_order(request_corner),
                              candidate.bfs_order(candidate_corner))))
        # Snake-aligned seed: boustrophedon walks of both topologies zipped
        # together. Dataflow pipelines are laid along the snake walk of the
        # virtual topology (§3.1 programming model), so this seed keeps the
        # dominant traffic on short physical paths.
        seeds.append(dict(zip(self._zigzag_order(request),
                              self._zigzag_order(candidate))))
        hop = self._all_pairs_hops(candidate)
        outcomes = [
            self._stretch_aware_refine(request, candidate, seed, hop)
            for seed in seeds
        ]
        best_mapping = min(outcomes, key=lambda pair: pair[0])[1]
        distance = induced_edit_cost(request, candidate, dict(best_mapping),
                                     self.costs)
        return distance, best_mapping

    @staticmethod
    def _all_pairs_hops(topology: Topology) -> dict[int, dict[int, int]]:
        from collections import deque

        hops: dict[int, dict[int, int]] = {}
        for start in topology.nodes:
            dist = {start: 0}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in topology.neighbors(node):
                    if nbr not in dist:
                        dist[nbr] = dist[node] + 1
                        frontier.append(nbr)
            hops[start] = dist
        return hops

    #: Weight of edge *stretch* (extra hops of a request edge on the
    #: physical fabric) relative to one edit operation. This realizes the
    #: paper's customizable EdgeMatch: an edge mapped 3 hops apart is worse
    #: than one mapped 2 hops apart, even though plain GED prices both as
    #: a single deletion.
    STRETCH_WEIGHT = 0.5

    def _stretch_objective(self, request: Topology, candidate: Topology,
                           mapping: dict[int, int],
                           hop: dict[int, dict[int, int]]) -> float:
        cost = induced_edit_cost(request, candidate, dict(mapping),
                                 self.costs)
        stretch = sum(
            hop[mapping[u]].get(mapping[v], request.node_count) - 1
            for u, v in request.edges
        )
        return cost + self.STRETCH_WEIGHT * stretch

    def _stretch_aware_refine(self, request: Topology, candidate: Topology,
                              seed: dict[int, int],
                              hop: dict[int, dict[int, int]],
                              max_passes: int = 6
                              ) -> tuple[float, dict[int, int]]:
        """2-opt hill climbing on edit-cost + stretch."""
        mapping = dict(seed)
        nodes = request.nodes
        current = self._stretch_objective(request, candidate, mapping, hop)
        for _ in range(max_passes):
            improved = False
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    mapping[a], mapping[b] = mapping[b], mapping[a]
                    trial = self._stretch_objective(
                        request, candidate, mapping, hop)
                    if trial + 1e-12 < current:
                        current = trial
                        improved = True
                    else:
                        mapping[a], mapping[b] = mapping[b], mapping[a]
            if not improved:
                break
        return current, mapping

    def map_fragmented(self, request: Topology,
                       allocated: set[int] | None = None) -> MappingResult:
        """Relaxed R-3: allow a disconnected placement (uses fragments)."""
        free = self.free_topology(allocated or set())
        self._check_capacity(request, free)
        chosen: list[int] = []
        remaining = set(free.nodes)
        # Greedily take the largest free fragments first, zig-zag inside.
        while len(chosen) < request.node_count and remaining:
            fragment = self._largest_fragment(free, remaining)
            ordered = self._zigzag_order(free.subtopology(fragment))
            take = min(len(ordered), request.node_count - len(chosen))
            chosen.extend(ordered[:take])
            remaining -= fragment
        candidate = free.subtopology(chosen)
        distance, mapping = best_bijection(request, candidate, self.costs)
        return MappingResult(
            strategy="fragmented", vmap=mapping, distance=distance,
            connected=self.chip.is_connected(set(chosen)),
            candidates_considered=1,
        )

    @staticmethod
    def _largest_fragment(free: Topology, remaining: set[int]) -> set[int]:
        best: set[int] = set()
        unvisited = set(remaining)
        while unvisited:
            seed = next(iter(unvisited))
            stack = [seed]
            comp = {seed}
            while stack:
                node = stack.pop()
                for nbr in free.neighbors(node):
                    if nbr in remaining and nbr not in comp:
                        comp.add(nbr)
                        stack.append(nbr)
            unvisited -= comp
            if len(comp) > len(best):
                best = comp
        return best
