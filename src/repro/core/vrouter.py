"""vRouter: virtualization of instruction dispatch and the NoC (§4.1).

Two cooperating pieces:

- :class:`InstructionVRouter` lives in the NPU controller. It redirects
  each offloaded instruction from its virtual core ID to the physical
  core via the VM's routing table. Consecutive instructions to the same
  virtual core skip the table lookup (§6.2.1), modelled with a one-entry
  last-translation cache per VM.
- :class:`NocVRouter` lives in each core's send/receive engine. It
  rewrites destination core IDs in NoC transfers and — when the VM asked
  for NoC non-interference — supplies an explicit route confined to the
  virtual NPU's physical nodes (the "predefined routing direction"
  strategy of §4.1.2). In ``"dor"`` mode it leaves routing to the chip's
  default dimension-order algorithm, which may traverse foreign cores.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.arch import calibration
from repro.arch.topology import Topology
from repro.core.routing_table import RoutingTable
from repro.errors import IsolationViolation, RoutingError


@dataclass(frozen=True)
class Redirect:
    """Result of an instruction-router translation."""

    vmid: int
    v_core: int
    p_core: int
    cycles: int
    cached: bool


class InstructionVRouter:
    """The controller-side router over all VMs' routing tables."""

    def __init__(self,
                 lookup_cycles: int = calibration.VROUTER_RT_LOOKUP) -> None:
        self._tables: dict[int, RoutingTable] = {}
        self._last: dict[int, tuple[int, int]] = {}  # vmid -> (v_core, p_core)
        self.lookup_cycles = lookup_cycles
        self.lookups = 0
        self.cached_hits = 0

    # -- table management (driven by the hyper-mode controller) --------------
    def install(self, table: RoutingTable) -> None:
        self._tables[table.vmid] = table
        self._last.pop(table.vmid, None)

    def remove(self, vmid: int) -> None:
        self._tables.pop(vmid, None)
        self._last.pop(vmid, None)

    def table_for(self, vmid: int) -> RoutingTable:
        table = self._tables.get(vmid)
        if table is None:
            raise IsolationViolation(f"no routing table installed for VM {vmid}")
        return table

    @property
    def vmids(self) -> list[int]:
        return sorted(self._tables)

    # -- translation -----------------------------------------------------------
    def redirect(self, vmid: int, v_core: int) -> Redirect:
        """Translate an instruction's virtual core to the physical core."""
        self.lookups += 1
        last = self._last.get(vmid)
        if last is not None and last[0] == v_core:
            self.cached_hits += 1
            return Redirect(vmid, v_core, last[1], cycles=0, cached=True)
        p_core = self.table_for(vmid).translate(v_core)
        self._last[vmid] = (v_core, p_core)
        return Redirect(vmid, v_core, p_core, cycles=self.lookup_cycles,
                        cached=False)

    # -- configuration cost (Fig 11) ------------------------------------------
    @staticmethod
    def configure_cycles(core_count: int) -> int:
        """Cycles to query core availability and write the routing table."""
        if core_count < 1:
            raise RoutingError(f"core count must be >= 1, got {core_count}")
        return (calibration.RT_CONFIG_BASE
                + core_count * calibration.RT_CONFIG_PER_CORE)


@dataclass(frozen=True)
class ResolvedRoute:
    """A virtual send resolved to physical endpoints and (maybe) a path."""

    p_src: int
    p_dst: int
    #: Explicit hop list when confined routing is active; None -> chip DOR.
    path: list[int] | None
    #: Physical cores owned by the sending VM (for interference accounting).
    owned: frozenset[int]
    #: Added latency before the first packet (routing-table lookup).
    first_packet_delay: int
    #: Added latency at the receiver (meta-zone fetch).
    completion_delay: int


class NocVRouter:
    """Per-VM NoC virtualization bound to the physical chip topology."""

    def __init__(self, chip_topology: Topology, table: RoutingTable,
                 mode: str = "confined") -> None:
        if mode not in ("confined", "dor"):
            raise RoutingError(f"unknown NoC routing mode {mode!r}")
        self.topology = chip_topology
        self.table = table
        self.mode = mode
        self._owned = frozenset(table.physical_cores())
        missing = [p for p in self._owned if p not in chip_topology]
        if missing:
            raise RoutingError(
                f"routing table maps to cores absent from the chip: {missing}"
            )

    @property
    def owned(self) -> frozenset[int]:
        return self._owned

    def resolve(self, v_src: int, v_dst: int) -> ResolvedRoute:
        p_src = self.table.translate(v_src)
        p_dst = self.table.translate(v_dst)
        path = None
        if self.mode == "confined" and p_src != p_dst:
            path = self.confined_path(p_src, p_dst)
        return ResolvedRoute(
            p_src=p_src,
            p_dst=p_dst,
            path=path,
            owned=self._owned,
            first_packet_delay=(calibration.VROUTER_RT_LOOKUP
                                + calibration.VROUTER_REWRITE),
            completion_delay=calibration.VROUTER_META_FETCH,
        )

    def confined_path(self, p_src: int, p_dst: int) -> list[int]:
        """Shortest path that never leaves the VM's physical cores.

        Exists whenever the virtual topology is connected (requirement
        R-3 of §4.3); otherwise the VM must fall back to DOR routing and
        accept interference.
        """
        if p_src not in self._owned or p_dst not in self._owned:
            raise IsolationViolation(
                f"endpoints {p_src}->{p_dst} outside VM {self.table.vmid}"
            )
        parents: dict[int, int] = {p_src: p_src}
        frontier = deque([p_src])
        while frontier:
            current = frontier.popleft()
            if current == p_dst:
                break
            for nbr in self.topology.neighbors(current):
                if nbr in self._owned and nbr not in parents:
                    parents[nbr] = current
                    frontier.append(nbr)
        if p_dst not in parents:
            raise RoutingError(
                f"no confined route {p_src}->{p_dst}: virtual topology of "
                f"VM {self.table.vmid} is disconnected (violates R-3)"
            )
        path = [p_dst]
        while path[-1] != p_src:
            path.append(parents[path[-1]])
        return list(reversed(path))

    def would_interfere(self, v_src: int, v_dst: int) -> bool:
        """Does the *default DOR* route leak outside this VM's cores?"""
        p_src = self.table.translate(v_src)
        p_dst = self.table.translate(v_dst)
        if p_src == p_dst:
            return False
        dor = self.topology.dor_path(p_src, p_dst)
        return any(node not in self._owned for node in dor)
