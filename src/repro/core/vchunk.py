"""vChunk: range-based NPU memory virtualization (§4.2).

Instead of fixed 4 KB pages, vChunk maps whole buddy-allocator blocks with
a **Range Translation Table** (RTT). Each entry is ``(VA 48b, PA 48b,
size 32b, perm 4b, last_v 8b)`` — 140 bits of architectural state, 144 in
hardware (Fig 14 caption). Entries are sorted by virtual address and the
walker exploits the paper's three access patterns:

- ``RTT_CUR`` — index of the entry in current use; with monotonically
  increasing addresses (Pattern-2) the *next* entry is usually the match,
  so the walk scans forward from ``RTT_CUR`` (wrapping at ``RTT_END``).
- ``last_v`` — per-entry hint recording which entry was needed *next* at
  this point in the previous iteration (Pattern-3); on a miss the walker
  checks it before scanning, which makes the jump back to the first tensor
  at an iteration boundary cost one probe instead of a full scan.

A small fully-associative :class:`RangeTlb` caches recently used entries,
and :class:`AccessCounter` implements the per-vNPU memory-bandwidth cap.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.arch import calibration
from repro.errors import PermissionFault, TranslationFault
from repro.mem.address_space import (
    TranslationResult,
    Translator,
    check_permission_string,
)

VA_BITS = 48
SIZE_BITS = 32
LAST_V_BITS = 8

#: Architectural bits per RTT entry (VA + PA + size + perm + last_v).
RTT_ENTRY_BITS = VA_BITS + VA_BITS + SIZE_BITS + 4 + LAST_V_BITS


@dataclass
class RttEntry:
    """One range mapping. ``last_v`` is mutable walker state."""

    virtual_address: int
    physical_address: int
    size: int
    permissions: str = "RW"
    last_v: int | None = None

    def __post_init__(self) -> None:
        check_permission_string(self.permissions)
        if not 0 <= self.virtual_address < (1 << VA_BITS):
            raise TranslationFault(
                self.virtual_address, detail="VA exceeds 48-bit field"
            )
        if not 0 <= self.physical_address < (1 << VA_BITS):
            raise TranslationFault(
                self.virtual_address, detail="PA exceeds 48-bit field"
            )
        if not 0 < self.size < (1 << SIZE_BITS):
            raise TranslationFault(
                self.virtual_address,
                detail=f"range size {self.size} outside 32-bit field",
            )

    @property
    def end(self) -> int:
        return self.virtual_address + self.size

    def covers(self, va: int) -> bool:
        return self.virtual_address <= va < self.end


class RangeTranslationTable:
    """The per-core RTT: entries sorted ascending by VA, non-overlapping."""

    def __init__(self, entries: list[RttEntry] | None = None,
                 use_last_v: bool = True) -> None:
        self._entries: list[RttEntry] = []
        self.cur_index = 0  # RTT_CUR
        #: Ablation knob: disable the last_v loop hint (walks fall back to
        #: pure sequential scanning from RTT_CUR).
        self.use_last_v = use_last_v
        for entry in entries or []:
            self.insert(entry)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[RttEntry]:
        return list(self._entries)

    def insert(self, entry: RttEntry) -> None:
        """Insert keeping VA order; rejects overlap with existing ranges."""
        for existing in self._entries:
            if (entry.virtual_address < existing.end
                    and existing.virtual_address < entry.end):
                raise TranslationFault(
                    entry.virtual_address,
                    detail=(
                        f"range overlaps existing entry at "
                        f"{existing.virtual_address:#x}"
                    ),
                )
        self._entries.append(entry)
        self._entries.sort(key=lambda e: e.virtual_address)
        self.cur_index = min(self.cur_index, len(self._entries) - 1)

    def entry_at(self, index: int) -> RttEntry:
        return self._entries[index]

    def find_index(self, va: int) -> int | None:
        """Reference lookup by binary search (no cycle accounting)."""
        lo, hi = 0, len(self._entries) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            entry = self._entries[mid]
            if entry.covers(va):
                return mid
            if va < entry.virtual_address:
                hi = mid - 1
            else:
                lo = mid + 1
        return None

    def walk(self, va: int) -> tuple[int, int]:
        """Hardware walk: returns ``(entry_index, cycles)``.

        Order of probes (§4.2): current entry, then the current entry's
        ``last_v`` hint, then sequential scan from ``RTT_CUR`` wrapping at
        the table end. Updates ``last_v`` on the departed entry and
        ``RTT_CUR`` on success.
        """
        if not self._entries:
            raise TranslationFault(va, detail="empty RTT")
        cycles = 0
        cur = self._entries[self.cur_index]
        cycles += calibration.RTT_ENTRY_SCAN
        if cur.covers(va):
            return self.cur_index, cycles
        hint = cur.last_v if self.use_last_v else None
        if hint is not None and hint < len(self._entries):
            cycles += calibration.RTT_LAST_V_HIT - calibration.RTT_ENTRY_SCAN
            if self._entries[hint].covers(va):
                self._finish_walk(hint)
                return hint, calibration.RTT_LAST_V_HIT
        index = self.cur_index
        for _ in range(len(self._entries)):
            index = (index + 1) % len(self._entries)  # wrap at RTT_END
            cycles += calibration.RTT_ENTRY_SCAN
            if self._entries[index].covers(va):
                self._finish_walk(index)
                return index, cycles
        raise TranslationFault(va, detail="no RTT entry covers address")

    def _finish_walk(self, found: int) -> None:
        self._entries[self.cur_index].last_v = found
        self.cur_index = found


class RangeTlb:
    """Small fully-associative cache of RTT entry indices (LRU)."""

    def __init__(self, entries: int = 4) -> None:
        if entries < 1:
            raise TranslationFault(0, detail=f"range TLB needs >= 1 entry, got {entries}")
        self.capacity = entries
        self._cached: OrderedDict[int, RttEntry] = OrderedDict()

    def lookup(self, va: int) -> RttEntry | None:
        for index, entry in self._cached.items():
            if entry.covers(va):
                self._cached.move_to_end(index)
                return entry
        return None

    def insert(self, index: int, entry: RttEntry) -> None:
        self._cached[index] = entry
        self._cached.move_to_end(index)
        while len(self._cached) > self.capacity:
            self._cached.popitem(last=False)

    def flush(self) -> None:
        self._cached.clear()

    def __len__(self) -> int:
        return len(self._cached)


class RangeTranslator(Translator):
    """The vChunk translation path: range TLB in front of the RTT walker."""

    def __init__(self, table: RangeTranslationTable | None = None,
                 tlb_entries: int = 4,
                 hit_latency: int = calibration.TLB_HIT_LATENCY) -> None:
        super().__init__()
        self.table = table or RangeTranslationTable()
        self.tlb = RangeTlb(tlb_entries)
        self.hit_latency = hit_latency
        self.walk_cycles_total = 0
        self.last_v_hits = 0

    def map_range(self, va: int, pa: int, nbytes: int,
                  permissions: str = "RW") -> RttEntry:
        """Install one range mapping (hypervisor operation). One entry."""
        entry = RttEntry(va, pa, nbytes, permissions)
        self.table.insert(entry)
        return entry

    @property
    def entry_count(self) -> int:
        return len(self.table)

    def translate(self, va: int, access: str = "R") -> TranslationResult:
        check_permission_string(access)
        cached = self.tlb.lookup(va)
        if cached is not None:
            entry, cycles, hit = cached, self.hit_latency, True
        else:
            index, walk_cycles = self.table.walk(va)
            entry = self.table.entry_at(index)
            self.tlb.insert(index, entry)
            self.walk_cycles_total += walk_cycles
            if walk_cycles == calibration.RTT_LAST_V_HIT:
                self.last_v_hits += 1
            cycles, hit = walk_cycles, False
        self._record(hit=hit)
        if any(ch not in entry.permissions for ch in access):
            raise PermissionFault(va, requested=access, granted=entry.permissions)
        offset = va - entry.virtual_address
        return TranslationResult(
            virtual_address=va,
            physical_address=entry.physical_address + offset,
            contiguous_bytes=entry.size - offset,
            cycles=cycles,
            hit=hit,
        )


class AccessCounter:
    """Per-vNPU memory-bandwidth cap (§4.2's Access Counter).

    Counts bytes within a monitoring window; once a window's budget is
    spent, further traffic is delayed to the next window. ``charge``
    returns the stall (in cycles) the DMA engine must insert.
    """

    def __init__(self, window_cycles: int, max_bytes_per_window: int | None) -> None:
        if window_cycles <= 0:
            raise ValueError(f"window must be positive, got {window_cycles}")
        if max_bytes_per_window is not None and max_bytes_per_window <= 0:
            raise ValueError("byte budget must be positive or None (uncapped)")
        self.window_cycles = window_cycles
        self.max_bytes_per_window = max_bytes_per_window
        self._window_start = 0
        self._window_bytes = 0
        self.total_bytes = 0
        self.total_stall_cycles = 0

    def charge(self, nbytes: int, now: int) -> int:
        """Account ``nbytes`` at cycle ``now``; returns required stall."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        self.total_bytes += nbytes
        if self.max_bytes_per_window is None:
            return 0
        if now >= self._window_start + self.window_cycles:
            windows_ahead = (now - self._window_start) // self.window_cycles
            self._window_start += windows_ahead * self.window_cycles
            self._window_bytes = 0
        self._window_bytes += nbytes
        if self._window_bytes <= self.max_bytes_per_window:
            return 0
        overflow_windows = (self._window_bytes - 1) // self.max_bytes_per_window
        resume = self._window_start + overflow_windows * self.window_cycles
        stall = max(0, resume - now)
        self.total_stall_cycles += stall
        return stall
