"""Routing tables: the vRouter's translation structures (§4.1.1).

Two organizations, exactly as in Figure 4:

- :class:`StandardRoutingTable` — one entry per virtual core, mapping
  ``v_CoreID -> p_CoreID``, optionally annotated with a routing
  *direction* per entry (used by the NoC vRouter on irregular virtual
  topologies, Figure 5).
- :class:`ShapedRoutingTable` — the compressed form for regular virtual
  topologies: a single entry holding the base virtual ID, base physical
  ID and a 2D-mesh shape; translation is row/column arithmetic. This is
  the "2D Mesh, 1 Entry" optimization that saves controller SRAM.

Both expose ``translate``, ``entry_count`` and ``sram_bits`` so the
hardware-cost model (Fig 19) and the controller can treat them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.arch.topology import MeshShape
from repro.errors import IsolationViolation, RoutingError

#: Bits per standard entry: v_CoreID (16) + p_CoreID (16) + direction (4).
STANDARD_ENTRY_BITS = 36

#: Bits for a shaped entry: v/p base IDs (16+16) + rows (8) + cols (8).
SHAPED_ENTRY_BITS = 48


class RoutingTable(ABC):
    """Common interface of the two routing-table organizations."""

    def __init__(self, vmid: int) -> None:
        if vmid < 0:
            raise RoutingError(f"negative VMID {vmid}")
        self.vmid = vmid

    @abstractmethod
    def translate(self, v_core: int) -> int:
        """Map a virtual core ID to its physical core ID."""

    @abstractmethod
    def virtual_cores(self) -> list[int]:
        """All virtual core IDs this table maps."""

    @property
    @abstractmethod
    def entry_count(self) -> int:
        ...

    @property
    @abstractmethod
    def sram_bits(self) -> int:
        ...

    def physical_cores(self) -> list[int]:
        return [self.translate(v) for v in self.virtual_cores()]

    def reverse(self, p_core: int) -> int:
        """Physical -> virtual (used by the receive path)."""
        for v_core in self.virtual_cores():
            if self.translate(v_core) == p_core:
                return v_core
        raise IsolationViolation(
            f"physical core {p_core} does not belong to VM {self.vmid}"
        )


@dataclass(frozen=True)
class RouteEntry:
    """One standard routing-table row (Figure 5): mapping + direction."""

    v_core: int
    p_core: int
    direction: str = ""  # "", "left", "right", "up", "down" — relay hint


class StandardRoutingTable(RoutingTable):
    """Type: Standard — explicit per-core entries."""

    def __init__(self, vmid: int, mapping: dict[int, int],
                 directions: dict[int, str] | None = None) -> None:
        super().__init__(vmid)
        if not mapping:
            raise RoutingError("routing table needs at least one entry")
        physical = list(mapping.values())
        if len(set(physical)) != len(physical):
            raise RoutingError(
                f"duplicate physical cores in routing table: {sorted(physical)}"
            )
        directions = directions or {}
        unknown = set(directions) - set(mapping)
        if unknown:
            raise RoutingError(
                f"direction entries for unmapped virtual cores: {sorted(unknown)}"
            )
        self._entries = {
            v_core: RouteEntry(v_core, p_core, directions.get(v_core, ""))
            for v_core, p_core in mapping.items()
        }

    def translate(self, v_core: int) -> int:
        entry = self._entries.get(v_core)
        if entry is None:
            raise IsolationViolation(
                f"virtual core {v_core} is not mapped for VM {self.vmid}"
            )
        return entry.p_core

    def direction(self, v_core: int) -> str:
        entry = self._entries.get(v_core)
        if entry is None:
            raise IsolationViolation(
                f"virtual core {v_core} is not mapped for VM {self.vmid}"
            )
        return entry.direction

    def virtual_cores(self) -> list[int]:
        return sorted(self._entries)

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def sram_bits(self) -> int:
        return self.entry_count * STANDARD_ENTRY_BITS


class ShapedRoutingTable(RoutingTable):
    """Type: 2D Mesh — one entry describing a whole rectangular block.

    Virtual core ``v`` (``v_base <= v < v_base + rows*cols``, row-major in
    the *virtual* mesh) maps to the physical core at the same (row, col)
    offset from ``p_base`` in the physical mesh of width ``chip_cols``.
    """

    def __init__(self, vmid: int, shape: MeshShape, p_base: int,
                 chip_cols: int, v_base: int = 0) -> None:
        super().__init__(vmid)
        if chip_cols < shape.cols:
            raise RoutingError(
                f"shape {shape} wider than the chip ({chip_cols} columns)"
            )
        if p_base < 0 or v_base < 0:
            raise RoutingError("base core IDs must be non-negative")
        if p_base % chip_cols + shape.cols > chip_cols:
            raise RoutingError(
                f"block at physical base {p_base} would wrap the mesh row"
            )
        self.shape = shape
        self.p_base = p_base
        self.v_base = v_base
        self.chip_cols = chip_cols

    def translate(self, v_core: int) -> int:
        offset = v_core - self.v_base
        if not 0 <= offset < self.shape.node_count:
            raise IsolationViolation(
                f"virtual core {v_core} outside shaped block for VM {self.vmid}"
            )
        row, col = divmod(offset, self.shape.cols)
        return self.p_base + row * self.chip_cols + col

    def virtual_cores(self) -> list[int]:
        return list(range(self.v_base, self.v_base + self.shape.node_count))

    @property
    def entry_count(self) -> int:
        return 1

    @property
    def sram_bits(self) -> int:
        return SHAPED_ENTRY_BITS
