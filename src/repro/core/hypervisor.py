"""The vNPU hypervisor: lifecycle + meta-table management (§5.2).

The hypervisor is the only agent allowed to touch hyper-mode state. For
each ``create_vnpu`` it:

1. allocates physical cores with the configured topology-mapping strategy
   (resolved by name through the :mod:`repro.core.strategies` registry;
   the built-ins are exact / similar / straightforward / fragmented);
2. builds the routing table — the compressed *shaped* form when the
   mapping landed on a contiguous 2D-mesh block, per-entry standard form
   otherwise — and installs it through the hyper-mode controller (Fig 11
   configuration cost is recorded on the vNPU);
3. allocates guest memory from the buddy system and maps each buddy block
   as **one RTT entry** (sorted by guest VA), building the vChunk
   translator;
4. installs the meta tables into each owned core's scratchpad meta-zone;
5. wires the NoC vRouter in confined or DOR mode per the spec.

``destroy_vnpu`` releases cores, coalesces memory back into the buddy
allocator and removes the routing table; ``kill_vnpu`` is its
fail-stop sibling (kerf's ``kill``): the same teardown, but the
resident guest state is *abandoned*, not drained — the caller gets the
lost byte count back to account the discarded work. The hypervisor
also carries a health flag for fault injection: ``mark_failed`` puts
the chip in degraded mode, where ``create_vnpu`` (and migrating *onto*
the chip) fail fast with :class:`~repro.errors.HypervisorError` while
drain operations — migrating *off*, resizing a resident down,
destroy/kill — stay allowed. ``migrate_vnpu`` is live
migration for defragmentation: the tenant is re-placed (on this chip or
another chip's hypervisor), its guest memory re-mapped onto the
destination buddy allocator, routing table and meta-zones rebuilt, and
the data-movement + reconfiguration cost returned so a serving loop can
charge it to the session's timeline. ``resize_vnpu`` is the elastic
sibling: grow or shrink a live vNPU in place when the adjacent cores
and memory allow (shrinks are carved out of the tenant's own block;
the freed remainder coalesces), falling back to the same re-place
mechanics as in-place migration when they don't, with the charge priced
through :func:`repro.cost.charges.resize_cycles`.
"""

from __future__ import annotations

from repro.arch.chip import Chip
from repro.core.routing_table import (
    RoutingTable,
    ShapedRoutingTable,
    StandardRoutingTable,
)
from repro.core.strategies import MappingStrategy, resolve_strategy
from repro.core.topology_mapping import MappingResult, TopologyMapper
from repro.core.vchunk import AccessCounter, RangeTranslator, RTT_ENTRY_BITS
from repro.core.vnpu import VirtualNPU, VNpuSpec
from repro.core.vrouter import NocVRouter
from repro.core.ged import EditCosts
from repro.errors import AllocationError, HypervisorError
from repro.mem.buddy import Block, BuddyAllocator

#: Guest virtual addresses start here (a nonzero base catches null derefs).
GUEST_VA_BASE = 0x1_0000

#: Built-in strategy names (kept for backward compatibility; the live
#: set — including user-registered strategies — is
#: :func:`repro.core.strategies.available_strategies`).
STRATEGIES = ("exact", "similar", "straightforward", "fragmented")


def guest_capacity_bytes(config) -> int:
    """Largest guest allocation a chip built from ``config`` can map.

    The static counterpart of :attr:`Hypervisor.guest_memory_capacity`
    (the buddy pool size), computable without building the chip — what
    admission-style validation against a *planned* fleet uses.
    """
    return _largest_pow2_at_most(config.memory.capacity_bytes)


def _largest_pow2_at_most(value: int) -> int:
    return 1 << (value.bit_length() - 1)


class Hypervisor:
    """Manages all virtual NPUs of one chip."""

    def __init__(self, chip: Chip, strategy: str = "similar",
                 costs: EditCosts | None = None,
                 rtt_tlb_entries: int = 4,
                 min_block: int = 1 << 20) -> None:
        resolve_strategy(strategy)  # fail fast on unknown names
        self.chip = chip
        self.strategy = strategy
        self.mapper = TopologyMapper(chip.topology, costs=costs)
        self.rtt_tlb_entries = rtt_tlb_entries
        capacity = _largest_pow2_at_most(chip.config.memory.capacity_bytes)
        self.buddy = BuddyAllocator(capacity=capacity, min_block=min_block)
        self._vnpus: dict[int, VirtualNPU] = {}
        self._next_vmid = 1
        self._healthy = True

    # -- queries ----------------------------------------------------------
    @property
    def vnpus(self) -> list[VirtualNPU]:
        return [self._vnpus[vmid] for vmid in sorted(self._vnpus)]

    def vnpu(self, vmid: int) -> VirtualNPU:
        try:
            return self._vnpus[vmid]
        except KeyError:
            raise HypervisorError(f"no vNPU with VMID {vmid}") from None

    @property
    def allocated_cores(self) -> set[int]:
        cores: set[int] = set()
        for vnpu in self._vnpus.values():
            cores.update(vnpu.physical_cores)
        return cores

    def core_utilization(self) -> float:
        return len(self.allocated_cores) / self.chip.core_count

    def free_core_count(self) -> int:
        return self.chip.core_count - len(self.allocated_cores)

    @property
    def healthy(self) -> bool:
        """False while the chip is inside an injected fault outage."""
        return self._healthy

    @property
    def guest_memory_capacity(self) -> int:
        """Largest guest allocation this chip can ever satisfy (the buddy
        pool size) — what admission validates ``memory_bytes`` against."""
        return self.buddy.capacity

    # -- health lifecycle --------------------------------------------------
    def mark_failed(self) -> None:
        """Enter degraded mode: new placements fail fast, drains allowed."""
        self._healthy = False

    def mark_recovered(self) -> None:
        self._healthy = True

    def _require_healthy(self, operation: str) -> None:
        if not self._healthy:
            raise HypervisorError(
                f"chip {self.chip.topology.name!r} is failed; "
                f"cannot {operation}")

    # -- checkpoint --------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Logical chip state as a picklable dict.

        Captures what ``restore_state`` needs to rebuild an equivalent
        hypervisor on a fresh chip: health, the vmid counter, and each
        resident vNPU's (vmid, spec, mapping) triple. Buddy block
        *addresses* are intentionally not part of the contract — a
        restore re-allocates from a fresh pool, so guests hold the same
        sizes at possibly different physical addresses.
        """
        return {
            "healthy": self._healthy,
            "next_vmid": self._next_vmid,
            "vnpus": [(v.vmid, v.spec, v.mapping)
                      for v in self.vnpus],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild residents from a ``snapshot_state`` dict.

        Must run on a freshly constructed hypervisor (no residents);
        vNPUs are re-provisioned at their pinned vmids with their
        recorded mappings, then health and the vmid counter are
        restored — so a later ``snapshot_state`` round-trips equal.
        """
        if self._vnpus:
            raise HypervisorError(
                "restore_state needs a fresh hypervisor (has "
                f"{len(self._vnpus)} resident vNPUs)")
        for vmid, spec, mapping in state["vnpus"]:
            self._provision(spec, mapping, vmid=vmid)
        self._next_vmid = state["next_vmid"]
        self._healthy = state["healthy"]

    # -- lifecycle -----------------------------------------------------------
    def create_vnpu(self, spec: VNpuSpec,
                    strategy: str | None = None) -> VirtualNPU:
        """Allocate and configure a virtual NPU for ``spec``."""
        self._require_healthy(f"create vNPU {spec.name!r}")
        strategy = strategy or self.strategy
        mapping = self._map_cores(spec, resolve_strategy(strategy))
        return self._provision(spec, mapping)

    def destroy_vnpu(self, vmid: int) -> None:
        self._teardown(self.vnpu(vmid))

    def kill_vnpu(self, vmid: int) -> int:
        """Force-terminate a vNPU: immediate teardown, state abandoned.

        The fail-stop path (kerf's ``kill``, vs ``destroy_vnpu`` =
        ``unload``): no drain, no data movement — the resident guest
        memory is simply discarded. Returns the abandoned byte count so
        the caller can account the lost work. Fails fast
        (:class:`~repro.errors.HypervisorError`) on an unknown VMID,
        and is allowed on a failed chip (it is *the* failed-chip path).
        """
        vnpu = self.vnpu(vmid)
        lost_bytes = vnpu.memory_bytes
        self._teardown(vnpu)
        return lost_bytes

    def migrate_vnpu(self, vmid: int,
                     destination: "Hypervisor | None" = None,
                     strategy: str | None = None) -> tuple[VirtualNPU, int]:
        """Live-migrate a vNPU onto ``destination`` (``None``/self = defrag
        in place on this chip).

        The tenant is re-placed with ``strategy`` (default: the
        destination's configured strategy), its guest memory re-mapped
        onto the destination's buddy allocator, and routing table +
        meta-zones rebuilt there. Returns the new :class:`VirtualNPU`
        (same VMID for in-place migration, a fresh destination VMID for
        cross-chip moves) and the migration cost in cycles: draining and
        refilling the resident memory at the slower of the two memory
        systems, plus the Fig-11 routing-table reconfiguration already
        charged as the new vNPU's ``setup_cycles``.

        A failed placement raises :class:`~repro.errors.AllocationError`
        (or :class:`~repro.errors.TopologyLockIn`) and leaves the source
        vNPU untouched.
        """
        destination = destination if destination is not None else self
        # Migrating *off* a failed chip is the evacuation drain and stays
        # allowed; migrating *onto* one fails fast before any teardown.
        destination._require_healthy(f"migrate vNPU {vmid} onto it")
        vnpu = self.vnpu(vmid)
        strat = resolve_strategy(strategy or destination.strategy)
        in_place = destination is self
        if in_place:
            # The tenant's own cores count as free: in-place migration
            # exists to *compact* the chip, and the mapper may re-use any
            # of them.
            allocated = self.allocated_cores - set(vnpu.physical_cores)
        else:
            allocated = destination.allocated_cores
        mapping = strat.map(destination.mapper, vnpu.spec, allocated)
        resident_bytes = vnpu.memory_bytes

        if in_place:
            old_mapping = vnpu.mapping
            self._teardown(vnpu)
            try:
                migrated = self._provision(vnpu.spec, mapping, vmid=vmid)
            except AllocationError:
                # Restore the original placement (same cores, same block
                # sizes against the just-freed space: cannot fail).
                self._provision(vnpu.spec, old_mapping, vmid=vmid)
                raise
        else:
            migrated = destination._provision(vnpu.spec, mapping)
            self._teardown(vnpu)

        cycles = self._migration_cycles(resident_bytes, destination, migrated)
        return migrated, cycles

    def resize_vnpu(self, vmid: int, new_request: VNpuSpec,
                    strategy: str | None = None) -> tuple[VirtualNPU, int]:
        """Grow or shrink a live vNPU to ``new_request``, keeping its VMID.

        The resize is *in place* when adjacent cores and memory allow —
        a shrink is first attempted strictly within the tenant's own
        cores (the freed remainder coalesces back into the buddy
        allocator), and a grow that lands on a superset of the current
        cores keeps the resident data where it is, so only the Fig-11
        reconfiguration is charged. When the adjacent cores do not
        allow it, the resize falls back to the same re-place mechanics
        as an in-place :meth:`migrate_vnpu` and the retained resident
        memory (``min(old, new)`` bytes) is additionally copied, priced
        through :func:`repro.cost.charges.resize_cycles`.

        Returns the resized :class:`VirtualNPU` (same VMID) and the
        resize charge in cycles. A failed placement or memory grow
        raises :class:`~repro.errors.AllocationError` (or
        :class:`~repro.errors.TopologyLockIn`) and leaves the source
        vNPU untouched.
        """
        vnpu = self.vnpu(vmid)
        strat = resolve_strategy(strategy or self.strategy)
        own = set(vnpu.physical_cores)
        mapping: MappingResult | None = None
        if new_request.core_count <= len(own):
            # Shrink: prefer carving the smaller mesh out of the
            # tenant's own block — guaranteed in place, data stays put.
            outside_own = set(self.chip.topology.nodes) - own
            try:
                mapping = strat.map(self.mapper, new_request, outside_own)
            except AllocationError:
                mapping = None
        if mapping is None:
            # Grow (or a shrink whose own block cannot host the new
            # shape): the tenant's cores count as free, like in-place
            # migration — the mapper may reuse any of them.
            mapping = strat.map(self.mapper, new_request,
                                self.allocated_cores - own)
        new_cores = set(mapping.physical_cores)
        in_place = new_cores <= own or new_cores >= own
        retained = min(vnpu.memory_bytes, new_request.memory_bytes)

        old_mapping, old_spec = vnpu.mapping, vnpu.spec
        self._teardown(vnpu)
        try:
            resized = self._provision(new_request, mapping, vmid=vmid)
        except AllocationError:
            # Restore the original placement (same cores, same block
            # sizes against the just-freed space: cannot fail).
            self._provision(old_spec, old_mapping, vmid=vmid)
            raise
        cycles = self._resize_cycles(retained, resized,
                                     relocated=not in_place)
        return resized, cycles

    # -- internals ---------------------------------------------------------------
    def _provision(self, spec: VNpuSpec, mapping: MappingResult,
                   vmid: int | None = None) -> VirtualNPU:
        """Configure a vNPU on an already-computed core mapping."""
        fresh_vmid = vmid is None
        if fresh_vmid:
            vmid = self._next_vmid

        routing_table = self._build_routing_table(vmid, mapping)
        setup_cycles = self.chip.controller.install_routing_table(
            routing_table, hyper_mode=True,
        )
        blocks: list[Block] = []
        try:
            blocks = self._allocate_memory(spec.memory_bytes)
            translator = self._build_translator(blocks)
            # Meta installs can also exhaust a core's meta zone; roll back
            # memory *and* the routing table on any allocation failure so
            # a refused create leaves no trace (the serving loop keeps
            # admitting on this hypervisor afterwards).
            self._install_meta_tables(mapping, routing_table, translator)
        except AllocationError:
            for block in blocks:
                self.buddy.free(block.address)
            for p_core in mapping.physical_cores:
                self.chip.core(p_core).scratchpad.reset_meta_zone(
                    hyper_mode=True)
            self.chip.controller.remove_routing_table(vmid, hyper_mode=True)
            raise
        counter = None
        if spec.memory_cap_bytes_per_window is not None:
            counter = AccessCounter(
                window_cycles=spec.memory_cap_window_cycles,
                max_bytes_per_window=spec.memory_cap_bytes_per_window,
            )

        mode = "confined" if spec.noc_isolation and mapping.connected else "dor"
        vrouter = NocVRouter(self.chip.topology, routing_table, mode=mode)

        vnpu = VirtualNPU(
            vmid=vmid,
            spec=spec,
            mapping=mapping,
            routing_table=routing_table,
            noc_vrouter=vrouter,
            translator=translator,
            memory_blocks=blocks,
            access_counter=counter,
            setup_cycles=setup_cycles,
        )
        self._vnpus[vmid] = vnpu
        # Keep the mapper's incremental free-set view in sync (only after
        # the provision is fully committed — failures above leave the
        # tracked set untouched).
        self.mapper.notify_alloc(mapping.physical_cores)
        if fresh_vmid:
            self._next_vmid += 1
        return vnpu

    def _teardown(self, vnpu: VirtualNPU) -> None:
        """Release every resource ``vnpu`` holds on this chip."""
        for block in vnpu.memory_blocks:
            self.buddy.free(block.address)
        for p_core in vnpu.physical_cores:
            spad = self.chip.core(p_core).scratchpad
            spad.reset_meta_zone(hyper_mode=True)
            spad.reset_weight_zone()
        self.chip.controller.remove_routing_table(vnpu.vmid, hyper_mode=True)
        del self._vnpus[vnpu.vmid]
        self.mapper.notify_free(vnpu.physical_cores)

    def _migration_cycles(self, resident_bytes: int,
                          destination: "Hypervisor",
                          migrated: VirtualNPU) -> int:
        """Data movement at the slower memory system + Fig-11 reconfig.

        Delegates to the unified cost engine's shared charge formula so
        the hypervisor, the serving schedulers and the benchmarks price
        migrations identically. (Imported lazily: ``repro.cost`` sits
        above the core layer.)
        """
        from repro.cost.charges import migration_cycles
        return migration_cycles(self.chip.config, destination.chip.config,
                                resident_bytes, migrated.setup_cycles)

    def _resize_cycles(self, retained_bytes: int, resized: VirtualNPU,
                       relocated: bool) -> int:
        """Elastic grow/shrink charge through the shared cost engine."""
        from repro.cost.charges import resize_cycles
        return resize_cycles(self.chip.config, retained_bytes,
                             resized.setup_cycles, relocated)

    def _map_cores(self, spec: VNpuSpec,
                   strategy: MappingStrategy) -> MappingResult:
        return strategy.map(self.mapper, spec, self.allocated_cores)

    def _build_routing_table(self, vmid: int,
                             mapping: MappingResult) -> RoutingTable:
        shaped = self._try_shaped_table(vmid, mapping)
        if shaped is not None:
            return shaped
        return StandardRoutingTable(vmid, dict(mapping.vmap))

    def _try_shaped_table(self, vmid: int,
                          mapping: MappingResult) -> ShapedRoutingTable | None:
        """Use the 1-entry shaped form when the block is a contiguous mesh."""
        physical = self.chip.topology.subtopology(mapping.physical_cores)
        shape = physical.mesh_shape()
        if shape is None:
            return None
        v_cores = sorted(mapping.vmap)
        v_base = v_cores[0]
        if v_cores != list(range(v_base, v_base + len(v_cores))):
            return None
        p_base = min(mapping.physical_cores)
        chip_cols = self.chip.config.mesh_cols
        table = ShapedRoutingTable(vmid, shape, p_base, chip_cols,
                                   v_base=v_base)
        # The shaped form is only valid if it reproduces the mapping.
        for v_core, p_core in mapping.vmap.items():
            if table.translate(v_core) != p_core:
                return None
        return table

    def _allocate_memory(self, nbytes: int) -> list[Block]:
        """Greedy power-of-two decomposition; each block -> one RTT entry."""
        blocks: list[Block] = []
        remaining = nbytes
        try:
            while remaining > 0:
                chunk = min(_largest_pow2_at_most(max(remaining,
                                                      self.buddy.min_block)),
                            self.buddy.capacity)
                while chunk >= self.buddy.min_block:
                    try:
                        blocks.append(self.buddy.alloc(chunk))
                        break
                    except AllocationError:
                        chunk //= 2
                else:
                    raise AllocationError(
                        f"cannot satisfy {nbytes} bytes of guest memory"
                    )
                remaining -= blocks[-1].size
        except AllocationError:
            for block in blocks:
                self.buddy.free(block.address)
            raise
        return blocks

    def _build_translator(self, blocks: list[Block]) -> RangeTranslator:
        translator = RangeTranslator(tlb_entries=self.rtt_tlb_entries)
        guest_va = GUEST_VA_BASE
        # §5.2: the hypervisor sorts RTT entries by virtual address —
        # sequential guest VAs over blocks sorted by size keep big tensors
        # in few entries.
        for block in sorted(blocks, key=lambda b: b.size, reverse=True):
            translator.map_range(guest_va, block.address, block.size)
            guest_va += block.size
        return translator

    def _install_meta_tables(self, mapping: MappingResult,
                             table: RoutingTable,
                             translator: RangeTranslator) -> None:
        rt_bytes = max(1, table.sram_bits // 8)
        rtt_bytes = max(1, translator.entry_count * RTT_ENTRY_BITS // 8)
        for p_core in mapping.physical_cores:
            spad = self.chip.core(p_core).scratchpad
            spad.install_meta(rt_bytes, label="routing-table", hyper_mode=True)
            spad.install_meta(rtt_bytes, label="rtt", hyper_mode=True)
