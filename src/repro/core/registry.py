"""A tiny name -> plugin registry, shared by pluggable component families.

Mapping strategies (:mod:`repro.core.strategies`) and admission policies
(:mod:`repro.serving.policies`) both resolve plugins by a ``name``
attribute with the same rules — non-empty string names, no silent
overwrites, typed errors on unknown lookups. :class:`Registry` holds
that logic once; each family instantiates it with its own noun and
error classes so callers keep seeing the domain's historical exception
types.
"""

from __future__ import annotations

from typing import Generic, TypeVar

ItemT = TypeVar("ItemT")


class Registry(Generic[ItemT]):
    """Keeps one family of named plugins."""

    def __init__(self, kind: str,
                 register_error: type[Exception],
                 resolve_error: type[Exception] | None = None) -> None:
        self.kind = kind
        self._register_error = register_error
        self._resolve_error = resolve_error or register_error
        self._items: dict[str, ItemT] = {}

    def register(self, item: ItemT, replace: bool = False) -> ItemT:
        """Add ``item`` under its ``name`` (rejecting silent overwrites)."""
        name = getattr(item, "name", None)
        if not name or not isinstance(name, str):
            raise self._register_error(
                f"{self.kind} needs a non-empty string name")
        if not replace and name in self._items:
            raise self._register_error(
                f"{self.kind} {name!r} already registered; "
                f"pass replace=True to override"
            )
        self._items[name] = item
        return item

    def unregister(self, name: str) -> None:
        if name not in self._items:
            raise self._register_error(
                f"{self.kind} {name!r} is not registered")
        del self._items[name]

    def resolve(self, name: str) -> ItemT:
        try:
            return self._items[name]
        except KeyError:
            raise self._resolve_error(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def coerce(self, value, *, instance_of: type | tuple | None = None,
               allow_none: bool = False, factory: bool = False):
        """The one shared coerce convention for pluggable families.

        Names resolve through the registry (unknown names raise the
        family's error naming the value and the valid choices); with
        ``factory=True`` the resolved item is *called* to produce a
        fresh instance (families that register classes, like cost-model
        tiers). Instances must satisfy ``instance_of``; classes are
        always rejected — a runtime-checkable Protocol isinstance passes
        for a *class* too (its class attributes satisfy the hasattr
        probes), so duck-typing would otherwise let ``FCFSPolicy`` slip
        in where ``FCFSPolicy()`` was meant. ``allow_none`` passes
        ``None`` through for optional families.
        """
        if value is None and allow_none:
            return None
        if isinstance(value, str):
            item = self.resolve(value)
            return item() if factory else item
        if (instance_of is not None and not isinstance(value, type)
                and isinstance(value, instance_of)):
            return value
        accepted = f"{self.kind} must be a registered name"
        if instance_of is not None:
            wanted = (instance_of[0] if isinstance(instance_of, tuple)
                      else instance_of)
            accepted += f" or a {wanted.__name__} instance"
        if allow_none:
            accepted += " or None"
        raise self._resolve_error(
            f"{accepted}; got {value!r}; choose from {self.names()}")

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._items))
