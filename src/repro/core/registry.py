"""A tiny name -> plugin registry, shared by pluggable component families.

Mapping strategies (:mod:`repro.core.strategies`) and admission policies
(:mod:`repro.serving.policies`) both resolve plugins by a ``name``
attribute with the same rules — non-empty string names, no silent
overwrites, typed errors on unknown lookups. :class:`Registry` holds
that logic once; each family instantiates it with its own noun and
error classes so callers keep seeing the domain's historical exception
types.
"""

from __future__ import annotations

from typing import Generic, TypeVar

ItemT = TypeVar("ItemT")


class Registry(Generic[ItemT]):
    """Keeps one family of named plugins."""

    def __init__(self, kind: str,
                 register_error: type[Exception],
                 resolve_error: type[Exception] | None = None) -> None:
        self.kind = kind
        self._register_error = register_error
        self._resolve_error = resolve_error or register_error
        self._items: dict[str, ItemT] = {}

    def register(self, item: ItemT, replace: bool = False) -> ItemT:
        """Add ``item`` under its ``name`` (rejecting silent overwrites)."""
        name = getattr(item, "name", None)
        if not name or not isinstance(name, str):
            raise self._register_error(
                f"{self.kind} needs a non-empty string name")
        if not replace and name in self._items:
            raise self._register_error(
                f"{self.kind} {name!r} already registered; "
                f"pass replace=True to override"
            )
        self._items[name] = item
        return item

    def unregister(self, name: str) -> None:
        if name not in self._items:
            raise self._register_error(
                f"{self.kind} {name!r} is not registered")
        del self._items[name]

    def resolve(self, name: str) -> ItemT:
        try:
            return self._items[name]
        except KeyError:
            raise self._resolve_error(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._items))
