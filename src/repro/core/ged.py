"""Graph (topology) edit distance, exact and approximate (§4.3, Fig 9).

The topology-mapping allocator scores candidate core sets by the minimum
number of edit operations — node/edge insertion, deletion, substitution —
needed to turn the candidate's induced topology into the requested one.

Two solvers:

- :func:`exact_ged` — A* over partial node assignments. Optimal; used for
  small topologies (the decision problem is NP-hard, §4.3).
- :func:`bipartite_ged` — the Riesen-Bunke bipartite approximation: a
  Hungarian assignment over node-plus-local-edge costs, then the *exact
  induced cost* of that node mapping. Always an upper bound on the true
  distance; near-optimal on the sparse, near-regular graphs that NPU
  topologies are.

Heterogeneous penalties (Algorithm 1's ``NodeMatch`` / ``EdgeMatch``) plug
in through :class:`EditCosts`: node attributes ("abbr") priced by
``node_substitute`` and per-edge criticality priced by ``edge_delete``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.arch.topology import Topology
from repro.errors import TopologyError

#: Sentinel for "mapped to epsilon" (deleted / inserted).
EPS = None


def _default_node_substitute(attr1: str, attr2: str) -> float:
    """Penalty for relabelling a source node as a target node.

    An *untagged* source node (empty attribute) is "don't care": tenants
    that did not request heterogeneous cores may land on any physical
    core — including memory-interface-tagged ones — for free. A tagged
    source node costs one edit when the target's tag differs.
    """
    if not attr1:
        return 0.0
    return 0.0 if attr1 == attr2 else 1.0


def _default_edge_cost(topology: Topology, u: int, v: int) -> float:
    return 1.0


@dataclass
class EditCosts:
    """Pluggable edit-operation costs.

    ``node_substitute(a, b)`` prices relabelling a node with attribute
    ``a`` as one with attribute ``b`` (Algorithm 1's NodeMatch penalty).
    ``edge_delete(topology, u, v)`` prices losing edge ``(u, v)`` of the
    *request* topology — return a large value for critical edges
    (Algorithm 1's EdgeMatch). Insertions use flat costs.
    """

    node_substitute: Callable[[str, str], float] = field(
        default=_default_node_substitute)
    node_delete: float = 1.0
    node_insert: float = 1.0
    edge_delete: Callable[[Topology, int, int], float] = field(
        default=_default_edge_cost)
    edge_insert: float = 1.0

    def node_sub(self, t1: Topology, n1: int, t2: Topology, n2: int) -> float:
        return self.node_substitute(t1.attr(n1), t2.attr(n2))

    def edge_del(self, t1: Topology, u: int, v: int) -> float:
        return self.edge_delete(t1, u, v)


def induced_edit_cost(t1: Topology, t2: Topology,
                      mapping: dict[int, int | None],
                      costs: EditCosts | None = None) -> float:
    """Exact edit cost implied by a complete node mapping ``t1 -> t2``.

    ``mapping`` maps every node of ``t1`` to a node of ``t2`` or to
    ``None`` (deletion); unmentioned ``t2`` nodes are insertions.
    """
    costs = costs or EditCosts()
    if set(mapping) != set(t1.nodes):
        raise TopologyError("mapping must cover every node of the source")
    images = [v for v in mapping.values() if v is not EPS]
    if len(set(images)) != len(images):
        raise TopologyError("mapping is not injective on mapped nodes")
    for image in images:
        if image not in t2:
            raise TopologyError(f"mapping targets unknown node {image}")

    total = 0.0
    for n1, n2 in mapping.items():
        if n2 is EPS:
            total += costs.node_delete
        else:
            total += costs.node_sub(t1, n1, t2, n2)
    total += (t2.node_count - len(images)) * costs.node_insert

    image_set = set(images)
    for u, v in t1.edges:
        mu, mv = mapping[u], mapping[v]
        if mu is EPS or mv is EPS or not t2.has_edge(mu, mv):
            total += costs.edge_del(t1, u, v)
    for a, b in t2.edges:
        if a not in image_set or b not in image_set:
            total += costs.edge_insert
            continue
        # Both endpoints are images: the edge is matched only if its
        # preimage edge exists (already priced as a deletion otherwise —
        # an unmatched t2 edge between images is an insertion).
        u = _preimage(mapping, a)
        v = _preimage(mapping, b)
        if not t1.has_edge(u, v):
            total += costs.edge_insert
    return total


def _preimage(mapping: dict[int, int | None], image: int) -> int:
    for source, target in mapping.items():
        if target == image:
            return source
    raise TopologyError(f"no preimage for {image}")


# ---------------------------------------------------------------------------
# Exact A*
# ---------------------------------------------------------------------------

def exact_ged(t1: Topology, t2: Topology,
              costs: EditCosts | None = None,
              max_nodes: int = 10) -> float:
    """Optimal edit distance by A* search over node assignments.

    Raises :class:`TopologyError` when either topology exceeds
    ``max_nodes`` — use :func:`bipartite_ged` (or :func:`ged` with
    ``method="auto"``) beyond that.
    """
    costs = costs or EditCosts()
    if t1.node_count > max_nodes or t2.node_count > max_nodes:
        raise TopologyError(
            f"exact GED limited to {max_nodes} nodes "
            f"({t1.node_count} vs {t2.node_count} requested)"
        )
    # Assign t1 nodes in descending-degree order: high-degree nodes
    # constrain edge costs early, tightening the search.
    order = sorted(t1.nodes, key=t1.degree, reverse=True)
    n2_nodes = t2.nodes

    counter = itertools.count()
    # state: (f, tiebreak, g, depth, assignment tuple, used t2 frozenset)
    heap = [(0.0, next(counter), 0.0, 0, (), frozenset())]
    best = float("inf")
    while heap:
        f, _tie, g, depth, assignment, used = heapq.heappop(heap)
        if f >= best:
            break
        if depth == len(order):
            total = g + _closing_cost(t1, t2, order, assignment, costs)
            best = min(best, total)
            continue
        node = order[depth]
        for candidate in [*[n for n in n2_nodes if n not in used], EPS]:
            step = _assignment_step_cost(
                t1, t2, order, assignment, node, candidate, costs,
            )
            new_g = g + step
            remaining1 = len(order) - depth - 1
            remaining2 = len(n2_nodes) - len(used) - (candidate is not EPS)
            h = max(0, remaining2 - remaining1) * costs.node_insert
            if new_g + h < best:
                new_used = used | {candidate} if candidate is not EPS else used
                heapq.heappush(heap, (
                    new_g + h, next(counter), new_g, depth + 1,
                    assignment + (candidate,), new_used,
                ))
    return best


def _assignment_step_cost(t1, t2, order, assignment, node, candidate, costs):
    """Incremental cost of assigning ``node`` (next t1 node) to ``candidate``."""
    if candidate is EPS:
        step = costs.node_delete
        # Edges from node to already-assigned t1 nodes are deleted.
        for prior_index, prior_image in enumerate(assignment):
            prior = order[prior_index]
            if t1.has_edge(node, prior):
                step += costs.edge_del(t1, node, prior)
        return step
    step = costs.node_sub(t1, node, t2, candidate)
    for prior_index, prior_image in enumerate(assignment):
        prior = order[prior_index]
        e1 = t1.has_edge(node, prior)
        e2 = prior_image is not EPS and t2.has_edge(candidate, prior_image)
        if e1 and not e2:
            step += costs.edge_del(t1, node, prior)
        elif e2 and not e1:
            step += costs.edge_insert
    return step


def _closing_cost(t1, t2, order, assignment, costs):
    """Cost of inserting whatever t2 structure the assignment left unused."""
    image = {img for img in assignment if img is not EPS}
    total = (t2.node_count - len(image)) * costs.node_insert
    for a, b in t2.edges:
        if a not in image or b not in image:
            total += costs.edge_insert
    return total


# ---------------------------------------------------------------------------
# Bipartite (Riesen-Bunke) approximation
# ---------------------------------------------------------------------------

def _pair_cost_block(t1: Topology, t2: Topology,
                     costs: EditCosts) -> "np.ndarray | None":
    """Vectorized substitution-plus-local-edge block of the reward matrix.

    Returns the ``n1 x n2`` block built entirely with numpy broadcasting,
    or ``None`` when either cost callable is customized (arbitrary Python
    callables cannot be vectorized; callers fall back to the scalar
    loop). Under the default costs every term is a dyadic rational and
    each elementwise operation mirrors the scalar expression tree, so the
    block is **bit-identical** to the loop-built one — the Hungarian
    assignment, and hence the mapping, cannot drift.
    """
    if (costs.node_substitute is not _default_node_substitute
            or costs.edge_delete is not _default_edge_cost):
        return None
    deg1 = np.array([t1.degree(u) for u in t1.nodes], dtype=np.float64)
    deg2 = np.array([t2.degree(v) for v in t2.nodes], dtype=np.float64)
    attrs1 = np.array([t1.attr(u) for u in t1.nodes], dtype=object)
    attrs2 = np.array([t2.attr(v) for v in t2.nodes], dtype=object)
    # Default node_substitute: a *tagged* source pays 1.0 iff the target's
    # tag differs; untagged sources map anywhere for free.
    sub = ((attrs1[:, None] != "") & (attrs1[:, None] != attrs2[None, :])
           ).astype(np.float64)
    diff = deg1[:, None] - deg2[None, :]
    # deg1 > deg2: unit edge costs make adjacent_del == deg1, so the
    # scalar's adjacent_del / max(deg1, 1) collapses to exactly 1.0
    # (deg1 > deg2 >= 0 implies deg1 >= 1). deg2 > deg1 prices the
    # degree excess as insertions, matching the scalar operation order.
    local = np.where(diff > 0.0, 0.5 * diff, (0.5 * -diff) * costs.edge_insert)
    return sub + local


def bipartite_ged(t1: Topology, t2: Topology,
                  costs: EditCosts | None = None,
                  vectorize: bool = True) -> float:
    """Upper-bound edit distance via Hungarian node assignment.

    The cost matrix prices each node pair with its substitution cost plus
    half the local edge mismatch (each edge is shared by two endpoints);
    deletions/insertions carry their adjacent edges. The winning
    assignment is then re-priced exactly with :func:`induced_edit_cost`.
    ``vectorize=False`` forces the scalar reference loop (the identity
    oracle); vectorization also falls back automatically on custom cost
    callables.
    """
    costs = costs or EditCosts()
    nodes1, nodes2 = t1.nodes, t2.nodes
    n1, n2 = len(nodes1), len(nodes2)
    size = n1 + n2
    big = 1e18
    matrix = np.full((size, size), 0.0)

    block = _pair_cost_block(t1, t2, costs) if vectorize and n1 and n2 \
        else None
    if block is not None:
        deg1 = np.array([t1.degree(u) for u in nodes1], dtype=np.float64)
        deg2 = np.array([t2.degree(v) for v in nodes2], dtype=np.float64)
        matrix[:n1, :n2] = block
        matrix[:n1, n2:] = big
        matrix[:n1, n2:][np.arange(n1), np.arange(n1)] = \
            costs.node_delete + 0.5 * deg1
        matrix[n1:, :n2] = big
        matrix[n1:, :n2][np.arange(n2), np.arange(n2)] = \
            costs.node_insert + (0.5 * deg2) * costs.edge_insert
    else:
        for i, u in enumerate(nodes1):
            deg1 = t1.degree(u)
            adjacent_del = sum(
                costs.edge_del(t1, u, nbr) for nbr in t1.neighbors(u)
            )
            for j, v in enumerate(nodes2):
                deg2 = t2.degree(v)
                local = 0.0
                if deg1 > deg2:
                    # Some of u's edges will have no counterpart.
                    local += 0.5 * (deg1 - deg2) * (adjacent_del / max(deg1, 1))
                elif deg2 > deg1:
                    local += 0.5 * (deg2 - deg1) * costs.edge_insert
                matrix[i, j] = costs.node_sub(t1, u, t2, v) + local
            matrix[i, n2:] = big
            matrix[i, n2 + i] = costs.node_delete + 0.5 * adjacent_del
        for j, v in enumerate(nodes2):
            matrix[n1:, j] = big
            matrix[n1 + j, j] = (costs.node_insert
                                 + 0.5 * t2.degree(v) * costs.edge_insert)
    matrix[n1:, n2:] = 0.0

    rows, cols = linear_sum_assignment(matrix)
    mapping: dict[int, int | None] = {}
    for row, col in zip(rows, cols):
        if row < n1:
            mapping[nodes1[row]] = nodes2[col] if col < n2 else EPS
    return induced_edit_cost(t1, t2, mapping, costs)


def best_bijection(t1: Topology, t2: Topology,
                   costs: EditCosts | None = None,
                   vectorize: bool = True) -> tuple[float, dict[int, int]]:
    """Minimum-cost *bijective* node mapping between equal-sized topologies.

    This is what core allocation needs (requirement R-1 fixes the node
    count): a Hungarian assignment over substitution-plus-local-edge
    costs, re-priced exactly. Returns ``(cost, mapping t1-node -> t2-node)``.
    The reward matrix is built with numpy broadcasting
    (:func:`_pair_cost_block`, bit-identical to the loop) unless
    ``vectorize=False`` selects the scalar reference loop or a custom
    cost callable forces it.
    """
    costs = costs or EditCosts()
    if t1.node_count != t2.node_count:
        raise TopologyError(
            f"bijection needs equal sizes ({t1.node_count} vs {t2.node_count})"
        )
    nodes1, nodes2 = t1.nodes, t2.nodes
    n = len(nodes1)
    matrix = _pair_cost_block(t1, t2, costs) if vectorize and n else None
    if matrix is None:
        matrix = np.zeros((n, n))
        for i, u in enumerate(nodes1):
            deg1 = t1.degree(u)
            adjacent_del = sum(
                costs.edge_del(t1, u, nbr) for nbr in t1.neighbors(u)
            )
            for j, v in enumerate(nodes2):
                deg2 = t2.degree(v)
                local = 0.0
                if deg1 > deg2:
                    local += 0.5 * (deg1 - deg2) * (adjacent_del / max(deg1, 1))
                elif deg2 > deg1:
                    local += 0.5 * (deg2 - deg1) * costs.edge_insert
                matrix[i, j] = costs.node_sub(t1, u, t2, v) + local
    rows, cols = linear_sum_assignment(matrix)
    mapping = {nodes1[row]: nodes2[col] for row, col in zip(rows, cols)}
    return induced_edit_cost(t1, t2, mapping, costs), mapping


def bijection_lower_bound(t1: Topology, t2: Topology,
                          costs: EditCosts | None = None,
                          vectorize: bool = True) -> float:
    """Admissible lower bound on any bijection's induced edit cost.

    The topology mapper screens candidate core sets with this before
    paying for :func:`best_bijection`: a candidate whose bound already
    exceeds an incumbent's *exact* score cannot win the R-2 argmin. The
    bound is the sum of two independently-minimal terms:

    - **node term** — the cheapest possible substitution assignment.
      Under the default cost this is the attribute-multiset excess (each
      tagged source either finds a same-tag target or pays one edit);
      custom substitution functions fall back to a Hungarian assignment
      over substitution costs alone.
    - **edge term** — a degree-sequence bound: with both degree
      sequences sorted ascending, no bijection can match more than
      ``floor(sum_i min(d1_i, d2_i) / 2)`` edges, so the remaining
      request edges must be deleted (priced at the cheapest request
      edge) and the remaining candidate edges inserted.
    """
    costs = costs or EditCosts()
    if t1.node_count != t2.node_count:
        raise TopologyError(
            f"bijection needs equal sizes ({t1.node_count} vs {t2.node_count})"
        )
    if t1.node_count == 0:
        return 0.0
    node_term = _node_assignment_lower_bound(t1, t2, costs)
    if vectorize:
        # Same integers, numpy-sorted: sort/min/sum on int64 is exact,
        # so the bound is identical to the scalar loop's.
        s1 = np.sort(np.array([t1.degree(node) for node in t1.nodes],
                              dtype=np.int64))
        s2 = np.sort(np.array([t2.degree(node) for node in t2.nodes],
                              dtype=np.int64))
        matchable = int(np.minimum(s1, s2).sum()) // 2
    else:
        s1 = sorted(t1.degree(node) for node in t1.nodes)
        s2 = sorted(t2.degree(node) for node in t2.nodes)
        matchable = sum(min(a, b) for a, b in zip(s1, s2)) // 2
    deletions = max(0, t1.edge_count - matchable)
    insertions = max(0, t2.edge_count - matchable)
    edge_term = insertions * costs.edge_insert
    if deletions:
        if vectorize and costs.edge_delete is _default_edge_cost:
            cheapest = 1.0  # every request edge prices identically
        else:
            cheapest = min(costs.edge_del(t1, u, v) for u, v in t1.edges)
        edge_term += deletions * cheapest
    return node_term + edge_term


def _node_assignment_lower_bound(t1: Topology, t2: Topology,
                                 costs: EditCosts) -> float:
    """Minimum total node-substitution cost over all bijections."""
    if costs.node_substitute is _default_node_substitute:
        # Untagged sources map anywhere for free; a tagged source needs a
        # same-tag target or pays exactly one edit, and tags only compete
        # with their own kind — the minimum is the per-tag excess.
        counts2 = Counter(t2.attr(node) for node in t2.nodes)
        counts1 = Counter(t1.attr(node) for node in t1.nodes)
        return float(sum(
            max(0, count - counts2.get(tag, 0))
            for tag, count in counts1.items() if tag
        ))
    matrix = np.array([
        [costs.node_sub(t1, u, t2, v) for v in t2.nodes]
        for u in t1.nodes
    ])
    rows, cols = linear_sum_assignment(matrix)
    return float(matrix[rows, cols].sum())


def _bijection_edge_cost(t1: Topology, t2: Topology,
                         mapping: dict[int, int],
                         inverse: dict[int, int],
                         costs: EditCosts,
                         touched_t1: set[int] | None = None) -> float:
    """Edge-mismatch cost of a bijection, optionally restricted to edges
    incident to ``touched_t1`` request nodes (and their images)."""
    total = 0.0
    touched_images = (
        None if touched_t1 is None else {mapping[n] for n in touched_t1}
    )
    for u, v in t1.edges:
        if touched_t1 is not None and u not in touched_t1 and v not in touched_t1:
            continue
        if not t2.has_edge(mapping[u], mapping[v]):
            total += costs.edge_del(t1, u, v)
    for a, b in t2.edges:
        if touched_images is not None and a not in touched_images \
                and b not in touched_images:
            continue
        if not t1.has_edge(inverse[a], inverse[b]):
            total += costs.edge_insert
    return total


def refine_bijection(t1: Topology, t2: Topology,
                     mapping: dict[int, int],
                     costs: EditCosts | None = None,
                     max_passes: int = 6) -> tuple[float, dict[int, int]]:
    """Improve a bijection by greedy pairwise swaps (2-opt hill climbing).

    The Hungarian seed optimizes node-local costs only; edge alignment is
    a quadratic-assignment term it cannot see. Swapping image pairs with
    incremental (incident-edges-only) cost evaluation recovers most of the
    gap cheaply. Returns the refined ``(cost, mapping)``.
    """
    costs = costs or EditCosts()
    mapping = dict(mapping)
    inverse = {p: v for v, p in mapping.items()}
    nodes = t1.nodes
    for _ in range(max_passes):
        improved = False
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                touched = {a, b}
                node_before = (costs.node_sub(t1, a, t2, mapping[a])
                               + costs.node_sub(t1, b, t2, mapping[b]))
                before = node_before + _bijection_edge_cost(
                    t1, t2, mapping, inverse, costs, touched)
                mapping[a], mapping[b] = mapping[b], mapping[a]
                inverse[mapping[a]], inverse[mapping[b]] = a, b
                node_after = (costs.node_sub(t1, a, t2, mapping[a])
                              + costs.node_sub(t1, b, t2, mapping[b]))
                after = node_after + _bijection_edge_cost(
                    t1, t2, mapping, inverse, costs, touched)
                if after + 1e-12 < before:
                    improved = True
                else:  # revert
                    mapping[a], mapping[b] = mapping[b], mapping[a]
                    inverse[mapping[a]], inverse[mapping[b]] = a, b
        if not improved:
            break
    return induced_edit_cost(t1, t2, mapping, costs), mapping


def ged(t1: Topology, t2: Topology, costs: EditCosts | None = None,
        method: str = "auto", exact_limit: int = 8) -> float:
    """Topology edit distance with automatic solver selection."""
    if method == "exact":
        return exact_ged(t1, t2, costs, max_nodes=max(
            exact_limit, t1.node_count, t2.node_count))
    if method == "bipartite":
        return bipartite_ged(t1, t2, costs)
    if method != "auto":
        raise TopologyError(f"unknown GED method {method!r}")
    if t1.node_count <= exact_limit and t2.node_count <= exact_limit:
        return exact_ged(t1, t2, costs, max_nodes=exact_limit)
    return bipartite_ged(t1, t2, costs)
