"""The cluster scheduler: an event-driven multi-tenant serving loop.

:class:`ClusterScheduler` runs on the chip's existing
:class:`~repro.sim.engine.Simulator`: a trace of
:class:`~repro.serving.workload.TenantSession` requests arrives over
simulated time; each session is admitted (or queued) by the configured
admission policy, provisioned as a vNPU through the hypervisor, served
for its estimated model runtime, then destroyed — freeing cores and
memory for the queue. The loop is the churn the paper's evaluation is
about: placements happen under fragmentation left by earlier tenants,
which is why the hypervisor's ``map_similar`` cache and the registered
mapping strategies sit directly on this path.

Service time is priced by a pluggable :class:`~repro.cost.CostModel`
tier — ``analytic`` (the default closed-form solo steady state),
``executor`` (full event-driven runs of the compiled workload) or
``cached`` (memoized executor runs per placement class). Cross-tenant
slowdown is deliberately not fed back into durations — it would make
every departure time depend on the whole residency history — but the
placement quality (mapping distance, fragmentation) is recorded per
session, so interference-prone placements remain visible in the
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.chip import Chip
from repro.core.hypervisor import Hypervisor
from repro.core.strategies import resolve_strategy
from repro.core.vnpu import VNpuSpec
from repro.cost import AnalyticCostModel, CostModel, coerce_cost_model
from repro.errors import AllocationError, ServingError
from repro.serving.metrics import (
    ClusterSample,
    ServingMetrics,
    SessionRecord,
    fragmentation_ratio,
)
from repro.serving.policies import AdmissionPolicy, coerce_policy  # noqa: F401  (re-export)
from repro.serving.slo import (
    ElasticAction,
    ElasticPolicy,
    ElasticVictim,
    SLOClass,
    coerce_elastic,
    make_victim,
    reprice,
    resize_memory_bytes,
    session_slo,
    shrink_shape,
)
from repro.serving.workload import MODEL_BUILDERS, TenantSession  # noqa: F401  (re-export)


@dataclass(slots=True)
class PendingSession:
    """A queued arrival; ``blocked`` marks a failed placement attempt.

    Blocked entries are skipped by policies until a departure changes the
    free-core set (re-trying the same placement against the same free set
    would fail identically). ``preemptions`` counts how many times this
    session was elastically evicted back into the queue.
    """

    session: TenantSession
    blocked: bool = False
    preemptions: int = 0
    #: Fault-tolerance history carried across a kill-and-requeue: how
    #: often this session was evacuated or killed before, and the
    #: service cycles those kills discarded (flows into the final
    #: :class:`~repro.serving.metrics.SessionRecord`).
    evacuations: int = 0
    kills: int = 0
    lost_service_cycles: int = 0
    #: Set when an elastic-relief round was spent on this entry and its
    #: placement *still* failed (a topology problem squeezing cannot
    #: fix this instant). Cleared, like ``blocked``, when a departure
    #: changes the free set — without it a preempt-capable policy can
    #: livelock: evict a victim, fail to place, watch the victim
    #: re-admit to the same cores, evict again, forever.
    relief_exhausted: bool = False


@dataclass(slots=True)
class ActiveSession:
    session: TenantSession
    vmid: int
    admit_cycle: int
    strategy: str
    mapping_distance: float
    mapping_connected: bool
    slo: SLOClass
    #: Mesh the session currently *holds* (differs from the request
    #: while elastically shrunk).
    rows: int
    cols: int
    #: Full-service estimate on the current placement and the absolute
    #: cycle the session is currently projected to depart at.
    service_total: int
    expected_depart: int
    resizes: int = 0
    preemptions: int = 0
    #: Set when the session is elastically evicted: the sleeping
    #: lifetime process must vanish instead of departing.
    preempted: bool = False

    @property
    def cores(self) -> int:
        return self.rows * self.cols

    @property
    def shrunk(self) -> bool:
        return self.cores < self.session.core_count

    def sized_session(self) -> TenantSession:
        """The session re-shaped to its *current* allocation, for the
        cost model (which prices by the held mesh, not the request)."""
        if not self.shrunk:
            return self.session
        return replace(self.session, rows=self.rows, cols=self.cols,
                       memory_bytes=resize_memory_bytes(self.session,
                                                        self.cores))


def drive_simulation(sim, until: int | None, limit: int | None) -> int:
    """Shared scheduler run dispatch: bounded run or run-to-completion.

    ``until`` bounds simulated time (no deadlock detection); ``limit``
    overrides the run-to-completion deadlock horizon. The combination is
    a contradiction and rejected.
    """
    if until is not None:
        if limit is not None:
            raise ServingError(
                "pass either until (bounded run) or limit (deadlock "
                "horizon), not both")
        return sim.run(until=until)
    if limit is not None:
        return sim.run_until_processes_done(limit=limit)
    return sim.run_until_processes_done()


def requeue_in_arrival_order(pending: "list[PendingSession]",
                             session: TenantSession,
                             preemptions: int,
                             evacuations: int = 0,
                             kills: int = 0,
                             lost_service_cycles: int = 0) -> PendingSession:
    """Put a preempted (or fault-killed) session back in the queue *by
    arrival cycle*.

    FCFS walks list order, so a tail append would silently cost the
    victim its place in line on top of the restarted service. Shared by
    both schedulers so the requeue discipline cannot drift. The
    fault-tolerance counters ride along so a session killed by a chip
    failure keeps its history through re-admission.
    """
    requeued = PendingSession(session, preemptions=preemptions,
                              evacuations=evacuations, kills=kills,
                              lost_service_cycles=lost_service_cycles)
    key = (session.arrival_cycle, session.session_id)
    index = len(pending)
    for i, entry in enumerate(pending):
        if (entry.session.arrival_cycle, entry.session.session_id) > key:
            index = i
            break
    pending.insert(index, requeued)
    return requeued


#: Backward-compatible alias: the serving layer's original memoized
#: estimator is now the cost engine's ``analytic`` tier.
ServiceTimeEstimator = AnalyticCostModel

#: Scheduler-knob defaults, used to tell "explicitly passed" from
#: "left at default" when merging kwargs over a ``config=``.
_CLUSTER_DEFAULTS: dict = {
    "policy": "fcfs",
    "strategy": None,
    "cost_model": "analytic",
    "elastic": None,
}


class ClusterScheduler:
    """Serves a tenant trace on one chip through the hypervisor."""

    def __init__(self, chip: Chip,
                 hypervisor: Hypervisor | None = None,
                 policy: AdmissionPolicy | str = "fcfs",
                 strategy: str | None = None,
                 cost_model: "CostModel | str" = "analytic",
                 elastic: "ElasticPolicy | str | None" = None,
                 config=None) -> None:
        if config is not None:
            # A ServingConfig baseline (single-chip subset); explicitly
            # moved kwargs win, like FleetScheduler(config=...).
            merged = dict(config.cluster_kwargs())
            passed = {"policy": policy, "strategy": strategy,
                      "cost_model": cost_model, "elastic": elastic}
            for key, value in passed.items():
                if value != _CLUSTER_DEFAULTS[key]:
                    merged[key] = value
            policy = merged["policy"]
            strategy = merged["strategy"]
            cost_model = merged["cost_model"]
            elastic = merged["elastic"]
        self.chip = chip
        self.sim = chip.sim
        self.hypervisor = hypervisor or Hypervisor(chip)
        self.policy = coerce_policy(policy)
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast, like the hypervisor
        #: Mapping-strategy name forwarded to ``create_vnpu`` (None ->
        #: the hypervisor's default).
        self.strategy = strategy
        #: SLO enforcement: None = static behavior (queue and wait).
        self.elastic = coerce_elastic(elastic)
        self.metrics = ServingMetrics()
        self._pending: list[PendingSession] = []
        self._active: dict[int, ActiveSession] = {}
        #: The fidelity tier pricing every session's residency.
        self.cost_model = coerce_cost_model(cost_model)
        self._trace_loaded = False

    @property
    def estimator(self) -> CostModel:
        """Historical name for the pricing engine (now any cost tier)."""
        return self.cost_model

    @estimator.setter
    def estimator(self, model: "CostModel | str") -> None:
        # Pre-cost-engine code assigned estimators directly; keep that
        # working (validated the same way as the constructor argument).
        self.cost_model = coerce_cost_model(model)

    def mapper_stats(self) -> dict[str, int | float]:
        """The hypervisor mapper's cache and fast-path pruning counters."""
        return self.hypervisor.mapper.cache_stats()

    # -- public API --------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        """Make ``builder`` (zero-arg -> ModelGraph) available to traces."""
        self.cost_model.register_model(name, builder)

    def submit(self, trace: list[TenantSession]) -> None:
        """Queue a trace; arrivals are replayed at their recorded cycles."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in self.cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}"
                )
            if session.core_count > self.chip.core_count:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; chip has "
                    f"{self.chip.core_count}"
                )
            capacity = self.hypervisor.guest_memory_capacity
            if session.memory_bytes > capacity:
                # Mirror the core check: a request no empty chip can
                # ever satisfy must be refused up front, not parked
                # behind a busy queue forever.
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.memory_bytes} guest bytes; chip can map "
                    f"{capacity}"
                )
        self.sim.process(self._arrivals(ordered), name="serving-arrivals")
        self._trace_loaded = True

    def run(self, until: int | None = None,
            limit: int | None = None) -> int:
        """Drive the simulation until the trace is fully served.

        ``limit`` overrides the engine's deadlock-detection horizon —
        long traces priced by the slower (higher-fidelity) cost tiers
        can legitimately outlive the default. It only applies to
        run-to-completion; combining it with ``until`` (a bounded run
        with no deadlock detection) is a contradiction and rejected.
        """
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        return drive_simulation(self.sim, until, limit)

    def serve(self, trace: list[TenantSession],
              limit: int | None = None) -> ServingMetrics:
        """Convenience: submit + run + return the metrics."""
        self.submit(trace)
        self.run(limit=limit)
        return self.metrics

    # -- simulation processes ----------------------------------------------
    def _arrivals(self, trace: list[TenantSession]):
        for session in trace:
            gap = session.arrival_cycle - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            self._pending.append(PendingSession(session))
            self._admit_loop()
            self._sample()

    def _session_lifetime(self, active: ActiveSession):
        # ``expected_depart`` may move while we sleep (an elastic resize
        # stretched the victim); keep sleeping until it stops receding.
        # A projection that moved *earlier* (grow-back) cannot wake the
        # already-scheduled timeout, so the session departs at the
        # originally scheduled instant — growth restores the service
        # rate going forward, it never time-travels the current sleep.
        while True:
            remaining = active.expected_depart - self.sim.now
            if remaining <= 0:
                break
            yield self.sim.timeout(remaining)
            if active.preempted:
                return  # evicted mid-sleep; the requeued entry took over
        self._depart(active)
        # A departure changes the free set: parked placements get a new
        # try, and spent relief rounds may be worth another shot.
        for entry in self._pending:
            entry.blocked = False
            entry.relief_exhausted = False
        self._admit_loop()
        self._grow_back()
        self._sample()

    # -- admission ---------------------------------------------------------
    def _admit_loop(self) -> None:
        while True:
            entry = self.policy.select(self._pending,
                                       self.hypervisor.free_core_count())
            if entry is not None:
                self._try_admit(entry)
                continue
            if not self._elastic_relief():
                return

    def _try_admit(self, entry: PendingSession) -> None:
        session = entry.session
        spec = VNpuSpec(
            name=session.tenant,
            topology=session.shape,
            memory_bytes=session.memory_bytes,
        )
        try:
            vnpu = self.hypervisor.create_vnpu(spec, strategy=self.strategy)
        except AllocationError:
            self.metrics.admission_failures += 1
            if not self.hypervisor.vnpus:
                # Even an empty chip cannot host this request: drop it
                # instead of deadlocking the queue behind it. (Checked
                # against the hypervisor, not our own sessions — a shared
                # hypervisor may host tenants we did not admit.)
                self._pending.remove(entry)
                self.metrics.rejected += 1
            else:
                entry.blocked = True
            return
        self._pending.remove(entry)
        service = self.cost_model.service_cycles(self.chip, session, vnpu)
        active = ActiveSession(
            session=session,
            vmid=vnpu.vmid,
            admit_cycle=self.sim.now,
            strategy=vnpu.mapping.strategy,
            mapping_distance=vnpu.mapping.distance,
            mapping_connected=vnpu.mapping.connected,
            slo=session_slo(session),
            rows=session.rows,
            cols=session.cols,
            service_total=service,
            expected_depart=self.sim.now + service,
            preemptions=entry.preemptions,
        )
        self._active[vnpu.vmid] = active
        self.sim.process(
            self._session_lifetime(active),
            name=f"serving-session-{session.session_id}"
                 f"-{entry.preemptions}",
        )
        # No sample here: the _admit_loop caller samples once afterwards,
        # and same-cycle duplicates carry zero weight in the summaries.

    def _depart(self, active: ActiveSession) -> None:
        self.hypervisor.destroy_vnpu(active.vmid)
        del self._active[active.vmid]
        session = active.session
        self.metrics.record_departure(SessionRecord(
            session_id=session.session_id,
            tenant=session.tenant,
            model=session.model,
            cores=session.core_count,
            arrival_cycle=session.arrival_cycle,
            admit_cycle=active.admit_cycle,
            depart_cycle=self.sim.now,
            strategy=active.strategy,
            mapping_distance=active.mapping_distance,
            mapping_connected=active.mapping_connected,
            slo=active.slo.name,
            preemptions=active.preemptions,
            resizes=active.resizes,
        ))

    # -- elastic enforcement ------------------------------------------------
    def _elastic_relief(self) -> bool:
        """Shrink/preempt lower tiers for the neediest blocked arrival.

        Returns True when at least one enforcement action landed (the
        free set changed, so the admit loop should try again). The loop
        stays finite because a relief round that fails to place its
        entry marks it ``relief_exhausted`` until the next departure:
        preemption is not monotonic (an evicted victim can re-admit to
        the same cores), so only the plan-is-empty condition is not
        enough to terminate.
        """
        if self.elastic is None:
            return False
        free = self.hypervisor.free_core_count()
        now = self.sim.now
        candidates = sorted(
            (e for e in self._pending
             if not e.relief_exhausted
             and (e.blocked or e.session.core_count > free)
             and session_slo(e.session).relief_due(
                 now - e.session.arrival_cycle)),
            key=lambda e: (-session_slo(e.session).tier,
                           e.session.arrival_cycle, e.session.session_id),
        )
        if not candidates:
            return False
        entry = candidates[0]
        tier = session_slo(entry.session).tier
        needed = max(1, entry.session.core_count - free)
        victims = self._victims(tier)
        actions = self.elastic.plan(needed, victims)
        executed = 0
        for action in actions:
            if self._execute_action(action):
                executed += 1
        if executed == 0:
            return False
        for pending in self._pending:
            pending.blocked = False
        # The squeeze happened on *this* entry's behalf: place it first,
        # before any queue-mate (under fcfs/best_fit a lower-tier head
        # would otherwise consume the just-freed cores and the victims
        # would have been squeezed for nothing). A failed attempt spends
        # the entry's relief budget for this instant — the plan covered
        # the core *count*, so what remains is a topology problem more
        # squeezing cannot fix right now.
        self._try_admit(entry)
        if entry in self._pending:
            entry.relief_exhausted = True
        return True

    def _victims(self, below_tier: int) -> list[ElasticVictim]:
        victims = []
        for vmid in sorted(self._active):
            active = self._active[vmid]
            if active.slo.tier >= below_tier:
                continue
            victim = make_victim(active)
            if victim is not None:
                victims.append(victim)
        return victims

    def _execute_action(self, action: ElasticAction) -> bool:
        active = action.victim.key
        if action.kind == "shrink":
            return self._shrink(active)
        if action.kind == "preempt":
            return self._preempt(active)
        raise ServingError(f"unknown elastic action {action.kind!r}")

    def _shrink(self, active: ActiveSession) -> bool:
        smaller = shrink_shape(active.rows, active.cols)
        if smaller is None:
            return False
        return self._resize(active, smaller)

    def _resize(self, active: ActiveSession, shape) -> bool:
        """Live-resize ``active`` to ``shape`` and re-price its residency."""
        grew = shape.node_count > active.cores
        spec = VNpuSpec(
            name=active.session.tenant,
            topology=shape,
            memory_bytes=resize_memory_bytes(active.session,
                                             shape.node_count),
        )
        try:
            vnpu, charge = self.hypervisor.resize_vnpu(
                active.vmid, spec, strategy=self.strategy)
        except AllocationError:
            return False
        active.rows, active.cols = shape.rows, shape.cols
        active.strategy = vnpu.mapping.strategy
        active.mapping_distance = vnpu.mapping.distance
        active.mapping_connected = vnpu.mapping.connected
        active.resizes += 1
        new_total = self.cost_model.service_cycles(
            self.chip, active.sized_session(), vnpu)
        reprice(active, new_total, charge, self.sim.now)
        self.metrics.record_resize(charge, grew=grew)
        return True

    def _preempt(self, active: ActiveSession) -> bool:
        self.hypervisor.destroy_vnpu(active.vmid)
        del self._active[active.vmid]
        active.preempted = True
        self.metrics.preemptions += 1
        requeue_in_arrival_order(self._pending, active.session,
                                 active.preemptions + 1)
        return True

    def _grow_back(self) -> None:
        """Give shrunk sessions their cores back once the queue is clear.

        Conservative by design: growth only happens when nothing is
        waiting (queued arrivals outrank a squeezed tenant's comfort),
        highest tier first.
        """
        if self.elastic is None or self._pending:
            return
        shrunk = sorted(
            (a for a in self._active.values() if a.shrunk),
            key=lambda a: (-a.slo.tier, a.admit_cycle, a.session.session_id),
        )
        for active in shrunk:
            self._resize(active, active.session.shape)

    # -- observability -----------------------------------------------------
    def _sample(self) -> None:
        allocated = self.hypervisor.allocated_cores
        self.metrics.sample(ClusterSample(
            cycle=self.sim.now,
            free_cores=self.chip.core_count - len(allocated),
            utilization=self.hypervisor.core_utilization(),
            fragmentation=fragmentation_ratio(self.chip.topology, allocated),
            queue_length=len(self._pending),
        ))
