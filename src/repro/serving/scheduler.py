"""The cluster scheduler: an event-driven multi-tenant serving loop.

:class:`ClusterScheduler` runs on the chip's existing
:class:`~repro.sim.engine.Simulator`: a trace of
:class:`~repro.serving.workload.TenantSession` requests arrives over
simulated time; each session is admitted (or queued) by the configured
admission policy, provisioned as a vNPU through the hypervisor, served
for its estimated model runtime, then destroyed — freeing cores and
memory for the queue. The loop is the churn the paper's evaluation is
about: placements happen under fragmentation left by earlier tenants,
which is why the hypervisor's ``map_similar`` cache and the registered
mapping strategies sit directly on this path.

Service time is priced by a pluggable :class:`~repro.cost.CostModel`
tier — ``analytic`` (the default closed-form solo steady state),
``executor`` (full event-driven runs of the compiled workload) or
``cached`` (memoized executor runs per placement class). Cross-tenant
slowdown is deliberately not fed back into durations — it would make
every departure time depend on the whole residency history — but the
placement quality (mapping distance, fragmentation) is recorded per
session, so interference-prone placements remain visible in the
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.core.hypervisor import Hypervisor
from repro.core.strategies import resolve_strategy
from repro.core.vnpu import VNpuSpec
from repro.cost import AnalyticCostModel, CostModel, coerce_cost_model
from repro.errors import AllocationError, ServingError
from repro.serving.metrics import (
    ClusterSample,
    ServingMetrics,
    SessionRecord,
    fragmentation_ratio,
)
from repro.serving.policies import AdmissionPolicy, resolve_policy
from repro.serving.workload import MODEL_BUILDERS, TenantSession  # noqa: F401  (re-export)


@dataclass
class PendingSession:
    """A queued arrival; ``blocked`` marks a failed placement attempt.

    Blocked entries are skipped by policies until a departure changes the
    free-core set (re-trying the same placement against the same free set
    would fail identically).
    """

    session: TenantSession
    blocked: bool = False


@dataclass
class ActiveSession:
    session: TenantSession
    vmid: int
    admit_cycle: int
    strategy: str
    mapping_distance: float
    mapping_connected: bool


def drive_simulation(sim, until: int | None, limit: int | None) -> int:
    """Shared scheduler run dispatch: bounded run or run-to-completion.

    ``until`` bounds simulated time (no deadlock detection); ``limit``
    overrides the run-to-completion deadlock horizon. The combination is
    a contradiction and rejected.
    """
    if until is not None:
        if limit is not None:
            raise ServingError(
                "pass either until (bounded run) or limit (deadlock "
                "horizon), not both")
        return sim.run(until=until)
    if limit is not None:
        return sim.run_until_processes_done(limit=limit)
    return sim.run_until_processes_done()


def coerce_policy(policy: "AdmissionPolicy | str") -> AdmissionPolicy:
    """Resolve a policy name, or validate an instance.

    Names go through the registry (fail fast on unknown names); instances
    must actually implement :class:`AdmissionPolicy` — passing, say, a
    policy *class* or a bare string-less object raises
    :class:`~repro.errors.ServingError` naming the offending value instead
    of exploding later inside the admit loop.
    """
    if isinstance(policy, str):
        return resolve_policy(policy)
    # A protocol isinstance check passes for a policy *class* too (its
    # class attributes satisfy hasattr), so rule classes out explicitly.
    if isinstance(policy, type) or not isinstance(policy, AdmissionPolicy):
        raise ServingError(
            f"admission policy must be a registered name or an "
            f"AdmissionPolicy instance (name + select); got {policy!r}"
        )
    return policy


#: Backward-compatible alias: the serving layer's original memoized
#: estimator is now the cost engine's ``analytic`` tier.
ServiceTimeEstimator = AnalyticCostModel


class ClusterScheduler:
    """Serves a tenant trace on one chip through the hypervisor."""

    def __init__(self, chip: Chip,
                 hypervisor: Hypervisor | None = None,
                 policy: AdmissionPolicy | str = "fcfs",
                 strategy: str | None = None,
                 cost_model: "CostModel | str" = "analytic") -> None:
        self.chip = chip
        self.sim = chip.sim
        self.hypervisor = hypervisor or Hypervisor(chip)
        self.policy = coerce_policy(policy)
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast, like the hypervisor
        #: Mapping-strategy name forwarded to ``create_vnpu`` (None ->
        #: the hypervisor's default).
        self.strategy = strategy
        self.metrics = ServingMetrics()
        self._pending: list[PendingSession] = []
        self._active: dict[int, ActiveSession] = {}
        #: The fidelity tier pricing every session's residency.
        self.cost_model = coerce_cost_model(cost_model)
        self._trace_loaded = False

    @property
    def estimator(self) -> CostModel:
        """Historical name for the pricing engine (now any cost tier)."""
        return self.cost_model

    @estimator.setter
    def estimator(self, model: "CostModel | str") -> None:
        # Pre-cost-engine code assigned estimators directly; keep that
        # working (validated the same way as the constructor argument).
        self.cost_model = coerce_cost_model(model)

    def mapper_stats(self) -> dict[str, int | float]:
        """The hypervisor mapper's cache and fast-path pruning counters."""
        return self.hypervisor.mapper.cache_stats()

    # -- public API --------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        """Make ``builder`` (zero-arg -> ModelGraph) available to traces."""
        self.cost_model.register_model(name, builder)

    def submit(self, trace: list[TenantSession]) -> None:
        """Queue a trace; arrivals are replayed at their recorded cycles."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in self.cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}"
                )
            if session.core_count > self.chip.core_count:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; chip has "
                    f"{self.chip.core_count}"
                )
        self.sim.process(self._arrivals(ordered), name="serving-arrivals")
        self._trace_loaded = True

    def run(self, until: int | None = None,
            limit: int | None = None) -> int:
        """Drive the simulation until the trace is fully served.

        ``limit`` overrides the engine's deadlock-detection horizon —
        long traces priced by the slower (higher-fidelity) cost tiers
        can legitimately outlive the default. It only applies to
        run-to-completion; combining it with ``until`` (a bounded run
        with no deadlock detection) is a contradiction and rejected.
        """
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        return drive_simulation(self.sim, until, limit)

    def serve(self, trace: list[TenantSession],
              limit: int | None = None) -> ServingMetrics:
        """Convenience: submit + run + return the metrics."""
        self.submit(trace)
        self.run(limit=limit)
        return self.metrics

    # -- simulation processes ----------------------------------------------
    def _arrivals(self, trace: list[TenantSession]):
        for session in trace:
            gap = session.arrival_cycle - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            self._pending.append(PendingSession(session))
            self._admit_loop()
            self._sample()

    def _session_lifetime(self, active: ActiveSession, service_cycles: int):
        yield self.sim.timeout(service_cycles)
        self._depart(active)
        # A departure changes the free set: parked placements get a new try.
        for entry in self._pending:
            entry.blocked = False
        self._admit_loop()
        self._sample()

    # -- admission ---------------------------------------------------------
    def _admit_loop(self) -> None:
        while True:
            entry = self.policy.select(self._pending,
                                       self.hypervisor.free_core_count())
            if entry is None:
                return
            self._try_admit(entry)

    def _try_admit(self, entry: PendingSession) -> None:
        session = entry.session
        spec = VNpuSpec(
            name=session.tenant,
            topology=session.shape,
            memory_bytes=session.memory_bytes,
        )
        try:
            vnpu = self.hypervisor.create_vnpu(spec, strategy=self.strategy)
        except AllocationError:
            self.metrics.admission_failures += 1
            if not self.hypervisor.vnpus:
                # Even an empty chip cannot host this request: drop it
                # instead of deadlocking the queue behind it. (Checked
                # against the hypervisor, not our own sessions — a shared
                # hypervisor may host tenants we did not admit.)
                self._pending.remove(entry)
                self.metrics.rejected += 1
            else:
                entry.blocked = True
            return
        self._pending.remove(entry)
        active = ActiveSession(
            session=session,
            vmid=vnpu.vmid,
            admit_cycle=self.sim.now,
            strategy=vnpu.mapping.strategy,
            mapping_distance=vnpu.mapping.distance,
            mapping_connected=vnpu.mapping.connected,
        )
        self._active[vnpu.vmid] = active
        service = self.cost_model.service_cycles(self.chip, session, vnpu)
        self.sim.process(
            self._session_lifetime(active, service),
            name=f"serving-session-{session.session_id}",
        )
        # No sample here: the _admit_loop caller samples once afterwards,
        # and same-cycle duplicates carry zero weight in the summaries.

    def _depart(self, active: ActiveSession) -> None:
        self.hypervisor.destroy_vnpu(active.vmid)
        del self._active[active.vmid]
        session = active.session
        self.metrics.record_departure(SessionRecord(
            session_id=session.session_id,
            tenant=session.tenant,
            model=session.model,
            cores=session.core_count,
            arrival_cycle=session.arrival_cycle,
            admit_cycle=active.admit_cycle,
            depart_cycle=self.sim.now,
            strategy=active.strategy,
            mapping_distance=active.mapping_distance,
            mapping_connected=active.mapping_connected,
        ))

    # -- observability -----------------------------------------------------
    def _sample(self) -> None:
        allocated = self.hypervisor.allocated_cores
        self.metrics.sample(ClusterSample(
            cycle=self.sim.now,
            free_cores=self.chip.core_count - len(allocated),
            utilization=self.hypervisor.core_utilization(),
            fragmentation=fragmentation_ratio(self.chip.topology, allocated),
            queue_length=len(self._pending),
        ))
