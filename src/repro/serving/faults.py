"""Deterministic fault injection for the serving fleet.

A :class:`FailureSchedule` is a seeded, pre-materialized timeline of
infrastructure events — whole-chip crashes, NoC link failures and HBM
(memory-system) faults, each paired with a recovery after a drawn
outage duration. The :class:`~repro.serving.fleet.FleetScheduler`
replays the schedule as a simulator process on the shared clock, so a
failure interleaves deterministically with arrivals, departures and
migrations: two runs with the same trace and schedule are
byte-identical.

The three kinds differ in what survives the fault:

- ``"chip"`` — fail-stop crash. Resident vNPU state is gone; every
  resident is **killed** (torn down, its accrued service discarded)
  and requeued, whatever the evacuation policy says.
- ``"hbm"`` — the memory system degrades but the chip stays coherent
  long enough to drain: every resident is evacuated per the configured
  evacuation policy.
- ``"link"`` — one NoC link (drawn per event) goes down. Only residents
  whose placement touches an endpoint of the failed link must move;
  the rest keep serving on the degraded chip (degraded-mode serving).
  The chip still refuses *new* placements until recovery.

Evacuation policies (``FleetScheduler(evacuation=...)``):

- ``"evacuate"`` — live-migrate each affected resident, full size, to
  the healthiest survivor; what cannot move is killed and requeued.
- ``"shrink_to_fit"`` — like ``evacuate``, but when no survivor can
  host the full mesh the victim is shrunk step by step
  (:func:`~repro.serving.slo.shrink_shape` via live
  :meth:`~repro.core.hypervisor.Hypervisor.resize_vnpu`) until a
  survivor accepts it; it grows back through the existing
  queue-drained grow-back path. Gold (unshrinkable) classes only ever
  move full size.
- ``"kill_requeue"`` — no migration at all: tear down and requeue
  (the fastest drain, and the most lost work).

Lost work is accounted honestly: a killed session's
``lost_service_cycles`` (cycles served since its last admission,
discarded by the kill) follow it through the requeue into its final
:class:`~repro.serving.metrics.SessionRecord`, and the fleet summary
carries failure/recovery/evacuation/kill counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.core.registry import Registry
from repro.errors import ServingError

#: Failure kinds the injector understands.
FAILURE_KINDS = ("chip", "link", "hbm")

#: Evacuation policies the fleet scheduler understands.
EVACUATION_POLICIES = ("evacuate", "shrink_to_fit", "kill_requeue")


class _EvacuationName(str):
    """An evacuation-policy name that can live in a :class:`Registry`.

    The policy *is* its name (the fleet scheduler branches on the
    string), so the registered item is a ``str`` subclass whose
    ``name`` is itself — everything downstream (snapshots, equality
    checks, ``evacuation == "kill_requeue"``) keeps seeing a plain
    string while the coerce path shares the registry convention.
    """

    __slots__ = ()

    @property
    def name(self) -> str:
        return str(self)


_EVACUATIONS: Registry[_EvacuationName] = Registry("evacuation policy",
                                                   ServingError)
for _name in EVACUATION_POLICIES:
    _EVACUATIONS.register(_EvacuationName(_name))


def coerce_evacuation(policy: str) -> str:
    """Validate an evacuation-policy name (fail fast, kerf-style).

    Unified on :meth:`repro.core.registry.Registry.coerce`: unknown
    names raise :class:`~repro.errors.ServingError` naming the value
    and the valid choices, like the other coerce helpers.
    """
    return _EVACUATIONS.coerce(policy)


@dataclass(frozen=True)
class FailureEvent:
    """One infrastructure fault: a chip goes down at ``cycle`` and
    recovers ``duration_cycles`` later.

    ``link_index`` selects which NoC link fails for ``kind == "link"``
    (resolved against the chip's sorted edge list modulo its length, so
    one schedule is valid for any chip size); other kinds ignore it.
    """

    cycle: int
    chip_index: int
    kind: str
    duration_cycles: int
    link_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ServingError(
                f"unknown failure kind {self.kind!r}; known: {FAILURE_KINDS}")
        if self.cycle < 0:
            raise ServingError(f"failure cycle must be >= 0, got {self.cycle}")
        if self.chip_index < 0:
            raise ServingError(
                f"chip index must be >= 0, got {self.chip_index}")
        if self.duration_cycles < 1:
            raise ServingError(
                f"outage duration must be positive, got "
                f"{self.duration_cycles}")

    @property
    def recovery_cycle(self) -> int:
        return self.cycle + self.duration_cycles


@dataclass(frozen=True)
class FailureSchedule:
    """An ordered, non-overlapping set of failure events.

    Construction normalizes: events are sorted by ``(cycle,
    chip_index)`` and any event that would hit a chip still inside an
    earlier outage is dropped (a down chip cannot fail again). The
    result is what actually gets injected, so the normalization is part
    of the determinism contract.
    """

    events: tuple[FailureEvent, ...]

    def __post_init__(self) -> None:
        ordered = sorted(self.events,
                         key=lambda e: (e.cycle, e.chip_index, e.kind))
        kept: list[FailureEvent] = []
        down_until: dict[int, int] = {}
        for event in ordered:
            if event.cycle < down_until.get(event.chip_index, 0):
                continue  # chip is still down: overlapping fault dropped
            kept.append(event)
            down_until[event.chip_index] = event.recovery_cycle
        object.__setattr__(self, "events", tuple(kept))

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, chip_count: int) -> None:
        """Fail fast before injection (kerf's validate-all-before-deploy)."""
        for event in self.events:
            if event.chip_index >= chip_count:
                raise ServingError(
                    f"failure event targets chip {event.chip_index}; "
                    f"fleet has {chip_count}")

    def timeline(self) -> list[tuple[int, str, FailureEvent]]:
        """The merged injection order: ``(cycle, action, event)`` with
        ``action`` in {"fail", "recover"}.

        At one instant recoveries fire before failures, so back-to-back
        outages of the same chip (recovery and next fault at the same
        cycle) observe the recovered state first.
        """
        steps = []
        for event in self.events:
            steps.append((event.cycle, 1, "fail", event))
            steps.append((event.recovery_cycle, 0, "recover", event))
        steps.sort(key=lambda s: (s[0], s[1], s[3].chip_index, s[3].kind))
        return [(cycle, action, event) for cycle, _, action, event in steps]


def partition_schedule(schedule: "FailureSchedule | None",
                       groups: "list[tuple[int, ...]]",
                       ) -> "list[FailureSchedule | None]":
    """Split a fleet-wide schedule into per-shard schedules.

    ``groups`` is the shard partition: one tuple of global chip indices
    per shard. Each event lands in the shard owning its chip, with
    ``chip_index`` remapped to the shard-local position — so a shard's
    ``FleetScheduler`` slice can replay its own sub-schedule unchanged.
    Normalization is a no-op on a subset (overlaps were already dropped
    fleet-wide, per chip), so the union of the replayed sub-schedules
    is exactly the original injection. Shards with no events get
    ``None`` (faults disabled), never an empty schedule — the metrics
    ``faults_enabled`` flag must stay worker-count-invariant, so it is
    derived per *shard*, not per worker.
    """
    if schedule is None:
        return [None] * len(groups)
    owner: dict[int, tuple[int, int]] = {}
    for shard_id, group in enumerate(groups):
        for local, chip_index in enumerate(group):
            if chip_index in owner:
                raise ServingError(
                    f"chip {chip_index} appears in two shard groups")
            owner[chip_index] = (shard_id, local)
    parts: list[list[FailureEvent]] = [[] for _ in groups]
    for event in schedule.events:
        if event.chip_index not in owner:
            raise ServingError(
                f"failure event targets chip {event.chip_index}, which "
                f"no shard group owns")
        shard_id, local = owner[event.chip_index]
        parts[shard_id].append(replace(event, chip_index=local))
    return [FailureSchedule(tuple(events)) if events else None
            for events in parts]


def generate_failure_schedule(seed: int,
                              chips: int,
                              horizon_cycles: int,
                              failures: int = 4,
                              mean_outage_cycles: int = 50_000_000,
                              kind_mix: tuple = (("chip", 1), ("link", 1),
                                                 ("hbm", 1))) -> FailureSchedule:
    """A seeded schedule of ``failures`` faults over ``horizon_cycles``.

    Fault instants are uniform over the horizon, the target chip is
    uniform over the fleet, kinds are dealt by ``kind_mix`` weights and
    outage durations are exponential around ``mean_outage_cycles``.
    Fully determined by the seed; overlapping same-chip faults are
    dropped by :class:`FailureSchedule` normalization, so the returned
    schedule may hold fewer than ``failures`` events.
    """
    if chips < 1:
        raise ServingError(f"schedule needs at least one chip, got {chips}")
    if horizon_cycles < 1:
        raise ServingError(
            f"horizon must be positive, got {horizon_cycles}")
    if failures < 0:
        raise ServingError(f"failure count must be >= 0, got {failures}")
    kinds = [name for name, _ in kind_mix]
    weights = [weight for _, weight in kind_mix]
    for kind in kinds:
        if kind not in FAILURE_KINDS:
            raise ServingError(
                f"unknown failure kind {kind!r}; known: {FAILURE_KINDS}")
    rng = random.Random(seed)
    events = []
    for _ in range(failures):
        # Per-event draw order (cycle, chip, kind, duration, link) is
        # part of the determinism contract; new draws go strictly after.
        cycle = rng.randrange(horizon_cycles)
        chip_index = rng.randrange(chips)
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        duration = 1 + int(rng.expovariate(1.0 / mean_outage_cycles))
        link_index = rng.randrange(1 << 16)
        events.append(FailureEvent(cycle=cycle, chip_index=chip_index,
                                   kind=kind, duration_cycles=duration,
                                   link_index=link_index))
    return FailureSchedule(tuple(events))
