"""Seeded tenant-session traces for the serving simulator.

A trace is a list of :class:`TenantSession` requests sorted by arrival
cycle: each tenant asks for a mesh of cores, some guest memory, a model
from the zoo and a number of inferences to run before departing. Traces
are fully determined by their seed — inter-arrival gaps are drawn from an
exponential distribution through ``random.Random(seed)``, so two calls
with the same arguments produce identical traces (the property the
serving benchmark's byte-identical-JSON check rests on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.config import MB
from repro.arch.topology import MeshShape
from repro.errors import ServingError
from repro.workloads import (
    alexnet,
    bert_base,
    gpt2,
    mobilenet,
    resnet,
    yolo_lite,
)

#: Model zoo slice used by the generator: name -> zero-arg builder.
#: Kept to the cheaper graphs so a 500-session trace compiles quickly.
MODEL_BUILDERS = {
    "alexnet": alexnet,
    "bert-base": lambda: bert_base(128),
    "gpt2-small": lambda: gpt2("small", 256),
    "mobilenet": mobilenet,
    "resnet18": lambda: resnet(18),
    "resnet34": lambda: resnet(34),
    "yolo-lite": yolo_lite,
}

#: Request shapes with draw weights: mostly small tenants, a thin tail of
#: near-chip-sized ones (the paper's multi-tenant mix, Fig 16).
SHAPE_MIX = (
    (MeshShape(1, 2), 15),
    (MeshShape(2, 2), 30),
    (MeshShape(2, 3), 20),
    (MeshShape(3, 3), 15),
    (MeshShape(3, 4), 10),
    (MeshShape(4, 4), 6),
    (MeshShape(4, 6), 3),
    (MeshShape(6, 6), 1),
)


@dataclass(frozen=True)
class TenantSession:
    """One tenant's request in a serving trace."""

    session_id: int
    tenant: str
    arrival_cycle: int
    rows: int
    cols: int
    memory_bytes: int
    model: str
    #: Inferences to serve before the tenant departs.
    inferences: int
    priority: int = 0

    @property
    def shape(self) -> MeshShape:
        return MeshShape(self.rows, self.cols)

    @property
    def core_count(self) -> int:
        return self.rows * self.cols


def generate_trace(seed: int,
                   sessions: int,
                   max_cores: int = 36,
                   mean_interarrival_cycles: int = 2_000_000,
                   min_inferences: int = 20,
                   max_inferences: int = 200,
                   memory_per_core_bytes: int = 32 * MB) -> list[TenantSession]:
    """A deterministic Poisson-style trace of ``sessions`` tenant sessions.

    Shapes larger than ``max_cores`` are excluded from the mix so every
    request is admissible on the target chip eventually.
    """
    if sessions < 1:
        raise ServingError(f"trace needs at least one session, got {sessions}")
    shapes = [(shape, weight) for shape, weight in SHAPE_MIX
              if shape.node_count <= max_cores]
    if not shapes:
        raise ServingError(f"no trace shape fits a {max_cores}-core chip")
    rng = random.Random(seed)
    models = sorted(MODEL_BUILDERS)
    population = [shape for shape, _ in shapes]
    weights = [weight for _, weight in shapes]

    trace: list[TenantSession] = []
    cycle = 0
    for session_id in range(sessions):
        cycle += 1 + int(rng.expovariate(1.0 / mean_interarrival_cycles))
        shape = rng.choices(population, weights=weights, k=1)[0]
        trace.append(TenantSession(
            session_id=session_id,
            tenant=f"tenant-{session_id:04d}",
            arrival_cycle=cycle,
            rows=shape.rows,
            cols=shape.cols,
            memory_bytes=shape.node_count * memory_per_core_bytes,
            model=rng.choice(models),
            inferences=rng.randint(min_inferences, max_inferences),
            priority=rng.randint(0, 2),
        ))
    return trace
