"""Seeded tenant-session traces for the serving simulator.

A trace is a list of :class:`TenantSession` requests sorted by arrival
cycle: each tenant asks for a mesh of cores, some guest memory, a model
from the zoo and a number of inferences to run before departing. Traces
are fully determined by their seed — inter-arrival gaps are drawn from an
exponential distribution through ``random.Random(seed)``, so two calls
with the same arguments produce identical traces (the property the
serving benchmark's byte-identical-JSON check rests on).

Beyond the original Poisson stream, the generator speaks two more
arrival processes (``arrival_process=``): **bursty** — a two-state
Markov-modulated Poisson process whose burst state compresses the mean
inter-arrival gap by ``burst_gap_factor`` — and **diurnal** — a
deterministic sinusoidal rate swing with period
``diurnal_period_cycles``, the day/night load curve. An ``slo_mix``
additionally deals each session an :class:`~repro.serving.slo.SLOClass`
name. All new RNG draws are appended strictly *after* the original
per-session ``(gap, shape, model, inferences, sticky, priority)``
sequence, so every historical seed re-deals identically (the golden-hash
trace tests pin this).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields

from repro.arch.config import MB
from repro.arch.topology import MeshShape
from repro.errors import ServingError
from repro.serving.slo import resolve_slo
from repro.workloads.zoo import SERVING_MODEL_BUILDERS

#: Model zoo slice used by the generator (re-homed to
#: :mod:`repro.workloads.zoo`; this alias keeps the historical import
#: path working). The *sorted names* of this table are part of the RNG
#: draw-order contract pinned by the golden-hash trace test.
MODEL_BUILDERS = SERVING_MODEL_BUILDERS

#: Request shapes with draw weights: mostly small tenants, a thin tail of
#: near-chip-sized ones (the paper's multi-tenant mix, Fig 16).
SHAPE_MIX = (
    (MeshShape(1, 2), 15),
    (MeshShape(2, 2), 30),
    (MeshShape(2, 3), 20),
    (MeshShape(3, 3), 15),
    (MeshShape(3, 4), 10),
    (MeshShape(4, 4), 6),
    (MeshShape(4, 6), 3),
    (MeshShape(6, 6), 1),
)

#: Shape mix biased toward the sizes that shatter a mesh: lots of small
#: odd-shaped tenants interleaved with mid-sized blocks, so departures
#: leave free cores scattered instead of in one region (Fig 17's regime).
FRAGMENTATION_SHAPE_MIX = (
    (MeshShape(1, 2), 22),
    (MeshShape(1, 3), 12),
    (MeshShape(2, 2), 24),
    (MeshShape(2, 3), 16),
    (MeshShape(3, 3), 14),
    (MeshShape(3, 4), 8),
    (MeshShape(4, 4), 4),
)


#: Arrival processes the generator understands.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")

#: A serving-realistic class mix: a thin guaranteed tier over a broad
#: elastic reserve (weights, not probabilities).
DEFAULT_SLO_MIX = (("gold", 2), ("silver", 3), ("best_effort", 5))


@dataclass(frozen=True)
class TenantSession:
    """One tenant's request in a serving trace."""

    session_id: int
    tenant: str
    arrival_cycle: int
    rows: int
    cols: int
    memory_bytes: int
    model: str
    #: Inferences to serve before the tenant departs.
    inferences: int
    priority: int = 0
    #: SLO-class name (see :mod:`repro.serving.slo`); empty = derive
    #: from ``priority``, which is what every pre-SLO trace did.
    slo: str = ""

    @property
    def shape(self) -> MeshShape:
        return MeshShape(self.rows, self.cols)

    @property
    def core_count(self) -> int:
        return self.rows * self.cols


def _diurnal_gap_factor(cycle: int, period_cycles: int,
                        amplitude: float) -> float:
    """Inter-arrival multiplier at ``cycle`` of a sinusoidal day.

    The arrival *rate* swings ``1 ± amplitude`` over one period; the gap
    scales by its inverse. Rounded so the factor (and with it every
    arrival cycle) is stable against last-ulp libm drift.
    """
    rate = 1.0 + amplitude * math.sin(
        2.0 * math.pi * ((cycle % period_cycles) / period_cycles))
    return round(1.0 / rate, 9)


#: Default value of every ``generate_trace`` knob (everything but the
#: positional ``seed``/``sessions``), in signature order. Also the
#: :class:`TraceSpec` field schema — the lockstep assert below pins it.
_TRACE_DEFAULTS: dict = {
    "max_cores": 36,
    "mean_interarrival_cycles": 2_000_000,
    "min_inferences": 20,
    "max_inferences": 200,
    "memory_per_core_bytes": 32 * MB,
    "shape_mix": SHAPE_MIX,
    "sticky_fraction": 0.0,
    "sticky_multiplier": 10,
    "arrival_process": "poisson",
    "burst_gap_factor": 0.1,
    "burst_enter_prob": 0.08,
    "burst_exit_prob": 0.25,
    "diurnal_period_cycles": 200_000_000,
    "diurnal_amplitude": 0.8,
    "slo_mix": None,
}


def _validate_trace_knobs(max_cores: int,
                          shape_mix: tuple,
                          sticky_fraction: float,
                          arrival_process: str,
                          burst_gap_factor: float,
                          burst_enter_prob: float,
                          burst_exit_prob: float,
                          diurnal_period_cycles: int,
                          diurnal_amplitude: float,
                          slo_mix: "tuple | None") -> None:
    """Fail-fast knob validation, shared by :func:`generate_trace` and
    :class:`TraceSpec` (which validates at construction, before any
    generation happens). Pure checks — no RNG is touched, so factoring
    this out cannot move a draw."""
    if not 0.0 <= sticky_fraction <= 1.0:
        raise ServingError(
            f"sticky_fraction must be in [0, 1], got {sticky_fraction}")
    if arrival_process not in ARRIVAL_PROCESSES:
        raise ServingError(
            f"unknown arrival process {arrival_process!r}; "
            f"known: {ARRIVAL_PROCESSES}")
    if burst_gap_factor <= 0.0:
        raise ServingError(
            f"burst_gap_factor must be positive, got {burst_gap_factor}")
    if not (0.0 <= burst_enter_prob <= 1.0 and 0.0 <= burst_exit_prob <= 1.0):
        raise ServingError("burst enter/exit probabilities must be in [0, 1]")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ServingError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}")
    if diurnal_period_cycles < 1:
        raise ServingError(
            f"diurnal_period_cycles must be positive, got "
            f"{diurnal_period_cycles}")
    if slo_mix is not None:
        for name, _weight in slo_mix:
            resolve_slo(name)  # fail fast on unregistered classes
    if not any(shape.node_count <= max_cores for shape, _ in shape_mix):
        raise ServingError(f"no trace shape fits a {max_cores}-core chip")


def generate_trace(seed: int,
                   sessions: int,
                   max_cores: int = 36,
                   mean_interarrival_cycles: int = 2_000_000,
                   min_inferences: int = 20,
                   max_inferences: int = 200,
                   memory_per_core_bytes: int = 32 * MB,
                   shape_mix: tuple = SHAPE_MIX,
                   sticky_fraction: float = 0.0,
                   sticky_multiplier: int = 10,
                   arrival_process: str = "poisson",
                   burst_gap_factor: float = 0.1,
                   burst_enter_prob: float = 0.08,
                   burst_exit_prob: float = 0.25,
                   diurnal_period_cycles: int = 200_000_000,
                   diurnal_amplitude: float = 0.8,
                   slo_mix: tuple | None = None,
                   spec: "TraceSpec | None" = None) -> list[TenantSession]:
    """A deterministic trace of ``sessions`` tenant sessions.

    Shapes larger than ``max_cores`` are excluded from the mix so every
    request is admissible on the target chip eventually. A nonzero
    ``sticky_fraction`` turns that share of tenants into long-lived
    residents (``sticky_multiplier`` x the drawn inference count) — the
    pinned tenants around which fragmentation accumulates.

    ``arrival_process`` picks the arrival model: ``"poisson"`` (the
    original stream), ``"bursty"`` (two-state MMPP: while in the burst
    state the drawn gap is scaled by ``burst_gap_factor``; the state
    flips with ``burst_enter_prob``/``burst_exit_prob`` per session) or
    ``"diurnal"`` (gaps scaled by a deterministic sinusoid of amplitude
    ``diurnal_amplitude`` over ``diurnal_period_cycles``). ``slo_mix``
    — ``((class_name, weight), ...)`` over registered
    :mod:`repro.serving.slo` classes — deals each session an SLO class.

    Determinism contract: with the defaults the generator draws exactly
    the same random sequence as before any of these knobs existed, and
    the new draws (SLO class, burst-state flip) are appended strictly
    *after* the original per-session sequence, so the per-session
    ``(shape, model, inferences, priority)`` deal is identical across
    arrival processes for one seed.

    ``spec=`` is the declarative overload: ``generate_trace(seed, n,
    spec=TraceSpec(...))`` forwards the spec's knobs verbatim (so it
    draws the exact sequence the equivalent kwarg call would). Passing
    any other knob alongside ``spec`` is a conflict and raises.
    """
    if spec is not None:
        passed = {
            "max_cores": max_cores,
            "mean_interarrival_cycles": mean_interarrival_cycles,
            "min_inferences": min_inferences,
            "max_inferences": max_inferences,
            "memory_per_core_bytes": memory_per_core_bytes,
            "shape_mix": shape_mix,
            "sticky_fraction": sticky_fraction,
            "sticky_multiplier": sticky_multiplier,
            "arrival_process": arrival_process,
            "burst_gap_factor": burst_gap_factor,
            "burst_enter_prob": burst_enter_prob,
            "burst_exit_prob": burst_exit_prob,
            "diurnal_period_cycles": diurnal_period_cycles,
            "diurnal_amplitude": diurnal_amplitude,
            "slo_mix": slo_mix,
        }
        conflicts = sorted(key for key, value in passed.items()
                           if value != _TRACE_DEFAULTS[key])
        if conflicts:
            raise ServingError(
                f"generate_trace(spec=...) conflicts with explicit "
                f"kwargs {conflicts}; put those knobs in the TraceSpec")
        return generate_trace(seed, sessions, **spec.kwargs())
    if sessions < 1:
        raise ServingError(f"trace needs at least one session, got {sessions}")
    _validate_trace_knobs(max_cores, shape_mix, sticky_fraction,
                          arrival_process, burst_gap_factor,
                          burst_enter_prob, burst_exit_prob,
                          diurnal_period_cycles, diurnal_amplitude, slo_mix)
    slo_names: list[str] = []
    slo_weights: list[int] = []
    if slo_mix is not None:
        for name, weight in slo_mix:
            slo_names.append(name)
            slo_weights.append(weight)
    shapes = [(shape, weight) for shape, weight in shape_mix
              if shape.node_count <= max_cores]
    rng = random.Random(seed)
    models = sorted(MODEL_BUILDERS)
    population = [shape for shape, _ in shapes]
    weights = [weight for _, weight in shapes]

    trace: list[TenantSession] = []
    cycle = 0
    gap_factor = 1.0
    in_burst = False
    for session_id in range(sessions):
        if arrival_process == "diurnal":
            gap_factor = _diurnal_gap_factor(cycle, diurnal_period_cycles,
                                             diurnal_amplitude)
        # gap_factor is exactly 1.0 on the Poisson path: int(1.0 * x)
        # == int(x), so historical seeds reproduce bit-for-bit.
        cycle += 1 + int(gap_factor
                         * rng.expovariate(1.0 / mean_interarrival_cycles))
        shape = rng.choices(population, weights=weights, k=1)[0]
        # Draw order (shape, model, inferences, priority) is part of the
        # determinism contract: reordering would silently change every
        # historical seed's trace. New draws go strictly *after* it.
        model = rng.choice(models)
        inferences = rng.randint(min_inferences, max_inferences)
        if sticky_fraction and rng.random() < sticky_fraction:
            inferences *= sticky_multiplier
        priority = rng.randint(0, 2)
        # -- appended draws (post-contract): SLO class, burst flip ------
        slo = ""
        if slo_mix is not None:
            slo = rng.choices(slo_names, weights=slo_weights, k=1)[0]
        if arrival_process == "bursty":
            flip = burst_exit_prob if in_burst else burst_enter_prob
            if rng.random() < flip:
                in_burst = not in_burst
            gap_factor = burst_gap_factor if in_burst else 1.0
        trace.append(TenantSession(
            session_id=session_id,
            tenant=f"tenant-{session_id:04d}",
            arrival_cycle=cycle,
            rows=shape.rows,
            cols=shape.cols,
            memory_bytes=shape.node_count * memory_per_core_bytes,
            model=model,
            inferences=inferences,
            priority=priority,
            slo=slo,
        ))
    return trace


@dataclass(frozen=True)
class TraceSpec:
    """A declarative, wire-serializable trace recipe.

    One frozen object naming every :func:`generate_trace` knob (the
    seed and session count stay out — they are the *identity* of a
    concrete trace, the spec is its shape). Validated fail-fast on
    construction through the same checks ``generate_trace`` runs, and
    round-trips through plain JSON-able dicts, so a control plane can
    ship a workload recipe over a socket or pin it in a checkpoint.

    ``spec.generate(seed, sessions)`` forwards the knobs verbatim to
    :func:`generate_trace`, drawing the exact RNG sequence the
    equivalent kwarg call draws — the golden-hash traces are reachable
    through either spelling.
    """

    max_cores: int = 36
    mean_interarrival_cycles: int = 2_000_000
    min_inferences: int = 20
    max_inferences: int = 200
    memory_per_core_bytes: int = 32 * MB
    shape_mix: tuple = SHAPE_MIX
    sticky_fraction: float = 0.0
    sticky_multiplier: int = 10
    arrival_process: str = "poisson"
    burst_gap_factor: float = 0.1
    burst_enter_prob: float = 0.08
    burst_exit_prob: float = 0.25
    diurnal_period_cycles: int = 200_000_000
    diurnal_amplitude: float = 0.8
    slo_mix: "tuple | None" = None

    def __post_init__(self) -> None:
        # JSON round-trips turn the mix tuples into lists; normalize so
        # from_dict(to_dict()) compares equal to the original spec.
        object.__setattr__(self, "shape_mix", tuple(
            (MeshShape(*shape) if not isinstance(shape, MeshShape)
             else shape, weight)
            for shape, weight in self.shape_mix))
        if self.slo_mix is not None:
            object.__setattr__(self, "slo_mix", tuple(
                (str(name), weight) for name, weight in self.slo_mix))
        _validate_trace_knobs(self.max_cores, self.shape_mix,
                              self.sticky_fraction, self.arrival_process,
                              self.burst_gap_factor, self.burst_enter_prob,
                              self.burst_exit_prob,
                              self.diurnal_period_cycles,
                              self.diurnal_amplitude, self.slo_mix)

    def kwargs(self) -> dict:
        """The spec as :func:`generate_trace` keyword arguments."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def generate(self, seed: int, sessions: int) -> "list[TenantSession]":
        """The concrete trace this recipe names for one seed."""
        return generate_trace(seed, sessions, **self.kwargs())

    # -- wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-able dict (mix tuples become nested lists)."""
        data = self.kwargs()
        data["shape_mix"] = [[shape.rows, shape.cols, weight]
                             for shape, weight in self.shape_mix]
        if self.slo_mix is not None:
            data["slo_mix"] = [[name, weight]
                               for name, weight in self.slo_mix]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        """Rebuild a spec from :meth:`to_dict` output (fail-fast).

        Unknown keys are rejected naming them; missing keys keep their
        defaults, so partial specs are valid.
        """
        if not isinstance(data, dict):
            raise ServingError(f"trace spec must be a dict; got {data!r}")
        unknown = sorted(set(data) - set(_TRACE_DEFAULTS))
        if unknown:
            raise ServingError(
                f"unknown trace spec keys {unknown}; "
                f"choose from {tuple(_TRACE_DEFAULTS)}")
        kwargs = dict(data)
        if "shape_mix" in kwargs:
            try:
                kwargs["shape_mix"] = tuple(
                    (MeshShape(rows, cols), weight)
                    for rows, cols, weight in kwargs["shape_mix"])
            except (TypeError, ValueError) as error:
                raise ServingError(
                    f"bad shape_mix spec {data['shape_mix']!r}: "
                    f"{error}") from None
        if kwargs.get("slo_mix") is not None:
            try:
                kwargs["slo_mix"] = tuple(
                    (name, weight) for name, weight in kwargs["slo_mix"])
            except (TypeError, ValueError) as error:
                raise ServingError(
                    f"bad slo_mix spec {data['slo_mix']!r}: "
                    f"{error}") from None
        return cls(**kwargs)


#: Field-name/default lockstep between the spec and the generator (a
#: drift here would silently fork the two spellings of one recipe).
assert tuple(_TRACE_DEFAULTS) == tuple(f.name for f in fields(TraceSpec))
assert all(getattr(TraceSpec(), name) == value
           for name, value in _TRACE_DEFAULTS.items())


def deal_sessions(trace: "list[TenantSession]",
                  shards: int) -> "list[list[TenantSession]]":
    """Deterministic round-robin deal of a trace across ``shards``.

    Sessions are ranked by ``(arrival_cycle, session_id)`` — the same
    total order every scheduler replays arrivals in — and dealt
    card-style: rank ``r`` goes to shard ``r % shards``. The deal
    depends only on the trace and the shard count, never on worker
    count or timing, so it is safe inside the sharded coordinator's
    determinism contract (it backs the ``dealing="static"`` mode).
    """
    if shards < 1:
        raise ServingError(f"deal needs at least one shard, got {shards}")
    ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
    dealt: list[list[TenantSession]] = [[] for _ in range(shards)]
    for rank, session in enumerate(ordered):
        dealt[rank % shards].append(session)
    return dealt


def generate_fleet_trace(seed: int,
                         sessions: int,
                         chips: int,
                         max_cores: int = 36,
                         mean_interarrival_cycles: int = 2_000_000,
                         fragmentation_heavy: bool = False,
                         **kwargs) -> list[TenantSession]:
    """A trace sized for a ``chips``-chip fleet.

    Arrival rate scales with the fleet (the per-fleet mean inter-arrival
    gap is ``mean_interarrival_cycles / chips``), so each chip sees
    roughly the single-chip load regardless of fleet size.
    ``fragmentation_heavy`` switches to the shattering shape mix and pins
    a quarter of the tenants as long-lived residents — the workload the
    defragmentation policy exists for.
    """
    if chips < 1:
        raise ServingError(f"fleet needs at least one chip, got {chips}")
    if fragmentation_heavy:
        kwargs.setdefault("shape_mix", FRAGMENTATION_SHAPE_MIX)
        kwargs.setdefault("sticky_fraction", 0.25)
    return generate_trace(
        seed, sessions, max_cores=max_cores,
        mean_interarrival_cycles=max(1, mean_interarrival_cycles // chips),
        **kwargs,
    )
