"""Seeded tenant-session traces for the serving simulator.

A trace is a list of :class:`TenantSession` requests sorted by arrival
cycle: each tenant asks for a mesh of cores, some guest memory, a model
from the zoo and a number of inferences to run before departing. Traces
are fully determined by their seed — inter-arrival gaps are drawn from an
exponential distribution through ``random.Random(seed)``, so two calls
with the same arguments produce identical traces (the property the
serving benchmark's byte-identical-JSON check rests on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.config import MB
from repro.arch.topology import MeshShape
from repro.errors import ServingError
from repro.workloads.zoo import SERVING_MODEL_BUILDERS

#: Model zoo slice used by the generator (re-homed to
#: :mod:`repro.workloads.zoo`; this alias keeps the historical import
#: path working). The *sorted names* of this table are part of the RNG
#: draw-order contract pinned by the golden-hash trace test.
MODEL_BUILDERS = SERVING_MODEL_BUILDERS

#: Request shapes with draw weights: mostly small tenants, a thin tail of
#: near-chip-sized ones (the paper's multi-tenant mix, Fig 16).
SHAPE_MIX = (
    (MeshShape(1, 2), 15),
    (MeshShape(2, 2), 30),
    (MeshShape(2, 3), 20),
    (MeshShape(3, 3), 15),
    (MeshShape(3, 4), 10),
    (MeshShape(4, 4), 6),
    (MeshShape(4, 6), 3),
    (MeshShape(6, 6), 1),
)

#: Shape mix biased toward the sizes that shatter a mesh: lots of small
#: odd-shaped tenants interleaved with mid-sized blocks, so departures
#: leave free cores scattered instead of in one region (Fig 17's regime).
FRAGMENTATION_SHAPE_MIX = (
    (MeshShape(1, 2), 22),
    (MeshShape(1, 3), 12),
    (MeshShape(2, 2), 24),
    (MeshShape(2, 3), 16),
    (MeshShape(3, 3), 14),
    (MeshShape(3, 4), 8),
    (MeshShape(4, 4), 4),
)


@dataclass(frozen=True)
class TenantSession:
    """One tenant's request in a serving trace."""

    session_id: int
    tenant: str
    arrival_cycle: int
    rows: int
    cols: int
    memory_bytes: int
    model: str
    #: Inferences to serve before the tenant departs.
    inferences: int
    priority: int = 0

    @property
    def shape(self) -> MeshShape:
        return MeshShape(self.rows, self.cols)

    @property
    def core_count(self) -> int:
        return self.rows * self.cols


def generate_trace(seed: int,
                   sessions: int,
                   max_cores: int = 36,
                   mean_interarrival_cycles: int = 2_000_000,
                   min_inferences: int = 20,
                   max_inferences: int = 200,
                   memory_per_core_bytes: int = 32 * MB,
                   shape_mix: tuple = SHAPE_MIX,
                   sticky_fraction: float = 0.0,
                   sticky_multiplier: int = 10) -> list[TenantSession]:
    """A deterministic Poisson-style trace of ``sessions`` tenant sessions.

    Shapes larger than ``max_cores`` are excluded from the mix so every
    request is admissible on the target chip eventually. A nonzero
    ``sticky_fraction`` turns that share of tenants into long-lived
    residents (``sticky_multiplier`` x the drawn inference count) — the
    pinned tenants around which fragmentation accumulates. With
    ``sticky_fraction=0`` the generator draws exactly the same random
    sequence as before the knob existed, so historical seeds reproduce.
    """
    if sessions < 1:
        raise ServingError(f"trace needs at least one session, got {sessions}")
    if not 0.0 <= sticky_fraction <= 1.0:
        raise ServingError(
            f"sticky_fraction must be in [0, 1], got {sticky_fraction}")
    shapes = [(shape, weight) for shape, weight in shape_mix
              if shape.node_count <= max_cores]
    if not shapes:
        raise ServingError(f"no trace shape fits a {max_cores}-core chip")
    rng = random.Random(seed)
    models = sorted(MODEL_BUILDERS)
    population = [shape for shape, _ in shapes]
    weights = [weight for _, weight in shapes]

    trace: list[TenantSession] = []
    cycle = 0
    for session_id in range(sessions):
        cycle += 1 + int(rng.expovariate(1.0 / mean_interarrival_cycles))
        shape = rng.choices(population, weights=weights, k=1)[0]
        # Draw order (shape, model, inferences, priority) is part of the
        # determinism contract: reordering would silently change every
        # historical seed's trace.
        model = rng.choice(models)
        inferences = rng.randint(min_inferences, max_inferences)
        if sticky_fraction and rng.random() < sticky_fraction:
            inferences *= sticky_multiplier
        trace.append(TenantSession(
            session_id=session_id,
            tenant=f"tenant-{session_id:04d}",
            arrival_cycle=cycle,
            rows=shape.rows,
            cols=shape.cols,
            memory_bytes=shape.node_count * memory_per_core_bytes,
            model=model,
            inferences=inferences,
            priority=rng.randint(0, 2),
        ))
    return trace


def generate_fleet_trace(seed: int,
                         sessions: int,
                         chips: int,
                         max_cores: int = 36,
                         mean_interarrival_cycles: int = 2_000_000,
                         fragmentation_heavy: bool = False,
                         **kwargs) -> list[TenantSession]:
    """A trace sized for a ``chips``-chip fleet.

    Arrival rate scales with the fleet (the per-fleet mean inter-arrival
    gap is ``mean_interarrival_cycles / chips``), so each chip sees
    roughly the single-chip load regardless of fleet size.
    ``fragmentation_heavy`` switches to the shattering shape mix and pins
    a quarter of the tenants as long-lived residents — the workload the
    defragmentation policy exists for.
    """
    if chips < 1:
        raise ServingError(f"fleet needs at least one chip, got {chips}")
    if fragmentation_heavy:
        kwargs.setdefault("shape_mix", FRAGMENTATION_SHAPE_MIX)
        kwargs.setdefault("sticky_fraction", 0.25)
    return generate_trace(
        seed, sessions, max_cores=max_cores,
        mean_interarrival_cycles=max(1, mean_interarrival_cycles // chips),
        **kwargs,
    )
