"""Serving metrics: per-session records plus time-series cluster samples.

Everything here is deterministic and JSON-friendly — the benchmark's
byte-identical-output guarantee flows through this module, so no wall
clocks, no dict-order dependence (summaries are plain dicts serialized
with ``sort_keys=True`` by the caller) and nearest-rank percentiles
rather than interpolation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.arch.topology import Topology
from repro.serving.slo import resolve_slo


def canonical_json(payload) -> str:
    """The one canonical JSON spelling of a metrics payload.

    Sorted keys, minimal separators, no trailing newline — the byte
    form the control plane's wire protocol, the service benchmark's
    batch-vs-service equality check and the warm-restart oracle all
    compare. Two payloads are "the same result" iff their
    ``canonical_json`` strings are equal.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def summary_wire(summary: dict) -> dict:
    """A summary dict projected onto plain JSON types.

    ``summary()`` dicts hold tuples (per-class rows, percentiles);
    round-tripping through :func:`canonical_json` normalizes them to
    lists, so a summary computed in-process compares equal to the same
    summary decoded off the wire.
    """
    return json.loads(canonical_json(summary))


def percentile(values: list[int | float], pct: float) -> float:
    """Nearest-rank percentile (``pct`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return float(ordered[int(rank) - 1])


def fragmentation_ratio(topology: Topology, allocated: set[int]) -> float:
    """How shattered the free cores are: 1 - largest fragment / free.

    0.0 means every free core sits in one connected region (or the chip
    is full); approaching 1.0 means the free set is confetti — the state
    that forces fragmented mappings (Fig 17).
    """
    free = [node for node in topology.nodes if node not in allocated]
    if not free:
        return 0.0
    remaining = set(free)
    largest = 0
    while remaining:
        seed = next(iter(remaining))
        stack = [seed]
        component = {seed}
        while stack:
            node = stack.pop()
            for neighbor in topology.neighbors(node):
                if neighbor in remaining and neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        remaining -= component
        largest = max(largest, len(component))
    return 1.0 - largest / len(free)


@dataclass(frozen=True, slots=True)
class SessionRecord:
    """Lifecycle of one served tenant session.

    One record per session, held for the whole run: ``slots=True`` (like
    the per-event samples below) keeps the metrics stream's allocation
    footprint flat on million-session traces.
    """

    session_id: int
    tenant: str
    model: str
    cores: int
    arrival_cycle: int
    admit_cycle: int
    depart_cycle: int
    strategy: str
    mapping_distance: float
    mapping_connected: bool
    #: Chip the session *departed* from (always 0 on a single chip).
    chip: int = 0
    #: Live migrations this session survived while resident.
    migrations: int = 0
    #: SLO class the session was served under ("" for pre-SLO records).
    slo: str = ""
    #: Times this session was preempted (torn down and requeued) before
    #: finally completing.
    preemptions: int = 0
    #: Live grow/shrink resizes this session survived while resident.
    resizes: int = 0
    #: Fault-tolerance lifecycle: times this session was live-evacuated
    #: off a failing chip, times it was killed (fail-stop teardown +
    #: requeue) by one, and the service cycles those kills discarded.
    evacuations: int = 0
    kills: int = 0
    lost_service_cycles: int = 0

    @property
    def queue_delay_cycles(self) -> int:
        return self.admit_cycle - self.arrival_cycle

    @property
    def service_cycles(self) -> int:
        return self.depart_cycle - self.admit_cycle


@dataclass(frozen=True, slots=True)
class ClusterSample:
    """Cluster state at one simulation instant (taken on every event)."""

    cycle: int
    free_cores: int
    utilization: float
    fragmentation: float
    queue_length: int


@dataclass
class SLOMetrics:
    """Per-SLO-class outcomes distilled from the session records.

    ``attainment`` is the fraction of completed sessions whose admission
    delay met their class target (classes without a target always
    attain); ``goodput_sessions_per_second`` counts only the sessions
    that met it. Everything is computed from the deterministic record
    stream, so the digest is byte-stable across runs.
    """

    #: class name -> {completed, met, attainment, p99, preemptions, ...}
    per_class: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def from_records(cls, records: list[SessionRecord],
                     seconds: float) -> "SLOMetrics":
        grouped: dict[str, list[SessionRecord]] = {}
        for record in records:
            if record.slo:
                grouped.setdefault(record.slo, []).append(record)
        # The fault keys appear only when the run saw fault activity at
        # all, so fault-free digests (every pre-fault bench artifact)
        # keep their historical byte layout.
        faulted = any(r.evacuations or r.kills or r.lost_service_cycles
                      for r in records)
        per_class: dict[str, dict] = {}
        for name in sorted(grouped):
            slo = resolve_slo(name)
            group = grouped[name]
            delays = [r.queue_delay_cycles for r in group]
            met = sum(1 for r in group if slo.met(r.queue_delay_cycles))
            per_class[name] = {
                "attainment": round(met / len(group), 6),
                "goodput_sessions_per_second": round(
                    met / seconds if seconds else 0.0, 6),
                "p99_queue_delay_cycles": percentile(delays, 99),
                "preemptions": sum(r.preemptions for r in group),
                "resizes": sum(r.resizes for r in group),
                "sessions_completed": len(group),
                "sessions_met_slo": met,
                "tier": slo.tier,
            }
            if faulted:
                per_class[name].update({
                    "evacuations": sum(r.evacuations for r in group),
                    "killed_sessions": sum(r.kills for r in group),
                    "lost_service_cycles": sum(r.lost_service_cycles
                                               for r in group),
                })
        return cls(per_class)

    def digest(self) -> dict:
        return dict(self.per_class)


@dataclass
class ServingMetrics:
    """Accumulates records and samples over one scheduler run."""

    records: list[SessionRecord] = field(default_factory=list)
    samples: list[ClusterSample] = field(default_factory=list)
    #: Failed admission attempts — topology lock-in, no connected subset
    #: *or* guest-memory exhaustion (the scheduler cannot tell which
    #: phase of ``create_vnpu`` refused, so the counter is named for the
    #: admission attempt, not a single cause).
    admission_failures: int = 0
    #: Sessions dropped because even an empty chip could not host them.
    rejected: int = 0
    #: Elastic-enforcement counters: sessions torn down and requeued for
    #: a higher tier, live resizes by direction, and the total cycles
    #: charged to victims for those resizes.
    preemptions: int = 0
    shrinks: int = 0
    grows: int = 0
    resize_cycles: int = 0

    def record_departure(self, record: SessionRecord) -> None:
        self.records.append(record)

    def sample(self, sample: ClusterSample) -> None:
        self.samples.append(sample)

    def record_resize(self, cycles: int, grew: bool) -> None:
        if grew:
            self.grows += 1
        else:
            self.shrinks += 1
        self.resize_cycles += cycles

    # -- aggregation -------------------------------------------------------
    def _time_weighted_mean(self, attribute: str) -> float:
        """Mean of a sample field weighted by how long each state held."""
        if len(self.samples) < 2:
            return getattr(self.samples[0], attribute) if self.samples else 0.0
        total = 0.0
        span = self.samples[-1].cycle - self.samples[0].cycle
        if span <= 0:
            return getattr(self.samples[-1], attribute)
        for current, following in zip(self.samples, self.samples[1:]):
            total += getattr(current, attribute) * (following.cycle
                                                    - current.cycle)
        return total / span

    def summary(self, frequency_hz: int) -> dict:
        """A JSON-able digest of the run (rounded for stable serialization)."""
        delays = [r.queue_delay_cycles for r in self.records]
        makespan = self.samples[-1].cycle if self.samples else 0
        seconds = makespan / frequency_hz if makespan else 0.0
        return {
            "sessions_completed": len(self.records),
            "sessions_per_second": round(
                len(self.records) / seconds if seconds else 0.0, 6),
            "makespan_cycles": makespan,
            "queue_delay_cycles": {
                "mean": round(sum(delays) / len(delays) if delays else 0.0, 3),
                "p50": percentile(delays, 50),
                "p95": percentile(delays, 95),
                "max": float(max(delays)) if delays else 0.0,
            },
            "utilization_time_weighted": round(
                self._time_weighted_mean("utilization"), 6),
            "fragmentation": {
                "time_weighted_mean": round(
                    self._time_weighted_mean("fragmentation"), 6),
                "max": round(max((s.fragmentation for s in self.samples),
                                 default=0.0), 6),
            },
            "queue_length_max": max((s.queue_length for s in self.samples),
                                    default=0),
            "admission_failures": self.admission_failures,
            "sessions_rejected": self.rejected,
            "slo": {
                "classes": SLOMetrics.from_records(self.records,
                                                   seconds).digest(),
                "grows": self.grows,
                "preemptions": self.preemptions,
                "resize_cycles": self.resize_cycles,
                "shrinks": self.shrinks,
            },
        }


@dataclass(frozen=True, slots=True)
class FleetSample:
    """Per-chip cluster state at one simulation instant."""

    cycle: int
    queue_length: int
    free_cores: tuple[int, ...]
    utilization: tuple[float, ...]
    fragmentation: tuple[float, ...]

    @property
    def utilization_spread(self) -> float:
        """Max-minus-min chip utilization: 0.0 means a balanced fleet."""
        return max(self.utilization) - min(self.utilization)


@dataclass
class FleetMetrics(ServingMetrics):
    """ServingMetrics plus per-chip samples and migration accounting.

    The inherited ``samples`` hold the fleet *aggregate* (total free
    cores, fleet-wide utilization, mean fragmentation), so every
    single-chip summary statistic keeps its meaning; ``fleet_samples``
    break the same instants down per chip.
    """

    fleet_samples: list[FleetSample] = field(default_factory=list)
    #: Completed live migrations and their total cycle cost.
    migrations: int = 0
    migration_cycles: int = 0
    #: Defrag attempts that found no better placement anywhere.
    migration_failures: int = 0
    #: Fault-tolerance counters (fleet level). ``faults_enabled`` is set
    #: by the scheduler when a failure schedule is attached; only then
    #: does the summary grow its ``faults`` block, so fault-free runs
    #: keep their historical byte layout.
    faults_enabled: bool = False
    chip_failures: int = 0
    chip_recoveries: int = 0
    evacuations: int = 0
    evacuation_cycles: int = 0
    killed_sessions: int = 0
    lost_service_cycles: int = 0
    #: Injection history: {"cycle", "action" ("fail"/"recover"),
    #: "chip", "kind"} per event, in injection order — what the
    #: failover bench derives recovery times from.
    fault_log: list[dict] = field(default_factory=list)

    def sample_fleet(self, sample: FleetSample) -> None:
        self.fleet_samples.append(sample)

    def record_migration(self, cycles: int) -> None:
        self.migrations += 1
        self.migration_cycles += cycles

    def record_chip_failure(self, cycle: int, chip: int, kind: str) -> None:
        self.chip_failures += 1
        self.fault_log.append({"action": "fail", "chip": chip,
                               "cycle": cycle, "kind": kind})

    def record_chip_recovery(self, cycle: int, chip: int, kind: str) -> None:
        self.chip_recoveries += 1
        self.fault_log.append({"action": "recover", "chip": chip,
                               "cycle": cycle, "kind": kind})

    def record_evacuation(self, cycles: int) -> None:
        """One resident successfully live-migrated off a failing chip."""
        self.evacuations += 1
        self.evacuation_cycles += cycles

    def record_kill(self, lost_service_cycles: int) -> None:
        """One resident fail-stop-killed; its accrued service discarded."""
        self.killed_sessions += 1
        self.lost_service_cycles += lost_service_cycles

    # -- aggregation -------------------------------------------------------
    def _time_weighted_spread(self) -> float:
        """Time-weighted mean of the per-instant utilization spread."""
        if len(self.fleet_samples) < 2:
            return (self.fleet_samples[0].utilization_spread
                    if self.fleet_samples else 0.0)
        span = self.fleet_samples[-1].cycle - self.fleet_samples[0].cycle
        if span <= 0:
            return self.fleet_samples[-1].utilization_spread
        total = 0.0
        for current, following in zip(self.fleet_samples,
                                      self.fleet_samples[1:]):
            total += current.utilization_spread * (following.cycle
                                                   - current.cycle)
        return total / span

    def per_chip_time_weighted_utilization(self) -> list[float]:
        if not self.fleet_samples:
            return []
        chips = len(self.fleet_samples[0].utilization)
        if len(self.fleet_samples) < 2:
            return [round(u, 6) for u in self.fleet_samples[0].utilization]
        span = self.fleet_samples[-1].cycle - self.fleet_samples[0].cycle
        if span <= 0:
            return [round(u, 6) for u in self.fleet_samples[-1].utilization]
        totals = [0.0] * chips
        for current, following in zip(self.fleet_samples,
                                      self.fleet_samples[1:]):
            weight = following.cycle - current.cycle
            for index in range(chips):
                totals[index] += current.utilization[index] * weight
        return [round(total / span, 6) for total in totals]

    def summary(self, frequency_hz: int) -> dict:
        digest = super().summary(frequency_hz)
        digest["fleet"] = {
            "chips": (len(self.fleet_samples[0].utilization)
                      if self.fleet_samples else 0),
            "migrations": self.migrations,
            "migration_cycles": self.migration_cycles,
            "migration_failures": self.migration_failures,
            "sessions_migrated": sum(
                1 for r in self.records if r.migrations > 0),
            "utilization_spread_time_weighted": round(
                self._time_weighted_spread(), 6),
            "per_chip_utilization_time_weighted":
                self.per_chip_time_weighted_utilization(),
        }
        if self.faults_enabled:
            digest["faults"] = {
                "chip_failures": self.chip_failures,
                "chip_recoveries": self.chip_recoveries,
                "evacuation_cycles": self.evacuation_cycles,
                "evacuations": self.evacuations,
                "killed_sessions": self.killed_sessions,
                "lost_service_cycles": self.lost_service_cycles,
            }
        return digest


def merge_fleet_summaries(parts: "list[FleetMetrics]",
                          core_counts: "list[int]",
                          chip_offsets: "list[int]",
                          frequency_hz: int,
                          recovery: "dict | None" = None) -> dict:
    """Aggregate per-shard :class:`FleetMetrics` into one fleet digest.

    The sharded coordinator's summary: the shape mirrors
    :meth:`FleetMetrics.summary` so downstream tooling reads both, with
    a ``sharding.per_shard`` breakdown instead of per-chip columns.
    Everything is computed from the deterministic per-shard streams —
    records merged in ``(depart_cycle, session_id)`` order with chip
    indices remapped to fleet-global (``chip_offsets[shard] + local``),
    counters summed in shard order, utilization/fragmentation
    core-weighted across shards — so the digest depends only on the
    shard decomposition, never on how shards were spread over workers.

    Two aggregate caveats, both deliberate: ``queue_length_max`` is the
    max over per-shard maxima (shard queues are disjoint; instants are
    not aligned across engines, so a fleet-instant queue length does
    not exist), and the time-weighted means weight each shard's own
    makespan-normalized series by its core share.

    ``recovery``, when given, is attached verbatim as the digest's
    ``recovery`` block — the coordinator's host-process supervision
    counters (respawns, replayed epochs, degraded shards). It follows
    the same only-when-active convention as the ``faults`` block:
    callers pass ``None`` for crash-free runs so those digests keep
    their historical byte layout.
    """
    if not (len(parts) == len(core_counts) == len(chip_offsets)):
        raise ValueError(
            f"merge needs aligned inputs; got {len(parts)} metrics, "
            f"{len(core_counts)} core counts, {len(chip_offsets)} offsets")
    records: list[SessionRecord] = []
    for part, offset in zip(parts, chip_offsets):
        records.extend(replace(r, chip=offset + r.chip)
                       for r in part.records)
    records.sort(key=lambda r: (r.depart_cycle, r.session_id))
    makespan = max((p.samples[-1].cycle for p in parts if p.samples),
                   default=0)
    seconds = makespan / frequency_hz if makespan else 0.0
    delays = [r.queue_delay_cycles for r in records]
    total_cores = sum(core_counts) or 1

    def core_weighted(values: "list[float]") -> float:
        return sum(v * c for v, c in zip(values, core_counts)) / total_cores

    digest = {
        "sessions_completed": len(records),
        "sessions_per_second": round(
            len(records) / seconds if seconds else 0.0, 6),
        "makespan_cycles": makespan,
        "queue_delay_cycles": {
            "mean": round(sum(delays) / len(delays) if delays else 0.0, 3),
            "p50": percentile(delays, 50),
            "p95": percentile(delays, 95),
            "max": float(max(delays)) if delays else 0.0,
        },
        "utilization_time_weighted": round(core_weighted(
            [p._time_weighted_mean("utilization") for p in parts]), 6),
        "fragmentation": {
            "time_weighted_mean": round(core_weighted(
                [p._time_weighted_mean("fragmentation") for p in parts]), 6),
            "max": round(max((s.fragmentation for p in parts
                              for s in p.samples), default=0.0), 6),
        },
        "queue_length_max": max((s.queue_length for p in parts
                                 for s in p.samples), default=0),
        "admission_failures": sum(p.admission_failures for p in parts),
        "sessions_rejected": sum(p.rejected for p in parts),
        "slo": {
            "classes": SLOMetrics.from_records(records, seconds).digest(),
            "grows": sum(p.grows for p in parts),
            "preemptions": sum(p.preemptions for p in parts),
            "resize_cycles": sum(p.resize_cycles for p in parts),
            "shrinks": sum(p.shrinks for p in parts),
        },
        "fleet": {
            "chips": sum((len(p.fleet_samples[0].utilization)
                          if p.fleet_samples else 0) for p in parts),
            "migrations": sum(p.migrations for p in parts),
            "migration_cycles": sum(p.migration_cycles for p in parts),
            "migration_failures": sum(p.migration_failures for p in parts),
            "sessions_migrated": sum(1 for r in records if r.migrations > 0),
        },
        "sharding": {
            "shards": len(parts),
            "per_shard": [
                {
                    "chips": (len(p.fleet_samples[0].utilization)
                              if p.fleet_samples else 0),
                    "sessions_completed": len(p.records),
                    "makespan_cycles": (p.samples[-1].cycle
                                        if p.samples else 0),
                    "utilization_time_weighted": round(
                        p._time_weighted_mean("utilization"), 6),
                    "fragmentation_time_weighted": round(
                        p._time_weighted_mean("fragmentation"), 6),
                    "migrations": p.migrations,
                }
                for p in parts
            ],
        },
    }
    if any(p.faults_enabled for p in parts):
        digest["faults"] = {
            "chip_failures": sum(p.chip_failures for p in parts),
            "chip_recoveries": sum(p.chip_recoveries for p in parts),
            "evacuation_cycles": sum(p.evacuation_cycles for p in parts),
            "evacuations": sum(p.evacuations for p in parts),
            "killed_sessions": sum(p.killed_sessions for p in parts),
            "lost_service_cycles": sum(p.lost_service_cycles
                                       for p in parts),
        }
    if recovery is not None:
        digest["recovery"] = dict(recovery)
    return digest
