"""Sharded multi-process fleet simulation.

The fleet is partitioned into contiguous chip-group **shards**, each
owned by its own calendar-queue :class:`~repro.sim.engine.Simulator`
and per-shard :class:`~repro.serving.fleet.FleetScheduler` slice. A
parent :class:`ShardedFleetScheduler` coordinates the slices over
**epoch fences** (conservative time windows): every cross-shard
decision — which shard admits a session, which waiting session spills
to a less-loaded shard — happens only at a fence, never mid-epoch, so
each slice can simulate one epoch completely independently and in
parallel.

The fence protocol per epoch::

    deal        coordinator resolves candidate decisions (new arrivals
                inside the window, deferred sessions, spill proposals)
                in one fixed total order: (cycle, source shard id,
                session id). Every resource claim is validated against
                the claim-adjusted per-chip free/health map before any
                decision commits (kerf's validate-all-before-deploy);
                a claim that fails is deferred to the next fence, a
                spill that fails stays where it is.
    broadcast   each worker receives its shards' committed EpochPlans
                (admissions + withdrawals).
    run         every slice applies its plan and advances its own
                simulator to the fence (``sim.run(until=fence)``).
    report      each slice reports per-chip free cores and health, its
                queue depth, active count, and spill proposals — the
                claim map for the next fence.

**Determinism.** Every coordinator decision is a function of the trace,
the shard decomposition and the per-shard reports — never of worker
count, scheduling order or wall clock. Workers only decide *which OS
process executes which shard*; shard results are byte-identical
regardless. ``workers=1`` runs every slice in-process (no
multiprocessing at all) and is the oracle the property suite compares
the multi-process runs against: aggregate ``SessionRecord`` ledgers,
per-class SLO digests and faults summaries are equal for any worker
count.

**Worker protocol.** Persistent worker processes (forked where the
platform allows, spawned otherwise), one duplex pipe each, three
message kinds: ``("epoch", fence, plans)`` -> ``("report", reports)``,
``("collect",)`` -> ``("state", per-shard metrics)``, ``("stop",)``.
A worker dying mid-epoch surfaces as a clean
:class:`~repro.errors.ServingError` (the pipe raises ``EOFError``);
the coordinator tears the rest of the pool down in ``finally``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from repro.arch.config import SoCConfig, sim_config
from repro.core.hypervisor import guest_capacity_bytes
from repro.cost import coerce_cost_model
from repro.errors import ServingError
from repro.serving.fleet import FleetScheduler, resolve_placement
from repro.serving.faults import (
    FailureSchedule,
    coerce_evacuation,
    partition_schedule,
)
from repro.serving.metrics import FleetMetrics, merge_fleet_summaries
from repro.serving.scheduler import coerce_policy
from repro.serving.workload import TenantSession, deal_sessions

#: Dealing modes: ``balanced`` routes each session to the eligible
#: shard with the most claim-adjusted free cores (and spills stale
#: waiters at fences); ``static`` pins sessions round-robin by arrival
#: rank (:func:`~repro.serving.workload.deal_sessions`) — no claims,
#: no spills, useful as the simplest-possible reference dealer.
DEALING_MODES = ("balanced", "static")


def partition_chips(chip_count: int,
                    shards: int) -> list[tuple[int, ...]]:
    """Contiguous, balanced chip groups: one tuple of global chip
    indices per shard (sizes differ by at most one)."""
    if shards < 1:
        raise ServingError(f"need at least one shard, got {shards}")
    if shards > chip_count:
        raise ServingError(
            f"cannot cut {chip_count} chips into {shards} shards")
    base, extra = divmod(chip_count, shards)
    groups: list[tuple[int, ...]] = []
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return groups


@dataclass(frozen=True)
class AdmitOrder:
    """One committed admission: a session plus the preemption /
    fault history it accumulated before this (re-)deal."""

    session: TenantSession
    preemptions: int = 0
    evacuations: int = 0
    kills: int = 0
    lost_service_cycles: int = 0


@dataclass(frozen=True)
class EpochPlan:
    """A shard's committed plan for one epoch."""

    admissions: tuple[AdmitOrder, ...] = ()
    #: Session ids leaving this shard's queue (committed spills).
    withdrawals: tuple[int, ...] = ()


class ShardSlice:
    """One shard: a chip group on its own simulator, driven by fences.

    A thin stateful wrapper around a per-shard
    :class:`~repro.serving.fleet.FleetScheduler` opened in streaming
    mode: the coordinator pushes committed admissions each epoch, the
    slice runs its engine to the fence and reports its claim state.
    ``spill_after_cycles=None`` disables spill proposals (static
    dealing pins sessions to their shard).
    """

    def __init__(self, shard_id: int, configs: list[SoCConfig],
                 spill_after_cycles: int | None = None,
                 **fleet_kwargs) -> None:
        self.shard_id = shard_id
        self.fleet = FleetScheduler(configs, **fleet_kwargs)
        self.spill_after_cycles = spill_after_cycles
        #: session id -> cycle this slice enqueued it (spill aging).
        self._dealt_cycle: dict[int, int] = {}
        self.fleet.begin_stream()

    def run_epoch(self, fence: int, plan: EpochPlan | None) -> dict:
        """Apply ``plan``, advance to ``fence``, report claim state."""
        if plan is not None:
            for session_id in plan.withdrawals:
                self.fleet.withdraw(session_id)
                self._dealt_cycle.pop(session_id, None)
            if plan.admissions:
                self.fleet.sim.process(
                    self._inject(plan.admissions),
                    name=f"shard{self.shard_id}-epoch-arrivals")
        self.fleet.run(until=fence)
        return self._report(fence)

    def _inject(self, admissions: tuple[AdmitOrder, ...]):
        """Replay one epoch's committed admissions at their cycles.

        Orders arrive sorted by ``(arrival_cycle, session_id)``;
        re-dealt sessions (spills, deferrals) with a past arrival are
        enqueued immediately at the fence, fresh arrivals at their
        recorded cycle — timeouts are nondecreasing, so one generator
        replays the whole batch.
        """
        sim = self.fleet.sim
        for order in admissions:
            gap = order.session.arrival_cycle - sim.now
            if gap > 0:
                yield sim.timeout(gap)
            self._dealt_cycle[order.session.session_id] = sim.now
            self.fleet.enqueue(
                order.session,
                preemptions=order.preemptions,
                evacuations=order.evacuations,
                kills=order.kills,
                lost_service_cycles=order.lost_service_cycles)

    def _report(self, fence: int) -> dict:
        fleet = self.fleet
        pending = fleet.pending_sessions
        spills: list[AdmitOrder] = []
        if self.spill_after_cycles is not None:
            for entry in pending:
                dealt = self._dealt_cycle.get(
                    entry.session.session_id, entry.session.arrival_cycle)
                if fence - dealt >= self.spill_after_cycles:
                    spills.append(AdmitOrder(
                        session=entry.session,
                        preemptions=entry.preemptions,
                        evacuations=entry.evacuations,
                        kills=entry.kills,
                        lost_service_cycles=entry.lost_service_cycles))
        return {
            "free_cores": tuple(fc.free_cores() for fc in fleet.chips),
            "healthy": tuple(fc.healthy for fc in fleet.chips),
            "pending": len(pending),
            "active": fleet.active_count,
            "spills": tuple(spills),
        }

    def collect(self) -> dict:
        """Final per-shard results (picklable) for aggregation."""
        return {"metrics": self.fleet.metrics,
                "mapper": self.fleet.mapper_stats()}


def _worker_main(conn, shard_ids: tuple[int, ...],
                 slice_kwargs: dict, crash) -> None:
    """Worker process loop: owns a fixed set of slices for the run."""
    slices = {sid: ShardSlice(**slice_kwargs[sid]) for sid in shard_ids}
    epoch_index = 0
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "epoch":
                _, fence, plans = message
                if (crash is not None and crash[0] in slices
                        and epoch_index == crash[1]):
                    os._exit(13)  # test hook: die without a report
                reports = {sid: slices[sid].run_epoch(fence,
                                                      plans.get(sid))
                           for sid in shard_ids}
                epoch_index += 1
                conn.send(("report", reports))
            elif kind == "collect":
                conn.send(("state", {sid: slices[sid].collect()
                                     for sid in shard_ids}))
            else:  # "stop"
                return
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _ShardState:
    """Coordinator-side claim view of one shard (from its last report)."""

    free_cores: list[int]
    healthy: list[bool]
    pending: int = 0
    active: int = 0


class ShardedFleetScheduler:
    """Parent coordinator: deals a trace across shard slices at fences.

    The multi-process counterpart of
    :class:`~repro.serving.fleet.FleetScheduler`: same trace in, an
    aggregate :meth:`summary` out — byte-identical for any ``workers``
    value. ``workers`` is clamped to the shard count (a shard is the
    unit of parallelism); ``workers=1`` runs in-process and is the
    determinism oracle.

    Per-shard scheduler options (``policy``, ``placement``,
    ``strategy``, ``defrag``, ``cost_model``, ``elastic``,
    ``evacuation``) are forwarded to every slice; pass registry *names*
    (not instances) when worker processes may be spawned rather than
    forked, so the options cross the pipe.
    """

    def __init__(self, configs: list[SoCConfig], *,
                 shards: int | None = None,
                 workers: int = 1,
                 epoch_cycles: int = 25_000_000,
                 dealing: str = "balanced",
                 spill_after_cycles: int | None = None,
                 faults: FailureSchedule | None = None,
                 _worker_crash: tuple[int, int] | None = None,
                 **slice_options) -> None:
        if not configs:
            raise ServingError("fleet needs at least one chip config")
        if epoch_cycles < 1:
            raise ServingError(
                f"epoch_cycles must be positive, got {epoch_cycles}")
        if workers < 1:
            raise ServingError(f"need at least one worker, got {workers}")
        if dealing not in DEALING_MODES:
            raise ServingError(
                f"unknown dealing mode {dealing!r}; known: {DEALING_MODES}")
        self.configs = list(configs)
        self.shards = min(8, len(configs)) if shards is None else shards
        self.groups = partition_chips(len(configs), self.shards)
        self.workers = min(workers, self.shards)
        self.epoch_cycles = epoch_cycles
        self.dealing = dealing
        #: A waiter this many cycles old at a fence proposes a spill.
        self.spill_after_cycles = (epoch_cycles if spill_after_cycles is None
                                   else spill_after_cycles)
        if faults is not None:
            faults.validate(len(configs))
        self.faults = faults
        self._shard_faults = partition_schedule(faults, self.groups)
        self._fault_horizon = max(
            (e.recovery_cycle for e in faults.events), default=0
        ) if faults is not None else 0
        # Fail fast on bad registry names before any worker starts.
        coerce_policy(slice_options.get("policy", "fcfs"))
        placement = slice_options.get("placement", "least_loaded")
        if isinstance(placement, str):
            resolve_placement(placement)
        coerce_cost_model(slice_options.get("cost_model", "analytic"))
        coerce_evacuation(slice_options.get("evacuation", "shrink_to_fit"))
        self._slice_options = slice_options
        if _worker_crash is not None and self.workers == 1:
            raise ServingError(
                "_worker_crash needs workers > 1 (in-process mode has "
                "no worker to kill)")
        self._crash = _worker_crash
        #: Static per-(shard, chip) capability map for claim validation.
        self._chip_cores = [
            [configs[i].mesh_rows * configs[i].mesh_cols for i in group]
            for group in self.groups
        ]
        self._chip_capacity = [
            [guest_capacity_bytes(configs[i]) for i in group]
            for group in self.groups
        ]
        self._frequency_hz = configs[0].frequency_hz
        self._trace: list[TenantSession] = []
        self._trace_loaded = False
        self._static_target: dict[int, int] = {}
        # Run state.
        self._cursor = 0
        self._deferred: list[AdmitOrder] = []
        self._spills: list[tuple[int, AdmitOrder]] = []
        self._states = [
            _ShardState(free_cores=list(cores),
                        healthy=[True] * len(cores))
            for cores in self._chip_cores
        ]
        self._epochs = 0
        self.deferred_total = 0
        self.spills_committed = 0
        self.spills_rejected = 0
        self.shard_metrics: list[FleetMetrics] | None = None
        self._mapper_stats: dict | None = None
        self._slices: dict[int, ShardSlice] = {}
        self._procs: list = []
        self._conns: list = []
        self._owned: list[tuple[int, ...]] = [
            tuple(sid for sid in range(self.shards)
                  if sid % self.workers == w)
            for w in range(self.workers)
        ]

    @classmethod
    def homogeneous(cls, chips: int, cores: int = 36,
                    **kwargs) -> "ShardedFleetScheduler":
        """A sharded fleet of ``chips`` identical SIM-configured chips."""
        if chips < 1:
            raise ServingError(f"fleet needs at least one chip, got {chips}")
        return cls([sim_config(cores) for _ in range(chips)], **kwargs)

    @property
    def chip_count(self) -> int:
        return len(self.configs)

    # -- public API --------------------------------------------------------
    def submit(self, trace: list[TenantSession]) -> None:
        """Queue a trace (validated fleet-wide, like the monolith)."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        largest = max(max(cores) for cores in self._chip_cores)
        largest_memory = max(max(caps) for caps in self._chip_capacity)
        cost_model = coerce_cost_model(
            self._slice_options.get("cost_model", "analytic"))
        ordered = sorted(trace,
                         key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}")
            if session.core_count > largest:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; largest fleet chip has "
                    f"{largest}")
            if session.memory_bytes > largest_memory:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.memory_bytes} guest bytes; largest fleet "
                    f"chip can map {largest_memory}")
        if self.dealing == "static":
            dealt = deal_sessions(ordered, self.shards)
            for shard_id, sessions in enumerate(dealt):
                for session in sessions:
                    if not self._fits_statically(shard_id, session):
                        raise ServingError(
                            f"static deal pins session "
                            f"{session.session_id} to shard {shard_id}, "
                            f"which cannot host it")
                    self._static_target[session.session_id] = shard_id
        self._trace = ordered
        self._trace_loaded = True

    def run(self) -> int:
        """Drive every shard epoch by epoch; returns the final fence."""
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        if self.shard_metrics is not None:
            raise ServingError("scheduler already ran its trace")
        self._start()
        fence = 0
        try:
            while True:
                fence += self.epoch_cycles
                plans = self._deal(fence)
                reports = self._exchange(fence, plans)
                self._absorb(reports)
                self._epochs += 1
                if (self._cursor >= len(self._trace)
                        and not self._deferred and not self._spills
                        and all(s.pending == 0 and s.active == 0
                                for s in self._states)
                        and fence >= self._fault_horizon):
                    break
            self._finalize()
        finally:
            self._shutdown()
        return fence

    def serve(self, trace: list[TenantSession]) -> dict:
        """Convenience: submit + run + return the aggregate summary."""
        self.submit(trace)
        self.run()
        return self.summary()

    def summary(self, frequency_hz: int | None = None) -> dict:
        """The aggregate fleet digest (worker-count-invariant)."""
        if self.shard_metrics is None:
            raise ServingError("run() the trace before summary()")
        offsets = [group[0] for group in self.groups]
        cores = [sum(chip_cores) for chip_cores in self._chip_cores]
        digest = merge_fleet_summaries(
            self.shard_metrics, cores, offsets,
            frequency_hz or self._frequency_hz)
        digest["sharding"].update({
            "chips_per_shard": [len(g) for g in self.groups],
            "dealing": self.dealing,
            "deferred_total": self.deferred_total,
            "epoch_cycles": self.epoch_cycles,
            "epochs": self._epochs,
            "spills_committed": self.spills_committed,
            "spills_rejected": self.spills_rejected,
        })
        return digest

    def mapper_stats(self) -> dict:
        """Fleet-wide mapper counters (per-shard stats summed)."""
        if self._mapper_stats is None:
            raise ServingError("run() the trace before mapper_stats()")
        return dict(self._mapper_stats)

    # -- the fence protocol ------------------------------------------------
    def _deal(self, fence: int) -> dict[int, EpochPlan]:
        """Resolve this fence's decisions in one fixed total order.

        Validate-all-before-deploy: claims are tallied against the
        reported free/health map; only decisions whose claims hold are
        committed into plans, the rest defer (arrivals) or stay put
        (spills). The order — ``(cycle, source shard, session id)``
        with fresh arrivals and deferrals sourced at ``-1`` — depends
        only on trace and reports, never on workers.
        """
        decisions: list[tuple[int, int, int, AdmitOrder, int | None]] = []
        while (self._cursor < len(self._trace)
               and self._trace[self._cursor].arrival_cycle < fence):
            session = self._trace[self._cursor]
            self._cursor += 1
            decisions.append((session.arrival_cycle, -1,
                              session.session_id, AdmitOrder(session), None))
        for order in self._deferred:
            decisions.append((order.session.arrival_cycle, -1,
                              order.session.session_id, order, None))
        self._deferred = []
        last_fence = fence - self.epoch_cycles
        for source, order in self._spills:
            decisions.append((last_fence, source,
                              order.session.session_id, order, source))
        self._spills = []
        decisions.sort(key=lambda d: (d[0], d[1], d[2]))

        claims: dict[int, list[int]] = {}
        admissions: dict[int, list[AdmitOrder]] = {}
        withdrawals: dict[int, list[int]] = {}
        for _, _, _, order, source in decisions:
            target = self._choose_shard(order.session, claims,
                                        exclude=source,
                                        require_free=source is not None)
            if target is None:
                if source is None:
                    self._deferred.append(order)
                    self.deferred_total += 1
                else:
                    self.spills_rejected += 1  # stays at its source
                continue
            if source is not None:
                withdrawals.setdefault(source, []).append(
                    order.session.session_id)
                self.spills_committed += 1
            admissions.setdefault(target, []).append(order)
        plans: dict[int, EpochPlan] = {}
        for shard_id in range(self.shards):
            if shard_id not in admissions and shard_id not in withdrawals:
                continue
            batch = sorted(
                admissions.get(shard_id, ()),
                key=lambda o: (o.session.arrival_cycle,
                               o.session.session_id))
            plans[shard_id] = EpochPlan(
                admissions=tuple(batch),
                withdrawals=tuple(sorted(withdrawals.get(shard_id, ()))))
        return plans

    def _choose_shard(self, session: TenantSession,
                      claims: dict[int, list[int]],
                      exclude: int | None, *,
                      require_free: bool) -> int | None:
        """Validate the session's claim; commit it on the best shard.

        A shard is *eligible* when some healthy chip whose static shape
        fits the request still has enough claim-adjusted free cores —
        it can admit immediately. Ranking: most total claim-adjusted
        free cores, then shortest queue, then lowest shard id. When no
        shard is eligible and ``require_free`` is False (fresh
        arrivals), the session falls back to the best statically
        fitting healthy shard and waits in *its* queue — the slice
        admits it mid-epoch on the first departure, which a
        coordinator-side deferral could not. Spills set
        ``require_free``: moving to another queue is never better than
        staying put. ``static`` dealing bypasses all of it — the
        pinned shard absorbs the session unconditionally.
        """
        if self.dealing == "static":
            return self._static_target[session.session_id]
        cores = session.core_count
        best: tuple | None = None
        best_shard = best_chip = None
        fallback: tuple | None = None
        fallback_shard = fallback_chip = None
        for shard_id in range(self.shards):
            if shard_id == exclude:
                continue
            state = self._states[shard_id]
            shard_claims = claims.get(shard_id)
            top_chip = None
            top_free = 0
            fit_chip = None
            fit_free = 0
            total_free = 0
            for chip in range(len(state.free_cores)):
                free = state.free_cores[chip]
                if shard_claims is not None:
                    free -= shard_claims[chip]
                total_free += max(0, free)
                if (not state.healthy[chip]
                        or self._chip_cores[shard_id][chip] < cores
                        or self._chip_capacity[shard_id][chip]
                        < session.memory_bytes):
                    continue
                if fit_chip is None or free > fit_free:
                    fit_chip, fit_free = chip, free
                if free < cores:
                    continue
                if top_chip is None or free > top_free:
                    top_chip, top_free = chip, free
            rank = (-total_free, state.pending, shard_id)
            if top_chip is not None and (best is None or rank < best):
                best, best_shard, best_chip = rank, shard_id, top_chip
            if fit_chip is not None and (fallback is None
                                         or rank < fallback):
                fallback, fallback_shard, fallback_chip = (
                    rank, shard_id, fit_chip)
        if best_shard is None and not require_free:
            best_shard, best_chip = fallback_shard, fallback_chip
        if best_shard is None:
            return None
        claims.setdefault(
            best_shard, [0] * len(self._chip_cores[best_shard])
        )[best_chip] += cores
        return best_shard

    def _absorb(self, reports: dict[int, dict]) -> None:
        """Fold per-shard reports into the next fence's claim map."""
        for shard_id in range(self.shards):
            report = reports[shard_id]
            state = self._states[shard_id]
            state.free_cores = list(report["free_cores"])
            state.healthy = list(report["healthy"])
            state.pending = report["pending"]
            state.active = report["active"]
            for order in report["spills"]:
                self._spills.append((shard_id, order))

    def _fits_statically(self, shard_id: int,
                         session: TenantSession) -> bool:
        return any(
            self._chip_cores[shard_id][chip] >= session.core_count
            and self._chip_capacity[shard_id][chip] >= session.memory_bytes
            for chip in range(len(self._chip_cores[shard_id])))

    # -- slice / worker management -----------------------------------------
    def _slice_kwargs(self, shard_id: int) -> dict:
        spill = (None if self.dealing == "static"
                 else self.spill_after_cycles)
        return {
            "shard_id": shard_id,
            "configs": [self.configs[i] for i in self.groups[shard_id]],
            "spill_after_cycles": spill,
            "faults": self._shard_faults[shard_id],
            **self._slice_options,
        }

    def _start(self) -> None:
        if self.workers == 1:
            self._slices = {
                sid: ShardSlice(**self._slice_kwargs(sid))
                for sid in range(self.shards)
            }
            return
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        for worker in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, self._owned[worker],
                      {sid: self._slice_kwargs(sid)
                       for sid in self._owned[worker]},
                      self._crash),
                daemon=True,
                name=f"shard-worker-{worker}")
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def _exchange(self, fence: int,
                  plans: dict[int, EpochPlan]) -> dict[int, dict]:
        if self.workers == 1:
            return {sid: self._slices[sid].run_epoch(fence, plans.get(sid))
                    for sid in range(self.shards)}
        reports: dict[int, dict] = {}
        try:
            for worker, conn in enumerate(self._conns):
                sub = {sid: plans[sid] for sid in self._owned[worker]
                       if sid in plans}
                conn.send(("epoch", fence, sub))
            for conn in self._conns:
                _, payload = conn.recv()
                reports.update(payload)
        except (EOFError, BrokenPipeError, ConnectionResetError,
                OSError) as exc:
            raise ServingError(
                f"shard worker died mid-epoch at fence {fence}: "
                f"{exc!r}") from exc
        return reports

    def _finalize(self) -> None:
        if self.workers == 1:
            states = {sid: self._slices[sid].collect()
                      for sid in range(self.shards)}
        else:
            states = {}
            try:
                for conn in self._conns:
                    conn.send(("collect",))
                for conn in self._conns:
                    _, payload = conn.recv()
                    states.update(payload)
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError) as exc:
                raise ServingError(
                    f"shard worker died during collection: {exc!r}"
                ) from exc
        self.shard_metrics = [states[sid]["metrics"]
                              for sid in range(self.shards)]
        total: dict[str, int | float] = {}
        for sid in range(self.shards):
            for key, value in states[sid]["mapper"].items():
                if key == "hit_rate":
                    continue
                total[key] = total.get(key, 0) + value
        lookups = total.get("hits", 0) + total.get("misses", 0)
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        self._mapper_stats = total

    def _shutdown(self) -> None:
        self._slices = {}
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        self._conns = []
        self._procs = []
