"""Sharded multi-process fleet simulation with self-healing workers.

The fleet is partitioned into contiguous chip-group **shards**, each
owned by its own calendar-queue :class:`~repro.sim.engine.Simulator`
and per-shard :class:`~repro.serving.fleet.FleetScheduler` slice. A
parent :class:`ShardedFleetScheduler` coordinates the slices over
**epoch fences** (conservative time windows): every cross-shard
decision — which shard admits a session, which waiting session spills
to a less-loaded shard — happens only at a fence, never mid-epoch, so
each slice can simulate one epoch completely independently and in
parallel.

The fence protocol per epoch::

    deal        coordinator resolves candidate decisions (new arrivals
                inside the window, deferred sessions, spill proposals)
                in one fixed total order: (cycle, source shard id,
                session id). Every resource claim is validated against
                the claim-adjusted per-chip free/health map before any
                decision commits (kerf's validate-all-before-deploy);
                a claim that fails is deferred to the next fence, a
                spill that fails stays where it is.
    broadcast   each worker receives its shards' committed EpochPlans
                (admissions + withdrawals).
    run         every slice applies its plan and advances its own
                simulator to the fence (``sim.run(until=fence)``).
    report      each slice reports per-chip free cores and health, its
                queue depth, active count, and spill proposals — the
                claim map for the next fence — plus, at checkpoint
                epochs, a serialized slice checkpoint.

**Determinism.** Every coordinator decision is a function of the trace,
the shard decomposition and the per-shard reports — never of worker
count, scheduling order or wall clock. Workers only decide *which OS
process executes which shard*; shard results are byte-identical
regardless. ``workers=1`` runs every slice in-process (no
multiprocessing at all) and is the oracle the property suite compares
the multi-process runs against: aggregate ``SessionRecord`` ledgers,
per-class SLO digests and faults summaries are equal for any worker
count.

**Supervision.** The coordinator is a supervisor, not a fail-stop
client: worker processes are expected to die or hang, and the run is
expected to survive them. Three mechanisms compose:

- *Checkpoint ring* — every ``checkpoint_every`` epochs the workers
  attach a serialized :meth:`ShardSlice.checkpoint` (built on
  :meth:`FleetScheduler.snapshot`) per shard to their fence report.
  Checkpoints are *incremental*: only the metrics history not yet
  shipped crosses the pipe (the rest of a fence snapshot is O(live
  state)), keeping the per-fence cost flat instead of quadratic over
  the run; the coordinator splices each delta onto the newest
  composed state per shard, plus the log of ``EpochPlan`` broadcasts
  committed since that checkpoint.
- *Watchdog* — fence reports are received through a deadline-based
  ``conn.poll()`` loop instead of an unbounded blocking ``recv``; a
  worker that neither reports nor dies within
  ``epoch_timeout_seconds`` raises
  :class:`~repro.errors.EpochTimeoutError` and is treated exactly
  like a death (pipe ``EOFError`` / ``BrokenPipeError``).
- *Recovery* — a failed worker is killed, respawned with exponential
  backoff (``respawn_backoff_seconds * 2**attempt``), restored from
  the last fence checkpoint and driven through a replay of the
  already-committed epoch plans; the slice simulation is
  deterministic, so the replayed final report is byte-identical to
  the one the dead worker would have sent. After ``respawn_budget``
  consecutive failed respawns the coordinator *degrades gracefully*
  instead of dying: the orphaned shards are folded into the
  in-process oracle path (restored + replayed inside the
  coordinator) and the run continues without the worker.

Recovery activity is recorded in the summary's ``recovery`` block
(respawns, timeouts, replayed epochs, checkpoint counts/bytes,
degraded shards). The block appears only when recovery actually
happened, so crash-free summaries keep their historical byte layout —
and a crashed run's summary equals the crash-free oracle's everywhere
*except* that block.

**Worker protocol.** Persistent worker processes (forked where the
platform allows, spawned otherwise), one duplex pipe each, three
message kinds: ``("epoch", fence, plans, want_checkpoint)`` ->
``("report", reports, checkpoints)``, ``("collect",)`` ->
``("state", per-shard metrics)``, ``("stop",)``. Deterministic fault
injection for the *host* layer (the simulated chips have
:mod:`repro.serving.faults`) comes from :class:`CrashSchedule`: crash
at epoch N, hang for M wall seconds, crash while restoring from a
checkpoint, crash at collection — all validated against the shard
count at construction.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import time
from dataclasses import dataclass, field

from repro.arch.config import SoCConfig, sim_config
from repro.core.hypervisor import guest_capacity_bytes
from repro.cost import coerce_cost_model
from repro.errors import EpochTimeoutError, ServingError, WorkerFailure
from repro.serving.fleet import FleetScheduler, resolve_placement
from repro.serving.faults import (
    FailureSchedule,
    coerce_evacuation,
    partition_schedule,
)
from repro.serving.metrics import FleetMetrics, merge_fleet_summaries
from repro.serving.scheduler import coerce_policy
from repro.serving.workload import TenantSession, deal_sessions

#: Dealing modes: ``balanced`` routes each session to the eligible
#: shard with the most claim-adjusted free cores (and spills stale
#: waiters at fences); ``static`` pins sessions round-robin by arrival
#: rank (:func:`~repro.serving.workload.deal_sessions`) — no claims,
#: no spills, useful as the simplest-possible reference dealer.
DEALING_MODES = ("balanced", "static")

#: Host-process fault kinds a :class:`CrashSchedule` can inject.
CRASH_KINDS = ("crash", "hang", "crash_on_restore", "crash_on_collect")

#: Pipe/OS errors that mean "the worker on the other end is gone".
_PIPE_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


def partition_chips(chip_count: int,
                    shards: int) -> list[tuple[int, ...]]:
    """Contiguous, balanced chip groups: one tuple of global chip
    indices per shard (sizes differ by at most one)."""
    if shards < 1:
        raise ServingError(f"need at least one shard, got {shards}")
    if shards > chip_count:
        raise ServingError(
            f"cannot cut {chip_count} chips into {shards} shards")
    base, extra = divmod(chip_count, shards)
    groups: list[tuple[int, ...]] = []
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return groups


# -- host-process crash injection --------------------------------------------

@dataclass(frozen=True)
class CrashEvent:
    """One injected worker-process fault, addressed by shard.

    The worker *owning* ``shard`` is the one hit (shards never move
    between workers except by degradation, so the target is stable).
    ``kind``:

    - ``crash`` — the worker ``os._exit``\\ s when it receives the
      epoch message for epoch index ``epoch`` (0-based fence ordinal),
      before reporting.
    - ``hang`` — the worker sleeps ``hang_seconds`` of wall time at
      that epoch before proceeding; with an ``epoch_timeout_seconds``
      shorter than the hang, the coordinator's watchdog fires.
    - ``crash_on_restore`` — the next ``count`` *recovery* respawns
      that would restore ``shard`` die during restore (exercises the
      retry budget and the degraded path).
    - ``crash_on_collect`` — the worker dies when asked to collect
      final results (exercises finalize-time recovery).
    """

    kind: str
    shard: int
    epoch: int = 0
    hang_seconds: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CRASH_KINDS:
            raise ServingError(
                f"unknown crash kind {self.kind!r}; known: {CRASH_KINDS}")
        if self.shard < 0:
            raise ServingError(
                f"crash event shard must be >= 0, got {self.shard}")
        if self.epoch < 0:
            raise ServingError(
                f"crash event epoch must be >= 0, got {self.epoch}")
        if self.kind == "hang" and self.hang_seconds <= 0:
            raise ServingError(
                "hang events need a positive hang_seconds, got "
                f"{self.hang_seconds}")
        if self.kind == "crash_on_restore" and self.count < 1:
            raise ServingError(
                f"crash_on_restore needs count >= 1, got {self.count}")


@dataclass(frozen=True)
class CrashSchedule:
    """A deterministic schedule of worker-process faults.

    The host-layer sibling of
    :class:`~repro.serving.faults.FailureSchedule`: where that one
    fails *simulated chips* on the simulated clock, this one fails
    *worker processes* on the wall clock — the recovery paths it
    reaches must leave the simulated results byte-identical, which is
    exactly what the crash-matrix property suite asserts. Events are
    normalized to ``(epoch, shard, kind)`` order.
    """

    events: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events, key=lambda e: (e.epoch, e.shard, e.kind)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def validate(self, shards: int) -> None:
        """Fail fast on events addressing shards that do not exist."""
        for event in self.events:
            if event.shard >= shards:
                raise ServingError(
                    f"crash event targets shard {event.shard}, but the "
                    f"fleet only has {shards} shards")


def generate_crash_schedule(seed: int, *, shards: int, epochs: int,
                            events: int = 4,
                            kinds: tuple[str, ...] = ("crash", "hang"),
                            hang_seconds: float = 5.0) -> CrashSchedule:
    """A seeded random crash schedule (fixed per-event draw order).

    Draws, per event and in this order: epoch, shard, kind — so
    extending the parameter space later cannot silently reshuffle
    existing seeds' schedules.
    """
    if epochs < 1:
        raise ServingError(f"need at least one epoch, got {epochs}")
    for kind in kinds:
        if kind not in CRASH_KINDS:
            raise ServingError(
                f"unknown crash kind {kind!r}; known: {CRASH_KINDS}")
    rng = random.Random(seed)
    drawn = []
    for _ in range(events):
        epoch = rng.randrange(epochs)
        shard = rng.randrange(shards)
        kind = kinds[rng.randrange(len(kinds))]
        drawn.append(CrashEvent(kind=kind, shard=shard, epoch=epoch,
                                hang_seconds=hang_seconds))
    schedule = CrashSchedule(tuple(drawn))
    schedule.validate(shards)
    return schedule


@dataclass(frozen=True)
class AdmitOrder:
    """One committed admission: a session plus the preemption /
    fault history it accumulated before this (re-)deal."""

    session: TenantSession
    preemptions: int = 0
    evacuations: int = 0
    kills: int = 0
    lost_service_cycles: int = 0


@dataclass(frozen=True)
class EpochPlan:
    """A shard's committed plan for one epoch."""

    admissions: tuple[AdmitOrder, ...] = ()
    #: Session ids leaving this shard's queue (committed spills).
    withdrawals: tuple[int, ...] = ()


#: The append-only :class:`~repro.serving.metrics.FleetMetrics` lists —
#: the only checkpoint state that grows over a run, and therefore the
#: only part delta checkpoints ship incrementally. Everything else in a
#: fence snapshot (chip residents, queues, actives, counters, the cost
#: cache) is O(live state).
_METRIC_LOGS = ("records", "samples", "fleet_samples", "fault_log")


class ShardSlice:
    """One shard: a chip group on its own simulator, driven by fences.

    A thin stateful wrapper around a per-shard
    :class:`~repro.serving.fleet.FleetScheduler` opened in streaming
    mode: the coordinator pushes committed admissions each epoch, the
    slice runs its engine to the fence and reports its claim state.
    ``spill_after_cycles=None`` disables spill proposals (static
    dealing pins sessions to their shard).
    """

    def __init__(self, shard_id: int, configs: list[SoCConfig],
                 spill_after_cycles: int | None = None,
                 **fleet_kwargs) -> None:
        self.shard_id = shard_id
        self.fleet = FleetScheduler(configs, **fleet_kwargs)
        self.spill_after_cycles = spill_after_cycles
        #: session id -> cycle this slice enqueued it (spill aging).
        self._dealt_cycle: dict[int, int] = {}
        #: Per-list lengths of the metrics logs already shipped in a
        #: checkpoint (``None`` until the first one): the delta base.
        self._shipped: tuple[int, ...] | None = None
        self.fleet.begin_stream()

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self, *, delta: bool = False) -> bytes:
        """Serialized fence checkpoint of the whole slice.

        Valid at a fence (the simulator parked at the fence cycle, no
        event mid-dispatch): the fleet's warm-restart snapshot plus the
        slice's own spill-aging table. The bytes are what crosses the
        worker pipe — :meth:`from_checkpoint` turns a *full* blob back
        into a live slice in any process.

        ``delta=True`` (what workers send at fences) strips the
        metrics history already shipped in this slice's previous
        checkpoint: the only checkpoint state that grows over a run is
        the append-only :class:`~repro.serving.metrics.FleetMetrics`
        lists (:data:`_METRIC_LOGS`), so a full blob every fence costs
        O(history) — quadratic over the run — while the delta stays
        O(one epoch's activity). The blob's ``base`` entry records the
        already-shipped list lengths; the coordinator splices the tail
        onto its stored ring state (:meth:`ShardedFleetScheduler._stash`).
        The first checkpoint (nothing shipped yet) is always full.
        """
        fleet_state = self.fleet.snapshot(detach=False)
        metrics = fleet_state["metrics"]
        logs = tuple(getattr(metrics, name) for name in _METRIC_LOGS)
        base = self._shipped if (delta and self._shipped is not None) \
            else None
        self._shipped = tuple(len(log) for log in logs)
        payload = {
            "shard_id": self.shard_id,
            "spill_after_cycles": self.spill_after_cycles,
            "dealt_cycle": dict(self._dealt_cycle),
            # ``detach=False``: the ``dumps`` below *is* the detach — a
            # second round-trip inside ``snapshot`` would triple-pickle
            # every fence.
            "fleet": fleet_state,
            "base": base,
        }
        if base is None:
            return pickle.dumps(payload)
        # Swap the unshipped tails in for the duration of the dump; the
        # live metrics object must come back intact either way.
        try:
            for name, log, skip in zip(_METRIC_LOGS, logs, base):
                setattr(metrics, name, log[skip:])
            return pickle.dumps(payload)
        finally:
            for name, log in zip(_METRIC_LOGS, logs):
                setattr(metrics, name, log)

    @classmethod
    def from_checkpoint(cls, blob: bytes, *, shard_id: int,
                        configs: list[SoCConfig] | None = None,
                        faults: FailureSchedule | None = None,
                        spill_after_cycles: int | None = None,
                        **fleet_kwargs) -> "ShardSlice":
        """Rebuild a live slice from :meth:`checkpoint` bytes.

        Accepts the same kwargs dict the fresh constructor does (so the
        coordinator's per-shard kwargs work for both paths); ``configs``
        and ``faults`` are swallowed — the snapshot carries its own
        authoritative copies, including the fault-timeline tail.
        """
        state = pickle.loads(blob)
        if state.get("base") is not None:
            raise ServingError(
                "cannot restore from a delta checkpoint; the "
                "coordinator composes deltas onto the ring state first")
        slice_ = cls.__new__(cls)
        slice_.shard_id = shard_id
        slice_.spill_after_cycles = spill_after_cycles
        slice_._dealt_cycle = dict(state["dealt_cycle"])
        slice_.fleet = FleetScheduler.restore(state["fleet"],
                                              **fleet_kwargs)
        # The coordinator's ring holds everything up to this
        # checkpoint, so the restored slice's next delta is relative
        # to the state it was just rebuilt from.
        slice_._shipped = tuple(
            len(getattr(slice_.fleet.metrics, name))
            for name in _METRIC_LOGS)
        return slice_

    def run_epoch(self, fence: int, plan: EpochPlan | None) -> dict:
        """Apply ``plan``, advance to ``fence``, report claim state."""
        if plan is not None:
            for session_id in plan.withdrawals:
                self.fleet.withdraw(session_id)
                self._dealt_cycle.pop(session_id, None)
            if plan.admissions:
                self.fleet.sim.process(
                    self._inject(plan.admissions),
                    name=f"shard{self.shard_id}-epoch-arrivals")
        self.fleet.run(until=fence)
        return self._report(fence)

    def _inject(self, admissions: tuple[AdmitOrder, ...]):
        """Replay one epoch's committed admissions at their cycles.

        Orders arrive sorted by ``(arrival_cycle, session_id)``;
        re-dealt sessions (spills, deferrals) with a past arrival are
        enqueued immediately at the fence, fresh arrivals at their
        recorded cycle — timeouts are nondecreasing, so one generator
        replays the whole batch.
        """
        sim = self.fleet.sim
        for order in admissions:
            gap = order.session.arrival_cycle - sim.now
            if gap > 0:
                yield sim.timeout(gap)
            self._dealt_cycle[order.session.session_id] = sim.now
            self.fleet.enqueue(
                order.session,
                preemptions=order.preemptions,
                evacuations=order.evacuations,
                kills=order.kills,
                lost_service_cycles=order.lost_service_cycles)

    def _report(self, fence: int) -> dict:
        fleet = self.fleet
        pending = fleet.pending_sessions
        spills: list[AdmitOrder] = []
        if self.spill_after_cycles is not None:
            for entry in pending:
                dealt = self._dealt_cycle.get(
                    entry.session.session_id, entry.session.arrival_cycle)
                if fence - dealt >= self.spill_after_cycles:
                    spills.append(AdmitOrder(
                        session=entry.session,
                        preemptions=entry.preemptions,
                        evacuations=entry.evacuations,
                        kills=entry.kills,
                        lost_service_cycles=entry.lost_service_cycles))
        return {
            "free_cores": tuple(fc.free_cores() for fc in fleet.chips),
            "healthy": tuple(fc.healthy for fc in fleet.chips),
            "pending": len(pending),
            "active": fleet.active_count,
            "spills": tuple(spills),
        }

    def collect(self) -> dict:
        """Final per-shard results (picklable) for aggregation."""
        return {"metrics": self.fleet.metrics,
                "mapper": self.fleet.mapper_stats()}


def _worker_main(conn, shard_ids: tuple[int, ...],
                 slice_kwargs: dict,
                 crash_events: tuple[CrashEvent, ...] = (),
                 checkpoints: dict[int, bytes] | None = None,
                 start_epoch: int = 0,
                 crash_on_restore: bool = False) -> None:
    """Worker process loop: owns a fixed set of slices for the run.

    Fresh workers build their slices from ``slice_kwargs``; recovery
    respawns get ``checkpoints`` (one blob per shard, or absent for a
    shard that never checkpointed) and ``start_epoch`` so the replayed
    epoch indices line up with the coordinator's. ``crash_events``
    carries only the injected faults still pending for these shards —
    the coordinator retires consumed events before each respawn, so a
    recovered worker never re-dies on the fault it just recovered from.
    """
    if crash_on_restore:
        os._exit(13)  # injected: die before any state is rebuilt
    if checkpoints:
        slices = {
            sid: (ShardSlice.from_checkpoint(checkpoints[sid],
                                             **slice_kwargs[sid])
                  if sid in checkpoints
                  else ShardSlice(**slice_kwargs[sid]))
            for sid in shard_ids
        }
    else:
        slices = {sid: ShardSlice(**slice_kwargs[sid])
                  for sid in shard_ids}
    epoch_index = start_epoch
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "epoch":
                _, fence, plans, want_checkpoint = message
                for event in crash_events:
                    if event.epoch != epoch_index:
                        continue
                    if event.kind == "crash":
                        os._exit(13)  # injected: die without a report
                    if event.kind == "hang":
                        time.sleep(event.hang_seconds)
                reports = {sid: slices[sid].run_epoch(fence,
                                                      plans.get(sid))
                           for sid in shard_ids}
                blobs = ({sid: slices[sid].checkpoint(delta=True)
                          for sid in shard_ids} if want_checkpoint else {})
                epoch_index += 1
                conn.send(("report", reports, blobs))
            elif kind == "collect":
                if any(e.kind == "crash_on_collect" for e in crash_events):
                    os._exit(13)  # injected: die holding the results
                conn.send(("state", {sid: slices[sid].collect()
                                     for sid in shard_ids}))
            else:  # "stop"
                return
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        conn.close()


@dataclass
class _ShardState:
    """Coordinator-side claim view of one shard (from its last report)."""

    free_cores: list[int]
    healthy: list[bool]
    pending: int = 0
    active: int = 0


@dataclass
class _WorkerHandle:
    """One supervised worker process and the shards it owns."""

    index: int
    shards: tuple[int, ...]
    proc: object
    conn: object


@dataclass
class _RecoveryLedger:
    """Supervision counters feeding the summary's ``recovery`` block."""

    respawns: int = 0
    timeouts: int = 0
    replayed_epochs: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    degraded_shards: list[int] = field(default_factory=list)

    @property
    def active(self) -> bool:
        """Did any actual recovery happen (not just checkpointing)?

        Gates the summary block: checkpoints alone are routine overhead
        every multi-worker run pays, and must not change the summary's
        byte layout (worker-count invariance depends on it).
        """
        return bool(self.respawns or self.timeouts
                    or self.replayed_epochs or self.degraded_shards)

    def block(self) -> dict:
        return {
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoints": self.checkpoints,
            "degraded_shards": len(self.degraded_shards),
            "replayed_epochs": self.replayed_epochs,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
        }


class ShardedFleetScheduler:
    """Parent coordinator: deals a trace across shard slices at fences.

    The multi-process counterpart of
    :class:`~repro.serving.fleet.FleetScheduler`: same trace in, an
    aggregate :meth:`summary` out — byte-identical for any ``workers``
    value. ``workers`` is clamped to the shard count (a shard is the
    unit of parallelism); ``workers=1`` runs in-process and is the
    determinism oracle.

    Per-shard scheduler options (``policy``, ``placement``,
    ``strategy``, ``defrag``, ``cost_model``, ``elastic``,
    ``evacuation``) are forwarded to every slice; pass registry *names*
    (not instances) when worker processes may be spawned rather than
    forked, so the options cross the pipe.

    Supervision knobs (multi-worker runs only):

    - ``checkpoint_every`` — fence cadence of the checkpoint ring
      (1 = every fence, the default; ``None`` disables checkpoints,
      recovery then replays the whole run from the start).
    - ``epoch_timeout_seconds`` — watchdog deadline per fence report
      (``None`` restores unbounded blocking receives).
    - ``respawn_budget`` / ``respawn_backoff_seconds`` — consecutive
      respawn attempts per failure before the worker's shards are
      folded into the in-process path, and the exponential-backoff
      base between attempts.
    - ``crashes`` — a :class:`CrashSchedule` of injected host faults
      (tests/benches; requires ``workers > 1``).
    """

    def __init__(self, configs: list[SoCConfig], *,
                 shards: int | None = None,
                 workers: int = 1,
                 epoch_cycles: int = 25_000_000,
                 dealing: str = "balanced",
                 spill_after_cycles: int | None = None,
                 faults: FailureSchedule | None = None,
                 checkpoint_every: int | None = 1,
                 epoch_timeout_seconds: float | None = 120.0,
                 respawn_budget: int = 3,
                 respawn_backoff_seconds: float = 0.25,
                 crashes: CrashSchedule | None = None,
                 **slice_options) -> None:
        if not configs:
            raise ServingError("fleet needs at least one chip config")
        if epoch_cycles < 1:
            raise ServingError(
                f"epoch_cycles must be positive, got {epoch_cycles}")
        if workers < 1:
            raise ServingError(f"need at least one worker, got {workers}")
        if dealing not in DEALING_MODES:
            raise ServingError(
                f"unknown dealing mode {dealing!r}; known: {DEALING_MODES}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServingError(
                f"checkpoint_every must be >= 1 or None, got "
                f"{checkpoint_every}")
        if epoch_timeout_seconds is not None and epoch_timeout_seconds <= 0:
            raise ServingError(
                f"epoch_timeout_seconds must be positive or None, got "
                f"{epoch_timeout_seconds}")
        if respawn_budget < 1:
            raise ServingError(
                f"respawn_budget must be >= 1, got {respawn_budget}")
        if respawn_backoff_seconds < 0:
            raise ServingError(
                f"respawn_backoff_seconds must be >= 0, got "
                f"{respawn_backoff_seconds}")
        self.configs = list(configs)
        self.shards = min(8, len(configs)) if shards is None else shards
        self.groups = partition_chips(len(configs), self.shards)
        self.workers = min(workers, self.shards)
        self.epoch_cycles = epoch_cycles
        self.dealing = dealing
        #: A waiter this many cycles old at a fence proposes a spill.
        self.spill_after_cycles = (epoch_cycles if spill_after_cycles is None
                                   else spill_after_cycles)
        if faults is not None:
            faults.validate(len(configs))
        self.faults = faults
        self._shard_faults = partition_schedule(faults, self.groups)
        self._fault_horizon = max(
            (e.recovery_cycle for e in faults.events), default=0
        ) if faults is not None else 0
        # Fail fast on bad registry names before any worker starts.
        coerce_policy(slice_options.get("policy", "fcfs"))
        placement = slice_options.get("placement", "least_loaded")
        if isinstance(placement, str):
            resolve_placement(placement)
        coerce_cost_model(slice_options.get("cost_model", "analytic"))
        coerce_evacuation(slice_options.get("evacuation", "shrink_to_fit"))
        self._slice_options = slice_options
        self.checkpoint_every = checkpoint_every
        self.epoch_timeout_seconds = epoch_timeout_seconds
        self.respawn_budget = respawn_budget
        self.respawn_backoff_seconds = respawn_backoff_seconds
        if crashes is not None:
            if self.workers == 1:
                raise ServingError(
                    "a crash schedule needs workers > 1 (in-process mode "
                    "has no worker process to kill)")
            crashes.validate(self.shards)
        self.crashes = crashes
        #: Injected faults not yet consumed, by category: epoch-addressed
        #: events retire once their worker has been recovered past them;
        #: restore crashes carry a per-event remaining count.
        self._pending_crashes: list[CrashEvent] = [
            e for e in (crashes.events if crashes else ())
            if e.kind in ("crash", "hang", "crash_on_collect")]
        self._restore_crashes: list[list] = [
            [e, e.count] for e in (crashes.events if crashes else ())
            if e.kind == "crash_on_restore"]
        #: Static per-(shard, chip) capability map for claim validation.
        self._chip_cores = [
            [configs[i].mesh_rows * configs[i].mesh_cols for i in group]
            for group in self.groups
        ]
        self._chip_capacity = [
            [guest_capacity_bytes(configs[i]) for i in group]
            for group in self.groups
        ]
        self._frequency_hz = configs[0].frequency_hz
        self._trace: list[TenantSession] = []
        self._trace_loaded = False
        self._static_target: dict[int, int] = {}
        # Run state.
        self._cursor = 0
        self._deferred: list[AdmitOrder] = []
        self._spills: list[tuple[int, AdmitOrder]] = []
        self._states = [
            _ShardState(free_cores=list(cores),
                        healthy=[True] * len(cores))
            for cores in self._chip_cores
        ]
        self._epochs = 0
        self.deferred_total = 0
        self.spills_committed = 0
        self.spills_rejected = 0
        self.shard_metrics: list[FleetMetrics] | None = None
        self._mapper_stats: dict | None = None
        #: In-process slices: all shards when ``workers=1``; orphaned
        #: shards after a degradation otherwise.
        self._slices: dict[int, ShardSlice] = {}
        self._pool: dict[int, _WorkerHandle] = {}
        self._mp_context = None
        #: Checkpoint ring: newest *composed* (delta-spliced, unpickled)
        #: checkpoint state per shard, plus the epoch plans committed
        #: since it was taken. :meth:`_compose` serializes an entry
        #: back into the full blob recovery ships.
        self._checkpoints: dict[int, dict] = {}
        self._plan_log: list[tuple[int, dict[int, EpochPlan], bool]] = []
        self.recovery = _RecoveryLedger()
        self._owned: list[tuple[int, ...]] = [
            tuple(sid for sid in range(self.shards)
                  if sid % self.workers == w)
            for w in range(self.workers)
        ]

    @classmethod
    def homogeneous(cls, chips: int, cores: int = 36,
                    **kwargs) -> "ShardedFleetScheduler":
        """A sharded fleet of ``chips`` identical SIM-configured chips."""
        if chips < 1:
            raise ServingError(f"fleet needs at least one chip, got {chips}")
        return cls([sim_config(cores) for _ in range(chips)], **kwargs)

    @property
    def chip_count(self) -> int:
        return len(self.configs)

    # -- public API --------------------------------------------------------
    def submit(self, trace: list[TenantSession]) -> None:
        """Queue a trace (validated fleet-wide, like the monolith)."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        largest = max(max(cores) for cores in self._chip_cores)
        largest_memory = max(max(caps) for caps in self._chip_capacity)
        cost_model = coerce_cost_model(
            self._slice_options.get("cost_model", "analytic"))
        ordered = sorted(trace,
                         key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}")
            if session.core_count > largest:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; largest fleet chip has "
                    f"{largest}")
            if session.memory_bytes > largest_memory:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.memory_bytes} guest bytes; largest fleet "
                    f"chip can map {largest_memory}")
        if self.dealing == "static":
            dealt = deal_sessions(ordered, self.shards)
            for shard_id, sessions in enumerate(dealt):
                for session in sessions:
                    if not self._fits_statically(shard_id, session):
                        raise ServingError(
                            f"static deal pins session "
                            f"{session.session_id} to shard {shard_id}, "
                            f"which cannot host it")
                    self._static_target[session.session_id] = shard_id
        self._trace = ordered
        self._trace_loaded = True

    def run(self) -> int:
        """Drive every shard epoch by epoch; returns the final fence."""
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        if self.shard_metrics is not None:
            raise ServingError("scheduler already ran its trace")
        self._start()
        fence = 0
        try:
            while True:
                fence += self.epoch_cycles
                plans = self._deal(fence)
                want = self._checkpoint_due()
                if self._pool:
                    self._plan_log.append((fence, plans, want))
                reports = self._exchange(fence, plans, want)
                if want and self._pool:
                    self._plan_log.clear()
                self._absorb(reports)
                self._epochs += 1
                if (self._cursor >= len(self._trace)
                        and not self._deferred and not self._spills
                        and all(s.pending == 0 and s.active == 0
                                for s in self._states)
                        and fence >= self._fault_horizon):
                    break
            self._finalize()
        finally:
            self._shutdown()
        return fence

    def serve(self, trace: list[TenantSession]) -> dict:
        """Convenience: submit + run + return the aggregate summary."""
        self.submit(trace)
        self.run()
        return self.summary()

    def summary(self, frequency_hz: int | None = None) -> dict:
        """The aggregate fleet digest (worker-count-invariant).

        When supervision actually recovered something, a ``recovery``
        block is appended (respawns, timeouts, replayed epochs,
        checkpoint ring size, degraded shards) — the one part of the
        digest that is *not* worker-count-invariant, which is why
        crash-free runs omit it entirely and equivalence checks compare
        summaries with the block popped.
        """
        if self.shard_metrics is None:
            raise ServingError("run() the trace before summary()")
        offsets = [group[0] for group in self.groups]
        cores = [sum(chip_cores) for chip_cores in self._chip_cores]
        digest = merge_fleet_summaries(
            self.shard_metrics, cores, offsets,
            frequency_hz or self._frequency_hz,
            recovery=(self.recovery.block()
                      if self.recovery.active else None))
        digest["sharding"].update({
            "chips_per_shard": [len(g) for g in self.groups],
            "dealing": self.dealing,
            "deferred_total": self.deferred_total,
            "epoch_cycles": self.epoch_cycles,
            "epochs": self._epochs,
            "spills_committed": self.spills_committed,
            "spills_rejected": self.spills_rejected,
        })
        return digest

    def mapper_stats(self) -> dict:
        """Fleet-wide mapper counters (per-shard stats summed)."""
        if self._mapper_stats is None:
            raise ServingError("run() the trace before mapper_stats()")
        return dict(self._mapper_stats)

    # -- the fence protocol ------------------------------------------------
    def _deal(self, fence: int) -> dict[int, EpochPlan]:
        """Resolve this fence's decisions in one fixed total order.

        Validate-all-before-deploy: claims are tallied against the
        reported free/health map; only decisions whose claims hold are
        committed into plans, the rest defer (arrivals) or stay put
        (spills). The order — ``(cycle, source shard, session id)``
        with fresh arrivals and deferrals sourced at ``-1`` — depends
        only on trace and reports, never on workers.
        """
        decisions: list[tuple[int, int, int, AdmitOrder, int | None]] = []
        while (self._cursor < len(self._trace)
               and self._trace[self._cursor].arrival_cycle < fence):
            session = self._trace[self._cursor]
            self._cursor += 1
            decisions.append((session.arrival_cycle, -1,
                              session.session_id, AdmitOrder(session), None))
        for order in self._deferred:
            decisions.append((order.session.arrival_cycle, -1,
                              order.session.session_id, order, None))
        self._deferred = []
        last_fence = fence - self.epoch_cycles
        for source, order in self._spills:
            decisions.append((last_fence, source,
                              order.session.session_id, order, source))
        self._spills = []
        decisions.sort(key=lambda d: (d[0], d[1], d[2]))

        claims: dict[int, list[int]] = {}
        admissions: dict[int, list[AdmitOrder]] = {}
        withdrawals: dict[int, list[int]] = {}
        for _, _, _, order, source in decisions:
            target = self._choose_shard(order.session, claims,
                                        exclude=source,
                                        require_free=source is not None)
            if target is None:
                if source is None:
                    self._deferred.append(order)
                    self.deferred_total += 1
                else:
                    self.spills_rejected += 1  # stays at its source
                continue
            if source is not None:
                withdrawals.setdefault(source, []).append(
                    order.session.session_id)
                self.spills_committed += 1
            admissions.setdefault(target, []).append(order)
        plans: dict[int, EpochPlan] = {}
        for shard_id in range(self.shards):
            if shard_id not in admissions and shard_id not in withdrawals:
                continue
            batch = sorted(
                admissions.get(shard_id, ()),
                key=lambda o: (o.session.arrival_cycle,
                               o.session.session_id))
            plans[shard_id] = EpochPlan(
                admissions=tuple(batch),
                withdrawals=tuple(sorted(withdrawals.get(shard_id, ()))))
        return plans

    def _choose_shard(self, session: TenantSession,
                      claims: dict[int, list[int]],
                      exclude: int | None, *,
                      require_free: bool) -> int | None:
        """Validate the session's claim; commit it on the best shard.

        A shard is *eligible* when some healthy chip whose static shape
        fits the request still has enough claim-adjusted free cores —
        it can admit immediately. Ranking: most total claim-adjusted
        free cores, then shortest queue, then lowest shard id. When no
        shard is eligible and ``require_free`` is False (fresh
        arrivals), the session falls back to the best statically
        fitting healthy shard and waits in *its* queue — the slice
        admits it mid-epoch on the first departure, which a
        coordinator-side deferral could not. Spills set
        ``require_free``: moving to another queue is never better than
        staying put. ``static`` dealing bypasses all of it — the
        pinned shard absorbs the session unconditionally.
        """
        if self.dealing == "static":
            return self._static_target[session.session_id]
        cores = session.core_count
        best: tuple | None = None
        best_shard = best_chip = None
        fallback: tuple | None = None
        fallback_shard = fallback_chip = None
        for shard_id in range(self.shards):
            if shard_id == exclude:
                continue
            state = self._states[shard_id]
            shard_claims = claims.get(shard_id)
            top_chip = None
            top_free = 0
            fit_chip = None
            fit_free = 0
            total_free = 0
            for chip in range(len(state.free_cores)):
                free = state.free_cores[chip]
                if shard_claims is not None:
                    free -= shard_claims[chip]
                total_free += max(0, free)
                if (not state.healthy[chip]
                        or self._chip_cores[shard_id][chip] < cores
                        or self._chip_capacity[shard_id][chip]
                        < session.memory_bytes):
                    continue
                if fit_chip is None or free > fit_free:
                    fit_chip, fit_free = chip, free
                if free < cores:
                    continue
                if top_chip is None or free > top_free:
                    top_chip, top_free = chip, free
            rank = (-total_free, state.pending, shard_id)
            if top_chip is not None and (best is None or rank < best):
                best, best_shard, best_chip = rank, shard_id, top_chip
            if fit_chip is not None and (fallback is None
                                         or rank < fallback):
                fallback, fallback_shard, fallback_chip = (
                    rank, shard_id, fit_chip)
        if best_shard is None and not require_free:
            best_shard, best_chip = fallback_shard, fallback_chip
        if best_shard is None:
            return None
        claims.setdefault(
            best_shard, [0] * len(self._chip_cores[best_shard])
        )[best_chip] += cores
        return best_shard

    def _absorb(self, reports: dict[int, dict]) -> None:
        """Fold per-shard reports into the next fence's claim map."""
        for shard_id in range(self.shards):
            report = reports[shard_id]
            state = self._states[shard_id]
            state.free_cores = list(report["free_cores"])
            state.healthy = list(report["healthy"])
            state.pending = report["pending"]
            state.active = report["active"]
            for order in report["spills"]:
                self._spills.append((shard_id, order))

    def _fits_statically(self, shard_id: int,
                         session: TenantSession) -> bool:
        return any(
            self._chip_cores[shard_id][chip] >= session.core_count
            and self._chip_capacity[shard_id][chip] >= session.memory_bytes
            for chip in range(len(self._chip_cores[shard_id])))

    # -- slice / worker management -----------------------------------------
    def _slice_kwargs(self, shard_id: int) -> dict:
        spill = (None if self.dealing == "static"
                 else self.spill_after_cycles)
        return {
            "shard_id": shard_id,
            "configs": [self.configs[i] for i in self.groups[shard_id]],
            "spill_after_cycles": spill,
            "faults": self._shard_faults[shard_id],
            **self._slice_options,
        }

    def _checkpoint_due(self) -> bool:
        """Checkpoint this epoch? (Only meaningful with live workers.)"""
        if not self._pool or self.checkpoint_every is None:
            return False
        return (self._epochs + 1) % self.checkpoint_every == 0

    def _start(self) -> None:
        if self.workers == 1:
            self._slices = {
                sid: ShardSlice(**self._slice_kwargs(sid))
                for sid in range(self.shards)
            }
            return
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        for worker in range(self.workers):
            self._pool[worker] = self._spawn(worker, self._owned[worker])

    def _spawn(self, worker: int, shards: tuple[int, ...], *,
               recovery: bool = False) -> _WorkerHandle:
        """Fork one worker; recovery spawns ship checkpoints to restore.

        A recovery spawn consumes a pending ``crash_on_restore`` charge
        for any of its shards (the injected worker dies before touching
        the pipe protocol, so the failure surfaces as an EOF on the
        first replay receive).
        """
        crash_on_restore = False
        if recovery:
            for entry in self._restore_crashes:
                event, remaining = entry
                if remaining > 0 and event.shard in shards:
                    entry[1] -= 1
                    crash_on_restore = True
                    break
        checkpoints = ({sid: self._compose(sid) for sid in shards
                        if sid in self._checkpoints} if recovery else None)
        start_epoch = (self._epochs - (len(self._plan_log) - 1)
                       if recovery else 0)
        events = tuple(e for e in self._pending_crashes
                       if e.shard in shards)
        parent, child = self._mp_context.Pipe()
        proc = self._mp_context.Process(
            target=_worker_main,
            args=(child, shards,
                  {sid: self._slice_kwargs(sid) for sid in shards},
                  events, checkpoints, start_epoch, crash_on_restore),
            daemon=True,
            name=f"shard-worker-{worker}")
        proc.start()
        child.close()
        return _WorkerHandle(index=worker, shards=shards, proc=proc,
                             conn=parent)

    def _exchange(self, fence: int, plans: dict[int, EpochPlan],
                  want_checkpoint: bool = False) -> dict[int, dict]:
        """One fence round-trip, supervising every live worker.

        In-process slices run first (they cannot fail), then plans are
        broadcast and reports gathered under the watchdog deadline. Any
        worker that dies (pipe EOF / broken pipe) or hangs
        (:class:`~repro.errors.EpochTimeoutError`) is handed to
        :meth:`_recover`, which either replays it back to this fence on
        a fresh process or degrades its shards in-process — either way
        this method returns a full, deterministic report set.
        """
        reports: dict[int, dict] = {}
        for sid in sorted(self._slices):
            reports[sid] = self._slices[sid].run_epoch(fence,
                                                       plans.get(sid))
        failed: list[int] = []
        for worker, handle in sorted(self._pool.items()):
            sub = {sid: plans[sid] for sid in handle.shards
                   if sid in plans}
            try:
                handle.conn.send(("epoch", fence, sub, want_checkpoint))
            except _PIPE_ERRORS:
                failed.append(worker)
        for worker, handle in sorted(self._pool.items()):
            if worker in failed:
                continue
            try:
                _, payload, blobs = self._receive(handle, fence)
            except WorkerFailure:
                failed.append(worker)
                continue
            reports.update(payload)
            self._stash(blobs)
        for worker in failed:
            reports.update(self._recover(worker, fence))
        return reports

    def _receive(self, handle: _WorkerHandle, fence: int):
        """Deadline-based receive: poll until report, death, or timeout.

        Replaces the unbounded blocking ``conn.recv()``: a worker that
        neither reports nor dies within ``epoch_timeout_seconds``
        raises :class:`~repro.errors.EpochTimeoutError`; a dead pipe
        raises :class:`~repro.errors.WorkerFailure`. Callers treat both
        as "this worker is gone".
        """
        conn = handle.conn
        try:
            if self.epoch_timeout_seconds is None:
                return conn.recv()
            deadline = time.monotonic() + self.epoch_timeout_seconds
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.recovery.timeouts += 1
                    raise EpochTimeoutError(
                        f"shard worker {handle.index} missed the "
                        f"{self.epoch_timeout_seconds}s epoch deadline "
                        f"at fence {fence}")
                if conn.poll(remaining):
                    return conn.recv()
        except _PIPE_ERRORS as exc:
            raise WorkerFailure(
                f"shard worker {handle.index} died at fence {fence}: "
                f"{exc!r}") from exc

    def _stash(self, blobs: dict[int, bytes]) -> None:
        """Fold fresh checkpoints into the ring (newest wins).

        Workers ship *delta* blobs — full slice state minus the
        metrics history already shipped (see
        :meth:`ShardSlice.checkpoint`). The ring therefore stores the
        unpickled, spliced-together state per shard: each delta's
        metrics logs are appended onto the previous ring entry's and
        the composed state replaces it. ``checkpoint_bytes`` counts
        what actually crossed the pipe (the deltas).
        """
        for sid, blob in blobs.items():
            self.recovery.checkpoints += 1
            self.recovery.checkpoint_bytes += len(blob)
            state = pickle.loads(blob)
            base = state.get("base")
            if base is not None:
                metrics = state["fleet"]["metrics"]
                previous = self._checkpoints[sid]["fleet"]["metrics"]
                for name, skip in zip(_METRIC_LOGS, base):
                    log = getattr(previous, name)
                    # A replayed delta re-ships a tail the ring may
                    # already hold; truncating to the shipped base
                    # makes the splice idempotent.
                    del log[skip:]
                    log.extend(getattr(metrics, name))
                    setattr(metrics, name, log)
                state["base"] = None
            self._checkpoints[sid] = state

    def _compose(self, sid: int) -> bytes:
        """Full checkpoint bytes for one shard from the spliced ring.

        The serialization doubles as the detach: consumers
        (:meth:`ShardSlice.from_checkpoint` in a respawned worker or
        an in-process fold) adopt the unpickled state's live objects,
        and the ring entry must not alias them.
        """
        return pickle.dumps(self._checkpoints[sid])

    def _consume_crashes(self, shards: tuple[int, ...]) -> None:
        """Retire epoch-addressed injected faults a recovery passed.

        Without this a respawned worker would replay straight into the
        crash event that just killed it and burn the whole budget on
        one injection.
        """
        self._pending_crashes = [
            e for e in self._pending_crashes
            if not (e.shard in shards and e.kind in ("crash", "hang")
                    and e.epoch <= self._epochs)]

    def _recover(self, worker: int, fence: int) -> dict[int, dict]:
        """Respawn-and-replay a failed worker; degrade when out of budget.

        Each attempt: back off exponentially, fork a fresh process
        carrying the shards' last fence checkpoints, then replay every
        epoch plan committed since those checkpoints (the log always
        ends with the in-flight fence). Determinism makes the replayed
        final report byte-identical to the lost one. When
        ``respawn_budget`` consecutive attempts die, the shards are
        folded into the in-process path instead — the run completes
        degraded rather than aborting, and the summary's ``recovery``
        block says so.
        """
        handle = self._pool.pop(worker)
        self._dismiss(handle)
        self._consume_crashes(handle.shards)
        for attempt in range(self.respawn_budget):
            if self.respawn_backoff_seconds:
                time.sleep(self.respawn_backoff_seconds * (2 ** attempt))
            self.recovery.respawns += 1
            replacement = self._spawn(worker, handle.shards, recovery=True)
            try:
                reports = self._replay(replacement)
            except WorkerFailure:
                self._dismiss(replacement)
                continue
            self._pool[worker] = replacement
            return reports
        self.recovery.degraded_shards.extend(handle.shards)
        return self._fold(handle.shards)

    def _replay(self, handle: _WorkerHandle) -> dict[int, dict]:
        """Drive a respawned worker through the logged epochs.

        Every entry re-sends the committed plans (restricted to the
        worker's shards); intermediate reports are discarded — the
        coordinator already absorbed their originals — and checkpoints
        are re-stashed so the ring stays current. Returns the final
        (in-flight) fence's reports.
        """
        reports: dict[int, dict] = {}
        for fence, plans, want in self._plan_log:
            sub = {sid: plans[sid] for sid in handle.shards
                   if sid in plans}
            try:
                handle.conn.send(("epoch", fence, sub, want))
            except _PIPE_ERRORS as exc:
                raise WorkerFailure(
                    f"shard worker {handle.index} died during replay at "
                    f"fence {fence}: {exc!r}") from exc
            _, payload, blobs = self._receive(handle, fence)
            self.recovery.replayed_epochs += 1
            reports = payload
            self._stash(blobs)
        return reports

    def _fold(self, shards: tuple[int, ...]) -> dict[int, dict]:
        """Absorb orphaned shards into the in-process oracle path.

        Each shard is restored from its last fence checkpoint (or
        rebuilt from scratch when it never checkpointed) and replayed
        through the logged epochs inside the coordinator. From here on
        ``_exchange`` simulates these shards in-process — degraded but
        alive.
        """
        reports: dict[int, dict] = {}
        for sid in shards:
            if sid in self._checkpoints:
                self._slices[sid] = ShardSlice.from_checkpoint(
                    self._compose(sid), **self._slice_kwargs(sid))
            else:
                self._slices[sid] = ShardSlice(**self._slice_kwargs(sid))
        for fence, plans, _ in self._plan_log:
            for sid in shards:
                reports[sid] = self._slices[sid].run_epoch(
                    fence, plans.get(sid))
            self.recovery.replayed_epochs += 1
        return reports

    def _finalize(self) -> None:
        states: dict[int, dict] = {}
        for worker, handle in sorted(self._pool.items()):
            try:
                handle.conn.send(("collect",))
                _, payload = self._receive(handle, -1)
            except (WorkerFailure, *_PIPE_ERRORS):
                # A worker dying while holding finished results is the
                # worst-timed failure; the checkpoint ring still covers
                # it — fold the shards in-process (restore + replay to
                # the final fence) and collect from the slices below.
                self._pool.pop(worker)
                self._dismiss(handle)
                self.recovery.degraded_shards.extend(handle.shards)
                self._fold(handle.shards)
                continue
            states.update(payload)
        for sid in sorted(self._slices):
            states[sid] = self._slices[sid].collect()
        self.shard_metrics = [states[sid]["metrics"]
                              for sid in range(self.shards)]
        total: dict[str, int | float] = {}
        for sid in range(self.shards):
            for key, value in states[sid]["mapper"].items():
                if key == "hit_rate":
                    continue
                total[key] = total.get(key, 0) + value
        lookups = total.get("hits", 0) + total.get("misses", 0)
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        self._mapper_stats = total

    def _dismiss(self, handle: _WorkerHandle,
                 join_timeout: float = 5.0) -> None:
        """Put one worker down for good: terminate -> kill -> close.

        SIGTERM first; a worker that ignores it past ``join_timeout``
        (wedged in C code, masked signals) is escalated to SIGKILL,
        which cannot be ignored. The pipe end is always closed — a
        supervisor that respawns workers all run long cannot afford to
        leak one file descriptor per incident.
        """
        try:
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=join_timeout)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=join_timeout)
        finally:
            try:
                handle.conn.close()
            except OSError:
                pass

    def _shutdown(self) -> None:
        self._slices = {}
        for handle in self._pool.values():
            try:
                handle.conn.send(("stop",))
            except _PIPE_ERRORS:
                pass
        for handle in self._pool.values():
            try:
                handle.proc.join(timeout=10)
            finally:
                self._dismiss(handle)
        self._pool = {}
        self._checkpoints = {}
        self._plan_log = []
