"""An always-on serving control plane over the fleet scheduler.

:class:`ControlPlane` wraps a :class:`~repro.serving.fleet.FleetScheduler`
in an asyncio front-end: clients connect over TCP or a Unix socket and
speak the newline-delimited JSON protocol of
:mod:`repro.serving.protocol` — ``admit`` tenant sessions, ``withdraw``
pending ones, poll ``status``/``metrics``, checkpoint with
``snapshot``/``restore``, advance the simulation with ``drain`` and stop
the service with ``shutdown``.

Two clocks, two modes
---------------------
The scheduler's discrete-event clock is decoupled from the wall clock;
``mode=`` picks how they couple:

- ``"asap"`` — the simulation advances as fast as the event loop allows
  (the pacer drains whatever is queued each tick). With
  ``autostart=False`` it advances **only** on explicit ``drain``
  requests, which makes a scripted client fully deterministic — the
  service benchmark drives this mode and byte-compares the final
  summary against batch :meth:`FleetScheduler.serve`.
- ``"realtime"`` — the pacer advances the simulated clock in lockstep
  with scaled wall time (``cycles_per_second`` simulated cycles per
  wall second), the always-on dashboard mode.

Advancement is cooperative: the engine's :meth:`Simulator.step`
dispatches one calendar-queue bucket at a time and the control plane
yields to the event loop every few hundred buckets, so a long drain
never starves connected clients.

Determinism bridge
------------------
Admissions are validated immediately but *buffered*; the first fold
into an untouched scheduler goes through :meth:`FleetScheduler.submit`
— the exact machinery the batch path uses — so an admit-everything-
then-drain script reproduces ``serve()`` **byte for byte** (pinned by
``benchmarks/bench_service.py``). Folds after the simulation has
started take the live :meth:`FleetScheduler.enqueue` path (arrivals in
the past are enqueued now); the live path is deterministic for a given
request timeline but makes no byte-equality promise against batch.

Backpressure
------------
``max_pending`` bounds buffered-plus-queued admissions. Over the bound,
``admit`` answers ``status="busy"`` with a ``retry_after_cycles`` hint
(the nearest expected departure) and the session is **not** enqueued —
never silently dropped.

Warm restart
------------
``snapshot`` writes the scheduler checkpoint *plus* the declarative
:class:`~repro.serving.config.ServingConfig` (as its wire dict) and the
service's own knobs; :meth:`ControlPlane.restore` (or ``python -m
repro.serving.service --restore``) rebuilds the whole service in a
fresh process and continues the run on the checkpointed timeline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pickle
import sys

from repro.errors import ServingError
from repro.serving.config import ServingConfig
from repro.serving.fleet import FleetScheduler
from repro.serving.metrics import canonical_json, summary_wire
from repro.serving.protocol import (
    OPS,
    ProtocolError,
    busy_response,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    request,
    session_from_wire,
    session_to_wire,
)
from repro.serving.workload import TenantSession

#: Service modes: how the simulated clock couples to the wall clock.
MODES = ("asap", "realtime")

#: Buckets dispatched between yields to the event loop during a drain.
_YIELD_EVERY = 256

#: Pacer tick, seconds (autostart modes only).
_PACER_INTERVAL = 0.005

#: Backpressure retry hint when no departure is in sight.
_DEFAULT_RETRY_CYCLES = 1_000_000


def _arrival_order(session: TenantSession) -> tuple:
    return (session.arrival_cycle, session.session_id)


class ControlPlane:
    """The always-on serving service: one fleet, many protocol clients."""

    def __init__(self, chips: int, cores: int = 36,
                 config: "ServingConfig | None" = None,
                 mode: str = "asap",
                 cycles_per_second: int = 1_000_000_000,
                 max_pending: int = 64,
                 autostart: bool = True,
                 fleet: "FleetScheduler | None" = None) -> None:
        if mode not in MODES:
            raise ServingError(
                f"unknown service mode {mode!r}; choose from {MODES}")
        if max_pending < 1:
            raise ServingError(
                f"max_pending must be >= 1, got {max_pending}")
        if cycles_per_second < 1:
            raise ServingError(
                f"cycles_per_second must be >= 1, got {cycles_per_second}")
        self.config = config if config is not None else ServingConfig()
        self.mode = mode
        self.cycles_per_second = cycles_per_second
        self.max_pending = max_pending
        self.autostart = autostart
        #: ``fleet=`` is the adoption hook :meth:`restore` uses; normal
        #: construction builds a homogeneous fleet from the config.
        self.fleet = (fleet if fleet is not None else
                      FleetScheduler.homogeneous(chips, cores=cores,
                                                 config=self.config))
        #: Validated admissions not yet folded into the scheduler.
        self._backlog: list[TenantSession] = []
        self._lock = asyncio.Lock()
        self._shutdown = asyncio.Event()
        self._servers: list[asyncio.AbstractServer] = []
        self._pacer_task: "asyncio.Task | None" = None
        self.admitted_total = 0
        self.busy_responses = 0

    # -- introspection -----------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        return self.fleet.chips[0].chip.config.frequency_hz

    def queue_depth(self) -> int:
        """Buffered + scheduler-pending admissions (the backpressure gauge)."""
        return len(self._backlog) + len(self.fleet.pending_sessions)

    def _in_flight_ids(self) -> set:
        ids = {s.session_id for s in self._backlog}
        ids.update(e.session.session_id for e in self.fleet.pending_sessions)
        ids.update(a.session.session_id for a in self.fleet._active.values())
        return ids

    def _retry_hint(self) -> int:
        departs = [a.expected_depart - self.fleet.sim.now
                   for a in self.fleet._active.values()]
        positive = [d for d in departs if d > 0]
        return min(positive) if positive else _DEFAULT_RETRY_CYCLES

    def status_payload(self) -> dict:
        return {
            "mode": self.mode,
            "cycle": self.fleet.sim.now,
            "chips": self.fleet.chip_count,
            "backlog": len(self._backlog),
            "pending": len(self.fleet.pending_sessions),
            "active": self.fleet.active_count,
            "queue_depth": self.queue_depth(),
            "max_pending": self.max_pending,
            "admitted_total": self.admitted_total,
            "busy_responses": self.busy_responses,
            "free_cores": self.fleet.free_core_count(),
            "config": self.config.to_dict(),
        }

    def metrics_payload(self) -> dict:
        """The live metrics projection (summary + mapper + queue gauges)."""
        return {
            "cycle": self.fleet.sim.now,
            "backlog": len(self._backlog),
            "pending": len(self.fleet.pending_sessions),
            "active": self.fleet.active_count,
            "summary": summary_wire(
                self.fleet.metrics.summary(self.frequency_hz)),
            "mapper": summary_wire(self.fleet.mapper_stats()),
        }

    # -- admission ---------------------------------------------------------
    def _validate_admission(self, session: TenantSession) -> None:
        """The enqueue-time static caps, applied at the protocol edge."""
        if session.session_id in self._in_flight_ids():
            raise ServingError(
                f"session {session.session_id} is already in flight")
        if session.model not in self.fleet.cost_model.models:
            raise ServingError(
                f"session {session.session_id} wants unknown model "
                f"{session.model!r}")
        largest = max(fc.chip.core_count for fc in self.fleet.chips)
        if session.core_count > largest:
            raise ServingError(
                f"session {session.session_id} wants "
                f"{session.core_count} cores; largest fleet chip has "
                f"{largest}")
        largest_memory = max(fc.hypervisor.guest_memory_capacity
                             for fc in self.fleet.chips)
        if session.memory_bytes > largest_memory:
            raise ServingError(
                f"session {session.session_id} wants "
                f"{session.memory_bytes} guest bytes; largest fleet "
                f"chip can map {largest_memory}")

    def admit(self, session: TenantSession) -> dict:
        """Validate + buffer one admission; the protocol ``admit`` op.

        Returns the response dict: ``ok`` with the queue position, or
        ``busy`` (not enqueued) when the bounded queue is full.
        """
        self._validate_admission(session)
        if self.queue_depth() >= self.max_pending:
            self.busy_responses += 1
            return busy_response("admit",
                                 retry_after_cycles=self._retry_hint())
        self._backlog.append(session)
        self.admitted_total += 1
        return ok_response("admit", session_id=session.session_id,
                           queue_depth=self.queue_depth())

    def withdraw(self, session_id: int) -> dict:
        """Remove a buffered or scheduler-pending session by id."""
        for session in self._backlog:
            if session.session_id == session_id:
                self._backlog.remove(session)
                return ok_response("withdraw", session_id=session_id,
                                   source="backlog")
        self.fleet.withdraw(session_id)  # raises ServingError when absent
        return ok_response("withdraw", session_id=session_id,
                           source="pending")

    # -- simulation advancement --------------------------------------------
    def _fold_backlog(self) -> None:
        """Hand buffered admissions to the scheduler.

        The first fold into an untouched scheduler is a batch
        :meth:`submit` — identical machinery, so a script that admits
        everything before the first drain reproduces ``serve()`` byte
        for byte. Later folds use the live streaming path.
        """
        backlog = sorted(self._backlog, key=_arrival_order)
        self._backlog = []
        if not self.fleet._trace_loaded:
            if backlog:
                self.fleet.submit(backlog)
            else:
                self.fleet.begin_stream()
            return
        for session in backlog:
            if session.arrival_cycle > self.fleet.sim.now:
                self.fleet.sim.process(
                    self._deferred_arrival(session),
                    name=f"service-arrival-{session.session_id}")
            else:
                self.fleet.enqueue(session)

    def _deferred_arrival(self, session: TenantSession):
        yield self.fleet.sim.timeout(
            session.arrival_cycle - self.fleet.sim.now)
        self.fleet.enqueue(session)

    async def _advance(self, until: "int | None" = None) -> int:
        """Cooperatively drive the simulation (caller holds the lock).

        Folds the backlog, then dispatches calendar-queue buckets one
        :meth:`Simulator.step` at a time, yielding to the event loop
        every ``_YIELD_EVERY`` buckets. ``until`` bounds simulated time
        with :meth:`Simulator.run`'s semantics (the clock reads
        ``until`` afterwards even if the queue drained early); ``None``
        drains everything currently scheduled.
        """
        self._fold_backlog()
        sim = self.fleet.sim
        steps = 0
        while True:
            upcoming = sim.peek()
            if upcoming is None or (until is not None and upcoming > until):
                break
            sim.step()
            steps += 1
            if steps % _YIELD_EVERY == 0:
                await asyncio.sleep(0)
        if until is not None and sim.now < until:
            sim.now = until
        return sim.now

    async def drain(self, until: "int | None" = None) -> dict:
        """The protocol ``drain`` op (also the embedded-driver entry).

        A full drain (``until=None``) additionally runs the engine's
        deadlock check and returns the final metrics ``summary`` — the
        payload the service benchmark byte-compares against batch
        ``serve()``.
        """
        async with self._lock:
            cycle = await self._advance(until)
            response = ok_response("drain", cycle=cycle,
                                   pending=len(self.fleet.pending_sessions),
                                   active=self.fleet.active_count)
            if until is None:
                self.fleet.sim.finish_processes()
                response["summary"] = summary_wire(
                    self.fleet.metrics.summary(self.frequency_hz))
            return response

    # -- checkpoint --------------------------------------------------------
    def snapshot_payload(self) -> dict:
        """The picklable warm-restart payload (scheduler + service)."""
        return {
            "state": self.fleet.snapshot(),
            "config": self.config.to_dict(),
            "service": {
                "mode": self.mode,
                "cycles_per_second": self.cycles_per_second,
                "max_pending": self.max_pending,
                "backlog": list(self._backlog),
                "admitted_total": self.admitted_total,
                "busy_responses": self.busy_responses,
            },
        }

    def snapshot_to(self, path: str) -> str:
        with open(path, "wb") as fh:
            pickle.dump(self.snapshot_payload(), fh)
        return path

    @classmethod
    def restore(cls, path: str, autostart: bool = True) -> "ControlPlane":
        """Rebuild the whole service from a :meth:`snapshot_to` file.

        The checkpointed :class:`ServingConfig` dict names the policies;
        :meth:`FleetScheduler.restore` rebuilds the scheduler on the
        checkpointed timeline; the service knobs (mode, bounds,
        unfolded backlog, counters) come back verbatim.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        config = ServingConfig.from_dict(payload["config"])
        fleet = FleetScheduler.restore(payload["state"], config=config)
        service = payload["service"]
        plane = cls(chips=fleet.chip_count, config=config,
                    mode=service["mode"],
                    cycles_per_second=service["cycles_per_second"],
                    max_pending=service["max_pending"],
                    autostart=autostart, fleet=fleet)
        plane._backlog = list(service["backlog"])
        plane.admitted_total = service["admitted_total"]
        plane.busy_responses = service["busy_responses"]
        return plane

    def _restore_in_place(self, path: str) -> None:
        """The protocol ``restore`` op: adopt a checkpoint, fresh only.

        Refused once this service has accepted work or advanced its
        clock — restore replaces the scheduler wholesale, which would
        silently discard a live run.
        """
        if (self._backlog or self.fleet._trace_loaded
                or self.fleet.sim.now > 0 or self.admitted_total):
            raise ServingError(
                "restore refused: this service already has state; "
                "restore into a fresh process instead")
        restored = ControlPlane.restore(path, autostart=False)
        self.config = restored.config
        self.fleet = restored.fleet
        self.mode = restored.mode
        self.cycles_per_second = restored.cycles_per_second
        self.max_pending = restored.max_pending
        self._backlog = restored._backlog
        self.admitted_total = restored.admitted_total
        self.busy_responses = restored.busy_responses

    # -- protocol dispatch -------------------------------------------------
    async def handle_message(self, message: dict) -> dict:
        """One request dict in, one response dict out (never raises)."""
        op = message.get("op")
        if op not in OPS:
            return error_response(str(op), f"unknown op {op!r}; "
                                           f"choose from {OPS}")
        try:
            if op == "admit":
                session = session_from_wire(message.get("session"))
                async with self._lock:
                    return self.admit(session)
            if op == "withdraw":
                async with self._lock:
                    return self.withdraw(int(message["session_id"]))
            if op == "status":
                async with self._lock:
                    return ok_response("status", **self.status_payload())
            if op == "metrics":
                async with self._lock:
                    return ok_response("metrics", **self.metrics_payload())
            if op == "snapshot":
                path = message.get("path")
                if not path:
                    raise ProtocolError("snapshot needs a 'path' field")
                async with self._lock:
                    return ok_response("snapshot",
                                       path=self.snapshot_to(str(path)))
            if op == "restore":
                path = message.get("path")
                if not path:
                    raise ProtocolError("restore needs a 'path' field")
                async with self._lock:
                    self._restore_in_place(str(path))
                    return ok_response("restore",
                                       cycle=self.fleet.sim.now)
            if op == "drain":
                until = message.get("until")
                return await self.drain(None if until is None
                                        else int(until))
            # op == "shutdown"
            self._shutdown.set()
            return ok_response("shutdown")
        except (ProtocolError, ServingError, KeyError, TypeError,
                ValueError) as error:
            return error_response(op, str(error))

    # -- asyncio server ----------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as error:
                    response = error_response("?", str(error))
                else:
                    response = await self.handle_message(message)
                writer.write(encode_message(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pacer(self) -> None:
        """Background advancement for the autostart modes."""
        loop = asyncio.get_running_loop()
        anchor_wall = loop.time()
        anchor_cycle = self.fleet.sim.now
        while not self._shutdown.is_set():
            async with self._lock:
                touched = self._backlog or self.fleet._trace_loaded
                if touched:
                    if self.mode == "realtime":
                        elapsed = loop.time() - anchor_wall
                        target = anchor_cycle + int(
                            elapsed * self.cycles_per_second)
                        if target > self.fleet.sim.now:
                            await self._advance(until=target)
                    else:
                        await self._advance(until=None)
            await asyncio.sleep(_PACER_INTERVAL)

    async def start(self, host: str = "127.0.0.1",
                    port: "int | None" = None,
                    unix_path: "str | None" = None) -> None:
        """Bind the protocol endpoints (TCP and/or Unix socket)."""
        if port is None and unix_path is None:
            raise ServingError("start() needs a TCP port, a Unix socket "
                               "path, or both")
        if unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_client, path=unix_path))
        if port is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_client, host, port))
        if self.autostart and self._pacer_task is None:
            self._pacer_task = asyncio.create_task(self._pacer())

    @property
    def tcp_port(self) -> "int | None":
        """The bound TCP port (for ``port=0`` ephemeral binds)."""
        for server in self._servers:
            for sock in server.sockets:
                if sock.family.name.startswith("AF_INET"):
                    return sock.getsockname()[1]
        return None

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`stop`)."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._pacer_task is not None:
            await self._pacer_task
            self._pacer_task = None
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []


class ServiceClient:
    """A minimal async protocol client (one request, one response)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: "int | None" = None,
                      unix_path: "str | None" = None) -> "ServiceClient":
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        elif port is not None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            raise ServingError("connect() needs a TCP port or a Unix "
                               "socket path")
        return cls(reader, writer)

    async def call(self, op: str, **fields) -> dict:
        self._writer.write(encode_message(request(op, **fields)))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServingError(f"service closed the connection mid-{op}")
        return decode_message(line)

    # Convenience wrappers, one per op.
    async def admit(self, session: TenantSession) -> dict:
        return await self.call("admit", session=session_to_wire(session))

    async def withdraw(self, session_id: int) -> dict:
        return await self.call("withdraw", session_id=session_id)

    async def status(self) -> dict:
        return await self.call("status")

    async def metrics(self) -> dict:
        return await self.call("metrics")

    async def snapshot(self, path: str) -> dict:
        return await self.call("snapshot", path=path)

    async def restore(self, path: str) -> dict:
        return await self.call("restore", path=path)

    async def drain(self, until: "int | None" = None) -> dict:
        if until is None:
            return await self.call("drain")
        return await self.call("drain", until=until)

    async def shutdown(self) -> dict:
        return await self.call("shutdown")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- command line ----------------------------------------------------------

def _build_plane(args) -> ControlPlane:
    if args.restore:
        return ControlPlane.restore(args.restore,
                                    autostart=not args.no_autostart)
    config = ServingConfig()
    if args.config:
        with open(args.config, "r", encoding="utf-8") as fh:
            config = ServingConfig.from_dict(json.load(fh))
    return ControlPlane(chips=args.chips, cores=args.cores, config=config,
                        mode=args.mode, max_pending=args.max_pending,
                        autostart=not args.no_autostart)


async def _amain(args) -> int:
    plane = _build_plane(args)
    if args.drain:
        # Headless: fold + drain to completion, no sockets. This is the
        # warm-restart leg — restore a checkpoint in a fresh process,
        # finish the run, print the canonical summary.
        response = await plane.drain()
        if args.print_summary:
            sys.stdout.write(canonical_json(response["summary"]) + "\n")
        return 0
    await plane.start(host=args.host, port=args.port,
                      unix_path=args.socket)
    bound = plane.tcp_port
    if bound is not None:
        sys.stderr.write(f"serving on {args.host}:{bound}\n")
    if args.socket:
        sys.stderr.write(f"serving on unix:{args.socket}\n")
    await plane.serve_until_shutdown()
    if args.print_summary:
        summary = summary_wire(plane.fleet.metrics.summary(
            plane.frequency_hz))
        sys.stdout.write(canonical_json(summary) + "\n")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Always-on serving control plane "
                    "(newline-delimited JSON protocol)")
    parser.add_argument("--chips", type=int, default=4)
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--config", type=str, default=None,
                        help="ServingConfig wire dict as a JSON file")
    parser.add_argument("--mode", choices=MODES, default="asap")
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--socket", type=str, default=None,
                        help="Unix socket path")
    parser.add_argument("--restore", type=str, default=None,
                        help="warm-restart from a snapshot file")
    parser.add_argument("--drain", action="store_true",
                        help="no sockets: drain to completion and exit")
    parser.add_argument("--print-summary", action="store_true",
                        help="print the canonical final summary to stdout")
    parser.add_argument("--no-autostart", action="store_true",
                        help="advance only on explicit drain requests")
    args = parser.parse_args(argv)
    if not args.drain and args.port is None and args.socket is None:
        parser.error("pass --port/--socket to serve, or --drain to run "
                     "headless")
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
