"""Newline-delimited JSON wire protocol for the serving control plane.

One request or response per line: a single JSON object in the canonical
spelling (:func:`~repro.serving.metrics.canonical_json` — sorted keys,
minimal separators) followed by ``b"\\n"``. Canonical encoding makes the
wire itself deterministic: the same request stream produces the same
response *bytes*, which is what lets the service benchmark diff a
scripted client's transcript against the batch oracle.

Requests are ``{"op": <name>, ...}`` with ``op`` drawn from :data:`OPS`;
responses are ``{"op": <echoed name>, "status": ...}`` with ``status``
one of

- ``"ok"`` — the operation happened; op-specific fields ride along
  (``summary`` for ``metrics``, ``path`` for ``snapshot``, ...).
- ``"busy"`` — admission backpressure: the pending queue is full. The
  request was **not** enqueued; ``retry_after_cycles`` hints how far
  the simulation clock must advance before retrying is worthwhile.
- ``"error"`` — the request was malformed or impossible; ``message``
  says why. The connection stays up (an error is an answer, not a
  disconnect).

Sessions cross the wire as their full field dict
(:func:`session_to_wire` / :func:`session_from_wire`), so an admitted
session is byte-identical to the one a batch trace would carry.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, asdict, fields

from repro.errors import ServingError
from repro.serving.metrics import canonical_json
from repro.serving.workload import TenantSession

#: Every operation the control plane understands.
OPS = ("admit", "withdraw", "status", "metrics", "snapshot", "restore",
       "drain", "shutdown")

#: Hard cap on one wire line — a malformed client cannot balloon the
#: server's line buffer (1 MiB fits any fleet summary by ~3 orders).
MAX_LINE_BYTES = 1 << 20

_SESSION_FIELDS = tuple(f.name for f in fields(TenantSession))
_SESSION_REQUIRED = tuple(f.name for f in fields(TenantSession)
                          if f.default is MISSING
                          and f.default_factory is MISSING)


class ProtocolError(ServingError):
    """A malformed wire message (bad JSON, bad op, bad session dict)."""


# -- framing ---------------------------------------------------------------

def encode_message(message: dict) -> bytes:
    """One wire line: canonical JSON + newline."""
    if not isinstance(message, dict):
        raise ProtocolError(f"wire message must be a dict; got {message!r}")
    return canonical_json(message).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one wire line into a message dict (fail-fast)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"wire line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte cap")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"bad wire JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"wire message must be a JSON object; got {message!r}")
    return message


# -- requests --------------------------------------------------------------

def request(op: str, **extra) -> dict:
    """A request message for ``op`` (validated against :data:`OPS`)."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
    return {"op": op, **extra}


# -- responses -------------------------------------------------------------

def ok_response(op: str, **extra) -> dict:
    return {"op": op, "status": "ok", **extra}


def busy_response(op: str, retry_after_cycles: int) -> dict:
    return {"op": op, "status": "busy",
            "retry_after_cycles": int(retry_after_cycles)}


def error_response(op: str, message: str) -> dict:
    return {"op": op, "status": "error", "message": str(message)}


# -- session marshalling ---------------------------------------------------

def session_to_wire(session: TenantSession) -> dict:
    """A session as its plain field dict (the admit payload)."""
    return asdict(session)


def session_from_wire(data: dict) -> TenantSession:
    """Rebuild a :class:`TenantSession` from an admit payload.

    Unknown keys are rejected naming them and missing required fields
    are rejected naming them — a malformed admission must fail at the
    protocol edge, not as a mid-simulation surprise.
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"session must be a dict; got {data!r}")
    unknown = sorted(set(data) - set(_SESSION_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown session fields {unknown}; "
            f"choose from {_SESSION_FIELDS}")
    missing = sorted(set(_SESSION_REQUIRED) - set(data))
    if missing:
        raise ProtocolError(f"session is missing required fields {missing}")
    try:
        return TenantSession(**data)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad session {data!r}: {error}") from None
