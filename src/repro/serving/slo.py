"""Service-level objectives and elastic (shrink/preempt) policies.

An :class:`SLOClass` is what :class:`~repro.serving.workload.TenantSession.priority`
always hinted at but the scheduler never enforced: a latency target on
admission delay plus a priority *tier* with teeth. Sessions name their
class through ``TenantSession.slo`` (drawn by the trace generator's
``slo_mix``); sessions without an explicit class fall back to a
per-priority default, so pre-SLO traces keep their historical ordering.

The enforcement half is the :class:`ElasticPolicy` family — registered
by name through the same :class:`~repro.core.registry.Registry` idiom as
admission and placement policies. When a higher-tier arrival is blocked
(or a queued one blows through its latency target), the scheduler asks
the elastic policy which lower-tier victims to *shrink* (live
:meth:`~repro.core.hypervisor.Hypervisor.resize_vnpu` onto a smaller
mesh) or *preempt* (tear down and requeue) to free the cores. The
policy plans; the scheduler executes and charges the resize/preemption
costs to the victims' timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.arch.topology import MeshShape
from repro.core.registry import Registry
from repro.errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.workload import TenantSession


@dataclass(frozen=True)
class SLOClass:
    """One service tier: a latency target plus enforcement permissions.

    ``tier`` orders classes (higher = more important); it doubles as the
    effective priority the admission policies sort by.
    ``queue_delay_target_cycles`` is the admission-delay objective the
    attainment metric scores against (``None`` = no objective, always
    attained). ``shrinkable``/``preemptible`` say what an elastic policy
    may do to a *resident* session of this class on behalf of a
    higher-tier arrival.
    """

    name: str
    tier: int
    queue_delay_target_cycles: int | None = None
    shrinkable: bool = True
    preemptible: bool = True
    #: Blocked arrivals of this class trigger elastic relief *immediately*
    #: (the preemptive-admission path). Classes without it only get
    #: relief once their queue delay has blown through the target — the
    #: queue-delay-pressure path. Squeezing victims on every blocked
    #: mid-tier arrival slows the whole fleet for tenants that would
    #: have met their (looser) target anyway.
    preemptive_admission: bool = False

    def met(self, queue_delay_cycles: int) -> bool:
        """Did a session of this class meet its admission-delay target?"""
        if self.queue_delay_target_cycles is None:
            return True
        return queue_delay_cycles <= self.queue_delay_target_cycles

    def relief_due(self, waited_cycles: int) -> bool:
        """Should a blocked arrival of this class trigger elastic relief?

        Tier 0 never squeezes anyone; preemptive-admission classes fire
        the moment they are blocked; everyone else fires when the wait
        has already blown the latency target (pressure, not privilege).
        """
        if self.tier <= 0:
            return False
        if self.preemptive_admission:
            return True
        target = self.queue_delay_target_cycles
        return target is not None and waited_cycles >= target


#: The built-in three-tier ladder. Gold pays for guaranteed placement
#: (never shrunk, never preempted, tight delay target); silver may be
#: squeezed but not evicted; best-effort is the elastic reserve.
GOLD = SLOClass("gold", tier=2, queue_delay_target_cycles=2_000_000,
                shrinkable=False, preemptible=False,
                preemptive_admission=True)
SILVER = SLOClass("silver", tier=1, queue_delay_target_cycles=40_000_000,
                  shrinkable=True, preemptible=False)
BEST_EFFORT = SLOClass("best_effort", tier=0, queue_delay_target_cycles=None,
                       shrinkable=True, preemptible=True)

_SLOS: Registry[SLOClass] = Registry("SLO class", ServingError)


def register_slo(slo: SLOClass, replace: bool = False) -> SLOClass:
    return _SLOS.register(slo, replace=replace)


def unregister_slo(name: str) -> None:
    return _SLOS.unregister(name)


def resolve_slo(name: str) -> SLOClass:
    return _SLOS.resolve(name)


def available_slos() -> tuple[str, ...]:
    return _SLOS.names()


for _builtin in (GOLD, SILVER, BEST_EFFORT):
    register_slo(_builtin)

#: Fallback class per legacy ``priority`` value (0/1/2); priorities
#: above the ladder clamp to gold.
DEFAULT_SLO_BY_PRIORITY = {0: "best_effort", 1: "silver", 2: "gold"}


def session_slo(session: "TenantSession") -> SLOClass:
    """The session's SLO class: explicit ``slo`` name, else by priority."""
    name = getattr(session, "slo", "")
    if name:
        return resolve_slo(name)
    priority = max(0, min(session.priority, max(DEFAULT_SLO_BY_PRIORITY)))
    return resolve_slo(DEFAULT_SLO_BY_PRIORITY[priority])


def effective_priority(session: "TenantSession") -> int:
    """What the priority admission policy sorts by.

    Sessions with an explicit SLO class rank by its tier; legacy
    sessions keep their raw ``priority`` value (unclamped), so pre-SLO
    traces order exactly as they always did.
    """
    if getattr(session, "slo", ""):
        return resolve_slo(session.slo).tier
    return session.priority


def shrink_shape(rows: int, cols: int) -> MeshShape | None:
    """One elastic shrink step: halve the longer mesh dimension.

    Returns ``None`` when the session is already at its 1x1 floor.
    The step is deliberately coarse — halving frees a meaningful block
    in one resize instead of nibbling a core at a time (each resize
    charges a real reconfiguration to the victim).
    """
    if rows * cols <= 1:
        return None
    if rows >= cols:
        return MeshShape(-(-rows // 2), cols)
    return MeshShape(rows, -(-cols // 2))


# -- elastic policies -------------------------------------------------------

@dataclass(frozen=True)
class ElasticVictim:
    """One resident candidate as the elastic policy sees it.

    ``key`` is the scheduler-side handle (an active-session object) that
    comes back inside the planned action; the policy only reads the
    fields. ``freeable_by_shrink`` is how many cores one shrink step
    would release (0 when the class forbids shrinking or the session is
    at the 1x1 floor); ``order`` is the scheduler-provided deterministic
    tie-break.
    """

    key: object
    tier: int
    cores: int
    freeable_by_shrink: int
    preemptible: bool
    order: tuple


@dataclass(frozen=True)
class ElasticAction:
    """One planned enforcement step: ``kind`` is "shrink" or "preempt"."""

    kind: str
    victim: ElasticVictim


def make_victim(active) -> ElasticVictim | None:
    """The policy's view of one resident session, or ``None`` when its
    class forbids both shrinking and preemption.

    Shared by both schedulers so eligibility and the freeable-cores
    arithmetic cannot drift between them. ``active`` is any object with
    ``slo``/``rows``/``cols``/``cores``/``admit_cycle``/``session``.
    """
    if not (active.slo.shrinkable or active.slo.preemptible):
        return None
    smaller = (shrink_shape(active.rows, active.cols)
               if active.slo.shrinkable else None)
    freeable = (active.cores - smaller.node_count) if smaller else 0
    return ElasticVictim(
        key=active,
        tier=active.slo.tier,
        cores=active.cores,
        freeable_by_shrink=freeable,
        preemptible=active.slo.preemptible,
        order=(active.admit_cycle, active.session.session_id),
    )


def reprice(active, new_total: int, charge: int, now: int) -> None:
    """Re-project a resized session's departure (shared formula).

    The un-served fraction of the old projection is re-priced at the new
    placement's full-service estimate, plus the resize charge itself.
    The fraction is clamped to 1.0: migration charges stretch
    ``expected_depart`` without touching ``service_total``, so a victim
    migrated and *then* resized can show ``remaining > service_total``
    — without the clamp the resize would re-bill the already-charged
    migration at the new placement's rate and over-project the
    departure.
    """
    remaining = max(0, active.expected_depart - now)
    fraction = (min(1.0, remaining / active.service_total)
                if active.service_total else 0.0)
    active.service_total = new_total
    active.expected_depart = now + max(1, int(fraction * new_total) + charge)


def resize_memory_bytes(session, core_count: int) -> int:
    """Guest memory for a session resized to ``core_count`` cores.

    A resize back to (or beyond) the requested mesh restores the
    *original* request exactly — per-core rescaling floor-divides, and a
    grow-back must not hand the tenant less memory than it asked for.
    """
    if core_count >= session.core_count:
        return session.memory_bytes
    per_core = max(1, session.memory_bytes // session.core_count)
    return max(1, per_core * core_count)


@runtime_checkable
class ElasticPolicy(Protocol):
    """Plans which victims to squeeze for a blocked higher-tier arrival."""

    name: str

    def plan(self, needed_cores: int,
             victims: "list[ElasticVictim]") -> "list[ElasticAction]":
        """Actions expected to free ``needed_cores``, or ``[]`` if the
        victims cannot cover it (partial squeezes would charge real
        resize costs without unblocking anyone)."""
        ...


def _shrink_plan(needed: int, victims: list[ElasticVictim]):
    """Greedy shrink plan: lowest tier first, biggest release first."""
    actions, freed = [], 0
    for victim in sorted(victims,
                         key=lambda v: (v.tier, -v.freeable_by_shrink,
                                        v.order)):
        if freed >= needed:
            break
        if victim.freeable_by_shrink <= 0:
            continue
        actions.append(ElasticAction("shrink", victim))
        freed += victim.freeable_by_shrink
    return actions, freed


def _preempt_plan(needed: int, victims: list[ElasticVictim]):
    """Greedy preemption plan: lowest tier first, biggest release first."""
    actions, freed = [], 0
    for victim in sorted(victims, key=lambda v: (v.tier, -v.cores, v.order)):
        if freed >= needed:
            break
        if not victim.preemptible:
            continue
        actions.append(ElasticAction("preempt", victim))
        freed += victim.cores
    return actions, freed


class ShrinkPolicy:
    """Shrink-only enforcement: squeeze, never evict."""

    name = "shrink"

    def plan(self, needed_cores, victims):
        actions, freed = _shrink_plan(needed_cores, victims)
        return actions if freed >= needed_cores else []


class PreemptPolicy:
    """Preemption-only enforcement: evict and requeue best-effort."""

    name = "preempt"

    def plan(self, needed_cores, victims):
        actions, freed = _preempt_plan(needed_cores, victims)
        return actions if freed >= needed_cores else []


class ShrinkThenPreemptPolicy:
    """Shrink first; escalate to preemption for the shortfall.

    When shrinking alone cannot cover the need (a near-chip-sized
    arrival must displace whole tenants, not nibble at them),
    preemptions are added bottom-tier-up — and a preemption *replaces*
    any planned shrink of the same victim, since eviction frees all of
    its cores.
    """

    name = "shrink_then_preempt"

    def plan(self, needed_cores, victims):
        shrinks, freed = _shrink_plan(needed_cores, victims)
        if freed >= needed_cores:
            return shrinks
        planned_shrink = {id(a.victim): a.victim for a in shrinks}
        covered = freed
        preempts = []
        for victim in sorted(victims,
                             key=lambda v: (v.tier, -v.cores, v.order)):
            if covered >= needed_cores:
                break
            if not victim.preemptible:
                continue
            gain = victim.cores
            if id(victim) in planned_shrink:
                gain -= victim.freeable_by_shrink  # shrink is replaced
            preempts.append(ElasticAction("preempt", victim))
            covered += gain
        if covered < needed_cores:
            return []
        preempted = {id(a.victim) for a in preempts}
        kept = [a for a in shrinks if id(a.victim) not in preempted]
        return kept + preempts


_ELASTICS: Registry[ElasticPolicy] = Registry("elastic policy", ServingError)


def register_elastic(policy: ElasticPolicy,
                     replace: bool = False) -> ElasticPolicy:
    return _ELASTICS.register(policy, replace=replace)


def unregister_elastic(name: str) -> None:
    return _ELASTICS.unregister(name)


def resolve_elastic(name: str) -> ElasticPolicy:
    return _ELASTICS.resolve(name)


def available_elastics() -> tuple[str, ...]:
    return _ELASTICS.names()


for _builtin_policy in (ShrinkPolicy(), PreemptPolicy(),
                        ShrinkThenPreemptPolicy()):
    register_elastic(_builtin_policy)


def coerce_elastic(policy: "ElasticPolicy | str | None") -> ElasticPolicy | None:
    """Resolve an elastic-policy name, validate an instance, pass None.

    Unified on :meth:`repro.core.registry.Registry.coerce` with the
    other coerce helpers: classes and arbitrary objects are rejected
    naming the offending value and the registered choices.
    """
    return _ELASTICS.coerce(policy, instance_of=ElasticPolicy,
                            allow_none=True)
