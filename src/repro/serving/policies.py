"""Admission policies: which queued tenant gets the next free cores.

A policy inspects the pending queue and the currently free core count and
nominates one session to try next (or ``None`` to leave everything
queued). The scheduler owns the actual placement attempt — a nominated
session can still fail topology mapping, in which case it is parked until
the next departure changes the free set.

Policies are resolved by name through a
:class:`repro.core.registry.Registry` (the same helper behind the
mapping-strategy family), so serving experiments can plug in new
disciplines without touching the scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.registry import Registry
from repro.errors import ServingError
from repro.serving.slo import effective_priority

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.scheduler import PendingSession


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Chooses the next pending session to attempt admitting."""

    name: str

    def select(self, pending: "list[PendingSession]",
               free_cores: int) -> "PendingSession | None":
        """Pick one admissible entry of ``pending`` or ``None``.

        Entries arrive in arrival order; ``entry.blocked`` marks sessions
        whose last placement attempt failed on the current free set.
        """
        ...


def _admissible(pending, free_cores):
    return [entry for entry in pending
            if not entry.blocked and entry.session.core_count <= free_cores]


class FCFSPolicy:
    """Strict arrival order with head-of-line blocking.

    The queue head waits for enough free cores even while smaller
    requests behind it could run — the fairness-first baseline.
    """

    name = "fcfs"

    def select(self, pending, free_cores):
        for entry in pending:
            if entry.blocked:
                continue
            if entry.session.core_count <= free_cores:
                return entry
            return None  # head must go first; nobody may overtake it
        return None


class BestFitPolicy:
    """Largest admissible request first (minimum leftover free cores).

    Packs the chip tightly under fragmentation; ties break toward the
    earliest arrival so small tenants cannot be starved forever by
    same-sized newcomers.
    """

    name = "best_fit"

    def select(self, pending, free_cores):
        fits = _admissible(pending, free_cores)
        if not fits:
            return None
        return min(fits, key=lambda e: (free_cores - e.session.core_count,
                                        e.session.arrival_cycle,
                                        e.session.session_id))


class PriorityPolicy:
    """Highest tenant priority first, FCFS within a priority class.

    Priority holds the line *while queued*, not just at selection time:
    the highest-priority waiter blocks lower classes from overtaking it
    even when it does not fit the current free cores yet (the starvation
    case the original fits-only comparison mishandled — a large
    high-priority request could wait forever behind a stream of small
    low-priority arrivals). Entries whose last placement attempt failed
    on this free set (``blocked``) are skipped, exactly like FCFS skips
    its blocked head — retrying them would fail identically, and letting
    them block the line would deadlock the queue.

    Sessions carrying an explicit SLO class rank by its tier
    (:func:`~repro.serving.slo.effective_priority`); legacy sessions
    rank by their raw ``priority`` value as always.
    """

    name = "priority"

    def select(self, pending, free_cores):
        # Only the top-ranked unblocked entry matters (blocked ones are
        # skipped unconditionally), so one O(n) min beats sorting the
        # whole queue on every admit-loop iteration.
        top = min((e for e in pending if not e.blocked),
                  key=lambda e: (-effective_priority(e.session),
                                 e.session.arrival_cycle,
                                 e.session.session_id),
                  default=None)
        if top is not None and top.session.core_count <= free_cores:
            return top
        return None  # the top-priority waiter must go first


_REGISTRY: Registry[AdmissionPolicy] = Registry("admission policy",
                                                ServingError)


def register_policy(policy: AdmissionPolicy,
                    replace: bool = False) -> AdmissionPolicy:
    return _REGISTRY.register(policy, replace=replace)


def unregister_policy(name: str) -> None:
    return _REGISTRY.unregister(name)


def resolve_policy(name: str) -> AdmissionPolicy:
    return _REGISTRY.resolve(name)


def coerce_policy(policy: "AdmissionPolicy | str") -> AdmissionPolicy:
    """Resolve a policy name, or validate an instance.

    One of the four coerce helpers unified on
    :meth:`repro.core.registry.Registry.coerce`: unknown names and
    non-:class:`AdmissionPolicy` values (including policy *classes*)
    raise :class:`~repro.errors.ServingError` naming the offending
    value and the registered choices.
    """
    return _REGISTRY.coerce(policy, instance_of=AdmissionPolicy)


def available_policies() -> tuple[str, ...]:
    return _REGISTRY.names()


for _builtin in (FCFSPolicy(), BestFitPolicy(), PriorityPolicy()):
    register_policy(_builtin)
