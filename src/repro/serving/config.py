"""Declarative, wire-serializable serving configuration.

:class:`ServingConfig` consolidates the scheduler constructors' kwarg
soup — admission policy, cross-chip placement, mapping strategy, defrag,
cost-model tier, elastic enforcement, fault schedule and evacuation
policy — into one frozen dataclass that validates fail-fast on
construction (every field runs through the family's coerce helper
before anything is built) and round-trips through plain JSON-able dicts
(:meth:`ServingConfig.to_dict` / :meth:`ServingConfig.from_dict`).

This is the object the control plane's wire protocol serializes: a
config built from registered names crosses a socket or a checkpoint
file as ``cfg.to_dict()`` and reconstructs equal on the other side.
Policy *instances* are accepted too (they serialize by their registered
``name``; ad-hoc unregistered instances are refused at ``to_dict`` —
an object with local state cannot cross a wire by name).

Both schedulers accept ``config=``::

    cfg = ServingConfig(policy="priority", elastic="shrink_then_preempt")
    fleet = FleetScheduler.homogeneous(4, cores=16, config=cfg)

Explicitly passed kwargs override the config (the thin pass-through
that keeps every existing construction path byte-identical), and
:meth:`FleetScheduler.restore` forwards ``config=`` so a warm restart
names its policies the same way the original construction did.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.strategies import resolve_strategy
from repro.cost import CostModel, coerce_cost_model
from repro.errors import ServingError
from repro.serving.faults import (
    FailureEvent,
    FailureSchedule,
    coerce_evacuation,
)
from repro.serving.fleet import (
    DefragPolicy,
    PlacementPolicy,
    coerce_placement,
)
from repro.serving.policies import AdmissionPolicy, coerce_policy
from repro.serving.slo import ElasticPolicy, coerce_elastic

#: The wire schema: every key ``to_dict`` emits and ``from_dict``
#: accepts, in field order.
CONFIG_KEYS = ("policy", "placement", "strategy", "defrag", "cost_model",
               "elastic", "faults", "evacuation")


def _wire_name(kind: str, value) -> str:
    """The registry name a policy-ish value serializes under."""
    if isinstance(value, str):
        return str(value)
    name = getattr(value, "name", "")
    if not name or not isinstance(name, str):
        raise ServingError(
            f"cannot serialize {kind} {value!r} to a wire config; only "
            f"registered names (or instances carrying one) cross the wire")
    return name


@dataclass(frozen=True)
class ServingConfig:
    """One declarative bundle of every scheduler configuration knob.

    Fields mirror :class:`~repro.serving.fleet.FleetScheduler` kwargs
    exactly; :class:`~repro.serving.scheduler.ClusterScheduler` uses
    the single-chip subset (``policy``/``strategy``/``cost_model``/
    ``elastic``) and ignores the fleet-only fields. Construction is
    fail-fast: every field is validated through its family's coerce
    helper, so a typo'd policy name raises here — before a fleet, a
    socket or a checkpoint ever sees it — naming the offending value
    and the registered choices.
    """

    policy: "AdmissionPolicy | str" = "fcfs"
    placement: "PlacementPolicy | str" = "least_loaded"
    strategy: "str | None" = None
    defrag: "DefragPolicy | None" = None
    cost_model: "CostModel | str" = "analytic"
    elastic: "ElasticPolicy | str | None" = None
    faults: "FailureSchedule | None" = None
    evacuation: str = "shrink_to_fit"

    def __post_init__(self) -> None:
        coerce_policy(self.policy)
        coerce_placement(self.placement)
        if self.strategy is not None:
            resolve_strategy(self.strategy)
        if self.defrag is not None and not isinstance(self.defrag,
                                                      DefragPolicy):
            raise ServingError(
                f"defrag must be a DefragPolicy or None; got "
                f"{self.defrag!r}")
        coerce_cost_model(self.cost_model)
        coerce_elastic(self.elastic)
        if self.faults is not None and not isinstance(self.faults,
                                                      FailureSchedule):
            raise ServingError(
                f"faults must be a FailureSchedule or None; got "
                f"{self.faults!r}")
        coerce_evacuation(self.evacuation)

    # -- scheduler plumbing -------------------------------------------------
    def fleet_kwargs(self) -> dict:
        """The :class:`FleetScheduler` constructor kwargs this names."""
        return {key: getattr(self, key) for key in CONFIG_KEYS}

    def cluster_kwargs(self) -> dict:
        """The single-chip :class:`ClusterScheduler` subset."""
        return {"policy": self.policy, "strategy": self.strategy,
                "cost_model": self.cost_model, "elastic": self.elastic}

    # -- wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-able dict naming every knob by its registry name.

        Pluggable components serialize as names (instances by their
        registered ``name``; a runtime cost-model instance serializes
        as its *tier*, not its caches), :class:`DefragPolicy` and
        :class:`FailureSchedule` as nested field dicts. The result
        feeds :meth:`from_dict` and equals the original config when it
        was built from names — the wire round-trip contract.
        """
        return {
            "policy": _wire_name("admission policy", self.policy),
            "placement": _wire_name("placement policy", self.placement),
            "strategy": self.strategy,
            "defrag": None if self.defrag is None else {
                "fragmentation_threshold":
                    self.defrag.fragmentation_threshold,
                "max_migrations_per_trigger":
                    self.defrag.max_migrations_per_trigger,
            },
            "cost_model": _wire_name("cost model tier", self.cost_model),
            "elastic": (None if self.elastic is None
                        else _wire_name("elastic policy", self.elastic)),
            "faults": None if self.faults is None else [
                {
                    "cycle": event.cycle,
                    "chip_index": event.chip_index,
                    "kind": event.kind,
                    "duration_cycles": event.duration_cycles,
                    "link_index": event.link_index,
                }
                for event in self.faults.events
            ],
            "evacuation": str(self.evacuation),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingConfig":
        """Rebuild a config from :meth:`to_dict` output (fail-fast).

        Unknown keys are rejected naming them — a misspelled knob must
        not silently fall back to a default on the far side of a wire.
        Missing keys keep their defaults, so partial configs are valid.
        """
        if not isinstance(data, dict):
            raise ServingError(
                f"serving config must be a dict; got {data!r}")
        unknown = sorted(set(data) - set(CONFIG_KEYS))
        if unknown:
            raise ServingError(
                f"unknown serving config keys {unknown}; "
                f"choose from {CONFIG_KEYS}")
        kwargs = {key: data[key] for key in CONFIG_KEYS if key in data}
        if kwargs.get("defrag") is not None:
            try:
                kwargs["defrag"] = DefragPolicy(**kwargs["defrag"])
            except TypeError as error:
                raise ServingError(
                    f"bad defrag spec {data['defrag']!r}: {error}") from None
        if kwargs.get("faults") is not None:
            try:
                kwargs["faults"] = FailureSchedule(tuple(
                    FailureEvent(**event) for event in kwargs["faults"]))
            except TypeError as error:
                raise ServingError(
                    f"bad faults spec {data['faults']!r}: {error}") from None
        return cls(**kwargs)


#: Field-name tuple kept in lockstep with the dataclass (a drift here
#: would silently drop a knob from the wire format).
assert CONFIG_KEYS == tuple(f.name for f in fields(ServingConfig))
