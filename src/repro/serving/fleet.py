"""Multi-chip fleet serving with live vNPU migration.

:class:`FleetScheduler` coordinates N chips — each with its own
:class:`~repro.core.hypervisor.Hypervisor` and per-chip state — on one
shared simulated clock (every :class:`~repro.arch.chip.Chip` is built on
the same :class:`~repro.sim.engine.Simulator`). Arrivals are admitted by
the same pluggable :class:`~repro.serving.policies.AdmissionPolicy`
family the single-chip scheduler uses; *which chip* hosts an admitted
session is decided by a :class:`PlacementPolicy`, registered by name
through the same registry idiom:

- ``least_loaded`` — the chip with the most free cores;
- ``best_fit`` — the chip whose trial placement has the smallest
  topology-mapping distance (probes Algorithm 1 per chip; the mapper's
  LRU cache keeps repeat probes cheap);
- ``power_of_two`` — classic power-of-two-choices: two chips sampled by
  a per-session seeded draw, the less loaded one first.

When an arrival is blocked and a chip's fragmentation ratio crosses the
configured threshold, the optional :class:`DefragPolicy` triggers **live
migration** (:meth:`~repro.core.hypervisor.Hypervisor.migrate_vnpu`):
resident tenants are re-placed — onto an emptier chip or compacted in
place — their guest memory re-mapped onto the destination buddy
allocator and routing tables rebuilt, with the migration cost (data
movement + Fig-11 reconfiguration) charged to the migrated session's
timeline. The fleet converts fragmentation into admitted sessions.

The fleet also survives infrastructure faults: a
:class:`~repro.serving.faults.FailureSchedule` injected at ``submit``
replays chip/link/HBM failures on the shared clock. A failing chip is
drained through the configured evacuation policy (``evacuate`` /
``shrink_to_fit`` / ``kill_requeue``) — gold tier first, live
migration onto healthy survivors where possible, shrink-to-fit via
``resize_vnpu`` when the full mesh fits nowhere, fail-stop kill +
requeue for the rest — and every placement decision honors
:attr:`FleetChip.healthy` until the recovery event lands.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, replace

from repro.arch.chip import Chip
from repro.arch.config import SoCConfig, sim_config
from repro.arch.topology import Topology
from repro.core.hypervisor import Hypervisor
from repro.core.registry import Registry
from repro.core.strategies import resolve_strategy
from repro.core.vnpu import VNpuSpec
from repro.cost import CostModel, coerce_cost_model
from repro.errors import AllocationError, ServingError
from repro.serving.faults import (
    FailureEvent,
    FailureSchedule,
    coerce_evacuation,
)
from repro.serving.metrics import (
    ClusterSample,
    FleetMetrics,
    FleetSample,
    SessionRecord,
    fragmentation_ratio,
)
from repro.serving.policies import AdmissionPolicy
from repro.serving.scheduler import (
    PendingSession,
    coerce_policy,
    drive_simulation,
    requeue_in_arrival_order,
)
from repro.serving.slo import (
    ElasticAction,
    ElasticPolicy,
    ElasticVictim,
    SLOClass,
    coerce_elastic,
    make_victim,
    reprice,
    resize_memory_bytes,
    session_slo,
    shrink_shape,
)
from repro.serving.workload import TenantSession
from repro.sim import Simulator


@dataclass
class FleetChip:
    """One chip of the fleet: its hypervisor plus derived state."""

    index: int
    chip: Chip
    hypervisor: Hypervisor

    @property
    def healthy(self) -> bool:
        """False while the chip is inside an injected fault outage.

        Every placement policy honors this: an unhealthy chip is never
        ranked, so no new session lands on it until recovery.
        """
        return self.hypervisor.healthy

    def free_cores(self) -> int:
        return self.hypervisor.free_core_count()

    def utilization(self) -> float:
        return self.hypervisor.core_utilization()

    def fragmentation(self) -> float:
        return fragmentation_ratio(self.chip.topology,
                                   self.hypervisor.allocated_cores)


# -- cross-chip placement policies -----------------------------------------

class PlacementPolicy:
    """Orders the fleet's chips for one session's placement attempt.

    ``rank`` returns the chips to try, best first; chips without enough
    free cores — and chips inside a fault outage (``not healthy``) —
    are excluded. An empty ranking parks the session until a departure
    (or migration, or recovery) changes some chip's free set.
    """

    name: str

    def rank(self, chips: "list[FleetChip]",
             session: TenantSession) -> "list[FleetChip]":
        raise NotImplementedError


class LeastLoadedPlacement(PlacementPolicy):
    """Most free cores first — the load-balancing baseline."""

    name = "least_loaded"

    def rank(self, chips, session):
        fits = [c for c in chips
                if c.healthy and session.core_count <= c.free_cores()]
        return sorted(fits, key=lambda c: (-c.free_cores(), c.index))


class BestFitPlacement(PlacementPolicy):
    """Smallest trial mapping distance across chips (then tightest fit).

    Probes each candidate chip with the similar-topology mapper; a chip
    whose probe finds no connected placement is excluded (the real
    placement would fail the same way). Probe results are pure functions
    of (request structure, free-core set), so the per-chip mapping cache
    absorbs the repeat probes churn produces. The probe inherits the
    mapper's candidate-enumeration cost: on large chips (36+ cores) with
    heavily shattered free sets, ranking pays Algorithm 1's worst case
    per chip — prefer ``least_loaded`` for big-chip fleets where probe
    cost matters more than placement quality.
    """

    name = "best_fit"

    def rank(self, chips, session):
        request = Topology.mesh2d(session.rows, session.cols,
                                  name="placement-probe")
        scored = []
        for fleet_chip in chips:
            if not fleet_chip.healthy:
                continue
            if session.core_count > fleet_chip.free_cores():
                continue
            mapper = fleet_chip.hypervisor.mapper
            try:
                trial = mapper.map_similar(
                    request, fleet_chip.hypervisor.allocated_cores)
            except AllocationError:
                continue
            leftover = fleet_chip.free_cores() - session.core_count
            scored.append((trial.distance, leftover, fleet_chip.index,
                           fleet_chip))
        return [entry[-1] for entry in sorted(scored,
                                              key=lambda e: e[:3])]


class PowerOfTwoPlacement(PlacementPolicy):
    """Power-of-two-choices: sample two chips, prefer the less loaded.

    The draw is seeded per session (from the policy seed and the session
    ID), not from a shared stream, so rankings are deterministic
    regardless of how many times or in what order sessions are
    (re-)ranked.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def rank(self, chips, session):
        fits = [c for c in chips
                if c.healthy and session.core_count <= c.free_cores()]
        if len(fits) <= 2:
            return sorted(fits, key=lambda c: (-c.free_cores(), c.index))
        rng = random.Random(self.seed * 1_000_003 + session.session_id)
        pair = rng.sample(fits, 2)
        return sorted(pair, key=lambda c: (-c.free_cores(), c.index))


_PLACEMENTS: Registry[PlacementPolicy] = Registry("placement policy",
                                                  ServingError)


def register_placement(policy: PlacementPolicy,
                       replace: bool = False) -> PlacementPolicy:
    return _PLACEMENTS.register(policy, replace=replace)


def unregister_placement(name: str) -> None:
    return _PLACEMENTS.unregister(name)


def resolve_placement(name: str) -> PlacementPolicy:
    return _PLACEMENTS.resolve(name)


def available_placements() -> tuple[str, ...]:
    return _PLACEMENTS.names()


def coerce_placement(placement: "PlacementPolicy | str") -> PlacementPolicy:
    """Resolve a placement name, or validate an instance.

    Unified on :meth:`repro.core.registry.Registry.coerce`: unknown
    names and non-:class:`PlacementPolicy` objects raise
    :class:`~repro.errors.ServingError` naming the offending value and
    the registered choices, like the other coerce helpers.
    """
    return _PLACEMENTS.coerce(placement, instance_of=PlacementPolicy)


for _builtin in (LeastLoadedPlacement(), BestFitPlacement(),
                 PowerOfTwoPlacement()):
    register_placement(_builtin)


# -- defragmentation -------------------------------------------------------

@dataclass(frozen=True)
class DefragPolicy:
    """When and how hard to defragment a blocked fleet.

    Migration triggers only when *both* hold: a queued arrival just
    failed placement everywhere, and some chip's fragmentation ratio
    exceeds ``fragmentation_threshold``. At most
    ``max_migrations_per_trigger`` tenants move per trigger — migration
    charges real cycles to the migrated sessions, so the policy is
    deliberately stingy.
    """

    fragmentation_threshold: float = 0.25
    max_migrations_per_trigger: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.fragmentation_threshold <= 1.0:
            raise ServingError(
                f"fragmentation threshold must be in [0, 1], got "
                f"{self.fragmentation_threshold}")
        if self.max_migrations_per_trigger < 1:
            raise ServingError("defrag needs at least one migration per "
                               "trigger")


@dataclass
class ActiveFleetSession:
    session: TenantSession
    chip_index: int
    vmid: int
    admit_cycle: int
    strategy: str
    mapping_distance: float
    mapping_connected: bool
    slo: SLOClass
    #: Mesh the session currently *holds* (differs from the request
    #: while elastically shrunk).
    rows: int
    cols: int
    #: Full-service estimate on the current placement and the absolute
    #: cycle the session is currently projected to depart at. Migration
    #: and resize charges push the projection out; the lifetime process
    #: keeps sleeping until it stops receding.
    service_total: int
    expected_depart: int
    migrations: int = 0
    resizes: int = 0
    preemptions: int = 0
    #: Fault-tolerance history: live evacuations off failing chips this
    #: session survived, fail-stop kills it was requeued by, and the
    #: service cycles those kills discarded.
    evacuations: int = 0
    kills: int = 0
    lost_service_cycles: int = 0
    #: Set when the session is elastically evicted (or fault-killed):
    #: the sleeping lifetime process must vanish instead of departing.
    preempted: bool = False
    #: Absolute cycle the lifetime process's pending timeout fires at.
    #: ``expected_depart`` can *recede* (an elastic grow-back shortens
    #: the projection) but an already-scheduled sleep cannot be woken
    #: early, so the in-flight wake target is behavioral state: a
    #: restored run must resume sleeping toward the same cycle or it
    #: departs the session earlier than the original would have.
    wake_cycle: int = 0

    @property
    def cores(self) -> int:
        return self.rows * self.cols

    @property
    def shrunk(self) -> bool:
        return self.cores < self.session.core_count

    def sized_session(self) -> TenantSession:
        """The session re-shaped to its *current* allocation, for the
        cost model (which prices by the held mesh, not the request)."""
        if not self.shrunk:
            return self.session
        return replace(self.session, rows=self.rows, cols=self.cols,
                       memory_bytes=resize_memory_bytes(self.session,
                                                        self.cores))


#: Scheduler-knob defaults, used to tell "explicitly passed" from
#: "left at default" when merging kwargs over a ``config=``.
_FLEET_DEFAULTS: dict = {
    "policy": "fcfs",
    "placement": "least_loaded",
    "strategy": None,
    "defrag": None,
    "cost_model": "analytic",
    "elastic": None,
    "faults": None,
    "evacuation": "shrink_to_fit",
}


class FleetScheduler:
    """Serves one tenant trace across N chips on a shared clock."""

    def __init__(self, configs: "list[SoCConfig]",
                 policy: "AdmissionPolicy | str" = "fcfs",
                 placement: "PlacementPolicy | str" = "least_loaded",
                 strategy: str | None = None,
                 defrag: DefragPolicy | None = None,
                 sim: Simulator | None = None,
                 cost_model: "CostModel | str" = "analytic",
                 elastic: "ElasticPolicy | str | None" = None,
                 faults: FailureSchedule | None = None,
                 evacuation: str = "shrink_to_fit",
                 config=None) -> None:
        if config is not None:
            # A ServingConfig provides the baseline; any kwarg the
            # caller explicitly moved off its default wins over it, so
            # every pre-existing construction path is untouched.
            merged = dict(config.fleet_kwargs())
            passed = {"policy": policy, "placement": placement,
                      "strategy": strategy, "defrag": defrag,
                      "cost_model": cost_model, "elastic": elastic,
                      "faults": faults, "evacuation": evacuation}
            for key, value in passed.items():
                if value != _FLEET_DEFAULTS[key]:
                    merged[key] = value
            policy = merged["policy"]
            placement = merged["placement"]
            strategy = merged["strategy"]
            defrag = merged["defrag"]
            cost_model = merged["cost_model"]
            elastic = merged["elastic"]
            faults = merged["faults"]
            evacuation = merged["evacuation"]
        if not configs:
            raise ServingError("fleet needs at least one chip config")
        self.sim = sim or Simulator()
        self.chips: list[FleetChip] = []
        for index, config in enumerate(configs):
            chip = Chip(config, sim=self.sim)
            self.chips.append(FleetChip(index, chip, Hypervisor(chip)))
        self.policy = coerce_policy(policy)
        self.placement = coerce_placement(placement)
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast, like the hypervisor
        self.strategy = strategy
        self.defrag = defrag
        #: SLO enforcement: None = static behavior (queue and wait).
        self.elastic = coerce_elastic(elastic)
        #: Fault injection: events replayed on the shared clock, with
        #: ``evacuation`` governing how a failing chip is drained.
        #: Validated fail-fast (kerf-style) before anything runs.
        self.evacuation = coerce_evacuation(evacuation)
        if faults is not None:
            faults.validate(len(self.chips))
        self.faults = faults
        self.metrics = FleetMetrics()
        self.metrics.faults_enabled = faults is not None
        #: The fidelity tier pricing every session's residency.
        self.cost_model = coerce_cost_model(cost_model)
        self._pending: list[PendingSession] = []
        #: (chip index, vmid) -> active session.
        self._active: dict[tuple[int, int], ActiveFleetSession] = {}
        self._trace_loaded = False
        #: Submitted trace + replay cursor, kept so ``snapshot`` can
        #: capture the arrivals not yet injected.
        self._trace: list[TenantSession] = []
        self._arrival_index = 0

    @classmethod
    def homogeneous(cls, chips: int, cores: int = 36,
                    **kwargs) -> "FleetScheduler":
        """A fleet of ``chips`` identical SIM-configured chips."""
        if chips < 1:
            raise ServingError(f"fleet needs at least one chip, got {chips}")
        return cls([sim_config(cores) for _ in range(chips)], **kwargs)

    # -- queries -----------------------------------------------------------
    @property
    def chip_count(self) -> int:
        return len(self.chips)

    @property
    def pending_sessions(self) -> "tuple[PendingSession, ...]":
        """The waiting queue, in queue order (read-only view)."""
        return tuple(self._pending)

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def core_count(self) -> int:
        return sum(fc.chip.core_count for fc in self.chips)

    def free_core_count(self) -> int:
        return sum(fc.free_cores() for fc in self.chips)

    @property
    def estimator(self) -> CostModel:
        """Historical name for the pricing engine (now any cost tier)."""
        return self.cost_model

    @estimator.setter
    def estimator(self, model: "CostModel | str") -> None:
        self.cost_model = coerce_cost_model(model)

    def mapper_stats(self) -> dict[str, int | float]:
        """Fleet-wide mapper counters (per-chip ``cache_stats`` summed).

        Every placement probe and provision lands on some chip's mapper;
        the sum is the fleet's mapping workload: cache hits/misses,
        candidates considered/pruned/refined, objective evaluations and
        free-set rebuilds vs incremental updates.
        """
        total: dict[str, int | float] = {}
        for fleet_chip in self.chips:
            for key, value in fleet_chip.hypervisor.mapper.cache_stats().items():
                if key == "hit_rate":
                    continue
                total[key] = total.get(key, 0) + value
        lookups = total.get("hits", 0) + total.get("misses", 0)
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        return total

    # -- public API --------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        self.cost_model.register_model(name, builder)

    def submit(self, trace: "list[TenantSession]") -> None:
        """Queue a trace; arrivals are replayed at their recorded cycles."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        largest = max(fc.chip.core_count for fc in self.chips)
        largest_memory = max(fc.hypervisor.guest_memory_capacity
                             for fc in self.chips)
        ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in self.cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}"
                )
            if session.core_count > largest:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; largest fleet chip has "
                    f"{largest}"
                )
            if session.memory_bytes > largest_memory:
                # Mirror the core check: a request no empty chip can
                # ever satisfy must be refused up front — parked behind
                # a busy fleet it would otherwise wait forever.
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.memory_bytes} guest bytes; largest fleet "
                    f"chip can map {largest_memory}"
                )
        self._trace = ordered
        self._arrival_index = 0
        self.sim.process(self._arrivals(ordered), name="fleet-arrivals")
        if self.faults is not None and len(self.faults):
            self.sim.process(self._failure_timeline(), name="fleet-faults")
        self._trace_loaded = True

    def begin_stream(self) -> None:
        """Open the scheduler for incremental ``enqueue`` admissions.

        The streaming counterpart of :meth:`submit`: no pre-materialized
        trace, sessions are pushed one at a time by an external driver
        (a shard coordinator, or eventually a live control plane). The
        fault timeline, if any, is scheduled exactly as ``submit`` does.
        """
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        if self.faults is not None and len(self.faults):
            self.sim.process(self._failure_timeline(), name="fleet-faults")
        self._trace_loaded = True

    def enqueue(self, session: TenantSession, *, preemptions: int = 0,
                evacuations: int = 0, kills: int = 0,
                lost_service_cycles: int = 0) -> None:
        """Admit one session into the pending queue *now*.

        Validates the same static caps ``submit`` does, inserts in
        arrival order (so a re-dealt session slots ahead of younger
        queue-mates, exactly where the monolithic scheduler would hold
        it), and runs the admission loop. The counter kwargs carry a
        session's accumulated preemption/evacuation history across a
        cross-shard hand-off.
        """
        if not self._trace_loaded:
            raise ServingError("begin_stream() or submit() before enqueue()")
        if session.model not in self.cost_model.models:
            raise ServingError(
                f"session {session.session_id} wants unknown model "
                f"{session.model!r}")
        largest = max(fc.chip.core_count for fc in self.chips)
        if session.core_count > largest:
            raise ServingError(
                f"session {session.session_id} wants "
                f"{session.core_count} cores; largest fleet chip has "
                f"{largest}")
        largest_memory = max(fc.hypervisor.guest_memory_capacity
                             for fc in self.chips)
        if session.memory_bytes > largest_memory:
            raise ServingError(
                f"session {session.session_id} wants "
                f"{session.memory_bytes} guest bytes; largest fleet "
                f"chip can map {largest_memory}")
        requeue_in_arrival_order(
            self._pending, session, preemptions,
            evacuations=evacuations, kills=kills,
            lost_service_cycles=lost_service_cycles)
        self._admit_loop()
        self._sample()

    def withdraw(self, session_id: int) -> PendingSession:
        """Remove a still-pending session (a spill leaving this shard)."""
        for entry in self._pending:
            if entry.session.session_id == session_id:
                self._pending.remove(entry)
                return entry
        raise ServingError(f"session {session_id} is not pending here")

    def run(self, until: int | None = None,
            limit: int | None = None) -> int:
        """Drive the simulation (``limit`` as in ClusterScheduler.run)."""
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        return drive_simulation(self.sim, until, limit)

    def serve(self, trace: "list[TenantSession]",
              limit: int | None = None) -> FleetMetrics:
        """Convenience: submit + run + return the metrics."""
        self.submit(trace)
        self.run(limit=limit)
        return self.metrics

    # -- checkpoint --------------------------------------------------------
    def snapshot(self, *, detach: bool = True) -> dict:
        """Picklable checkpoint of the whole scheduler's logical state.

        Valid between ``run`` calls (the simulator parked at a cycle, no
        event mid-dispatch). Captures chip residents (via
        :meth:`Hypervisor.snapshot_state`), the pending queue with its
        preemption history, active sessions, accumulated metrics, the
        fault schedule, and the arrivals not yet injected — everything
        :meth:`restore` needs to continue the run in a fresh process.
        By default the dict is detached via a pickle round-trip, so it
        doubles as the warm-restart wire format (and proves its own
        picklability). Callers that immediately ``pickle.dumps`` the
        result themselves — epoch-fence checkpointing does, every fence
        — pass ``detach=False`` to skip the redundant round-trip; the
        returned dict then aliases live scheduler state and must be
        serialized (or dropped) before the scheduler advances.
        """
        state = {
            "cycle": self.sim.now,
            "configs": [fc.chip.config for fc in self.chips],
            "chips": [fc.hypervisor.snapshot_state() for fc in self.chips],
            "pending": [
                (e.session, e.preemptions, e.evacuations, e.kills,
                 e.lost_service_cycles, e.blocked, e.relief_exhausted)
                for e in self._pending
            ],
            "active": sorted(
                self._active.values(),
                key=lambda a: (a.admit_cycle, a.session.session_id)),
            "remaining_trace": self._trace[self._arrival_index:],
            "trace_loaded": self._trace_loaded,
            "metrics": self.metrics,
            "faults": self.faults,
            "evacuation": self.evacuation,
            "cost_tier": self.cost_model.name,
            "cost_state": self.cost_model.snapshot_state(),
        }
        if not detach:
            return state
        return pickle.loads(pickle.dumps(state))

    @classmethod
    def restore(cls, state: dict, **kwargs) -> "FleetScheduler":
        """Rebuild a running scheduler from a :meth:`snapshot` dict.

        ``kwargs`` must name the same policy/placement/cost-model
        configuration the checkpointed scheduler ran with (policies are
        stateless between decisions, so they live outside the snapshot).
        Passing ``config=ServingConfig(...)`` is the declarative way to
        do that — the control plane checkpoints ``config.to_dict()``
        next to the state and hands both back here on warm restart.
        Buddy-allocator addresses are re-assigned on restore (logical
        state round-trips; physical addresses may differ — see
        ``Hypervisor.snapshot_state``).
        """
        kwargs.setdefault("evacuation", state["evacuation"])
        if state["cost_tier"]:
            kwargs.setdefault("cost_model", state["cost_tier"])
        fleet = cls(list(state["configs"]), faults=state["faults"],
                    **kwargs)
        # Memoized prices are behavioral state: without them the restored
        # run would re-price cache keys on different placements and drift
        # off the checkpointed timeline.
        fleet.cost_model.restore_state(state["cost_state"])
        fleet.sim.now = state["cycle"]
        for fleet_chip, chip_state in zip(fleet.chips, state["chips"]):
            fleet_chip.hypervisor.restore_state(chip_state)
        fleet.metrics = state["metrics"]
        for (session, preemptions, evacuations, kills, lost, blocked,
             relief_exhausted) in state["pending"]:
            entry = PendingSession(
                session, preemptions=preemptions, evacuations=evacuations,
                kills=kills, lost_service_cycles=lost)
            entry.blocked = blocked
            entry.relief_exhausted = relief_exhausted
            fleet._pending.append(entry)
        for active in state["active"]:
            fleet._active[(active.chip_index, active.vmid)] = active
            fleet.sim.process(
                fleet._session_lifetime(active, resume=True),
                name=f"fleet-session-{active.session.session_id}")
        fleet._trace_loaded = state["trace_loaded"]
        remaining = list(state["remaining_trace"])
        if remaining:
            fleet._trace = remaining
            fleet.sim.process(fleet._arrivals(remaining),
                              name="fleet-arrivals")
        if fleet.faults is not None and len(fleet.faults):
            steps = [s for s in fleet.faults.timeline()
                     if s[0] > state["cycle"]]
            if steps:
                fleet.sim.process(fleet._failure_timeline(steps),
                                  name="fleet-faults")
        return fleet

    # -- simulation processes ----------------------------------------------
    def _arrivals(self, trace: "list[TenantSession]"):
        for session in trace:
            gap = session.arrival_cycle - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            self._arrival_index += 1
            self._pending.append(PendingSession(session))
            self._admit_loop()
            self._sample()

    def _session_lifetime(self, active: ActiveFleetSession, *,
                          resume: bool = False):
        # Migrations and elastic resizes that happen during the wait
        # push ``expected_depart`` out; keep sleeping until it stops
        # receding. (A grow-back that would depart *earlier* cannot wake
        # the scheduled timeout — growth restores the service rate going
        # forward, it never time-travels the current sleep.) Each sleep
        # records its target in ``wake_cycle``; a process respawned by
        # :meth:`restore` mid-sleep (``resume=True``) first finishes
        # the interrupted sleep toward that exact cycle — waking there
        # to re-read the projection, just as the original's pending
        # timeout would have — rather than re-arming at the current
        # ``expected_depart``, which may have receded since.
        if resume and active.wake_cycle > self.sim.now:
            yield self.sim.timeout(active.wake_cycle - self.sim.now)
            if active.preempted:
                return
        while True:
            remaining = active.expected_depart - self.sim.now
            if remaining <= 0:
                break
            active.wake_cycle = self.sim.now + remaining
            yield self.sim.timeout(remaining)
            if active.preempted:
                return  # evicted mid-sleep; the requeued entry took over
        self._depart(active)
        # A departure changes the free set: parked placements get a new
        # try, and spent relief rounds may be worth another shot.
        for entry in self._pending:
            entry.blocked = False
            entry.relief_exhausted = False
        self._admit_loop()
        self._grow_back()
        self._sample()

    # -- admission ---------------------------------------------------------
    def _admit_loop(self) -> None:
        while True:
            most_free = max(
                (fc.free_cores() for fc in self.chips if fc.healthy),
                default=0)
            entry = self.policy.select(self._pending, most_free)
            if entry is not None:
                self._try_admit(entry)
                continue
            if not self._elastic_relief():
                return

    def _try_admit(self, entry: PendingSession) -> None:
        if self._place(entry):
            return
        self.metrics.admission_failures += 1
        if self._refused_by_idle_chip(entry.session):
            # An idle chip is the best host this session's ranking will
            # ever see; when even it refuses, no amount of waiting
            # helps — drop instead of deadlocking the queue behind it.
            self._pending.remove(entry)
            self.metrics.rejected += 1
            return
        if self.defrag is not None and self._defragment(entry.session):
            for pending in self._pending:
                pending.blocked = False
            if self._place(entry):
                return
        entry.blocked = True

    def _refused_by_idle_chip(self, session: TenantSession) -> bool:
        """Was the failed placement hopeless, not just crowded out?

        The old rule dropped only when the *entire fleet* was empty, so
        an impossible request (say, a shape the mapping strategy cannot
        carve out of any chip) parked forever behind a busy fleet. The
        tightened rule: probe the largest healthy *empty* chip — the
        best case any ranking can offer — and drop when even its fully
        free topology refuses the mapping. Smaller empty chips prove
        nothing (a bigger busy chip may host the session later), so
        only maximal chips are consulted; memory is already validated
        at submit against the largest chip's guest capacity.
        """
        healthy = [fc for fc in self.chips if fc.healthy]
        if not healthy:
            return False  # everything is down: park until recovery
        largest = max(fc.chip.core_count for fc in healthy)
        idle = [fc for fc in healthy
                if fc.chip.core_count == largest
                and not fc.hypervisor.vnpus
                and session.core_count <= fc.chip.core_count
                and session.memory_bytes
                <= fc.hypervisor.guest_memory_capacity]
        if not idle:
            return False
        probe = idle[0]
        spec = VNpuSpec(name=session.tenant, topology=session.shape,
                        memory_bytes=session.memory_bytes)
        strat = resolve_strategy(self.strategy or probe.hypervisor.strategy)
        try:
            strat.map(probe.hypervisor.mapper, spec, set())
        except AllocationError:
            return True
        return False

    def _place(self, entry: PendingSession) -> bool:
        """Try the placement policy's chip ranking; admit on first success."""
        session = entry.session
        for fleet_chip in self.placement.rank(self.chips, session):
            if not fleet_chip.healthy:
                continue  # custom policies may not filter; never place here
            spec = VNpuSpec(
                name=session.tenant,
                topology=session.shape,
                memory_bytes=session.memory_bytes,
            )
            try:
                vnpu = fleet_chip.hypervisor.create_vnpu(
                    spec, strategy=self.strategy)
            except AllocationError:
                continue
            self._pending.remove(entry)
            service = self.cost_model.service_cycles(fleet_chip.chip,
                                                     session, vnpu)
            active = ActiveFleetSession(
                session=session,
                chip_index=fleet_chip.index,
                vmid=vnpu.vmid,
                admit_cycle=self.sim.now,
                strategy=vnpu.mapping.strategy,
                mapping_distance=vnpu.mapping.distance,
                mapping_connected=vnpu.mapping.connected,
                slo=session_slo(session),
                rows=session.rows,
                cols=session.cols,
                service_total=service,
                expected_depart=self.sim.now + service,
                preemptions=entry.preemptions,
                evacuations=entry.evacuations,
                kills=entry.kills,
                lost_service_cycles=entry.lost_service_cycles,
            )
            self._active[(fleet_chip.index, vnpu.vmid)] = active
            self.sim.process(
                self._session_lifetime(active),
                name=f"fleet-session-{session.session_id}"
                     f"-{entry.preemptions}",
            )
            return True
        return False

    def _depart(self, active: ActiveFleetSession) -> None:
        fleet_chip = self.chips[active.chip_index]
        fleet_chip.hypervisor.destroy_vnpu(active.vmid)
        del self._active[(active.chip_index, active.vmid)]
        session = active.session
        self.metrics.record_departure(SessionRecord(
            session_id=session.session_id,
            tenant=session.tenant,
            model=session.model,
            cores=session.core_count,
            arrival_cycle=session.arrival_cycle,
            admit_cycle=active.admit_cycle,
            depart_cycle=self.sim.now,
            strategy=active.strategy,
            mapping_distance=active.mapping_distance,
            mapping_connected=active.mapping_connected,
            chip=active.chip_index,
            migrations=active.migrations,
            slo=active.slo.name,
            preemptions=active.preemptions,
            resizes=active.resizes,
            evacuations=active.evacuations,
            kills=active.kills,
            lost_service_cycles=active.lost_service_cycles,
        ))

    # -- elastic enforcement ------------------------------------------------
    def _elastic_relief(self) -> bool:
        """Shrink/preempt lower tiers for the neediest blocked arrival.

        Chip-local: the arriving session needs its cores on *one* chip,
        so the plan targets the first chip (fullest-free first) whose
        lower-tier residents can cover the shortfall. Returns True when
        at least one enforcement action landed. A round that fails to
        place its entry marks it ``relief_exhausted`` until the next
        departure — preemption is not monotonic (an evicted victim can
        re-admit to the same cores), so this is what keeps the admit
        loop finite.
        """
        if self.elastic is None:
            return False
        most_free = max(
            (fc.free_cores() for fc in self.chips if fc.healthy),
            default=0)
        now = self.sim.now
        candidates = sorted(
            (e for e in self._pending
             if not e.relief_exhausted
             and (e.blocked or e.session.core_count > most_free)
             and session_slo(e.session).relief_due(
                 now - e.session.arrival_cycle)),
            key=lambda e: (-session_slo(e.session).tier,
                           e.session.arrival_cycle, e.session.session_id),
        )
        if not candidates:
            return False
        entry = candidates[0]
        tier = session_slo(entry.session).tier
        for fleet_chip in sorted(
                (fc for fc in self.chips if fc.healthy),
                key=lambda fc: (-fc.free_cores(), fc.index)):
            needed = max(1,
                         entry.session.core_count - fleet_chip.free_cores())
            victims = self._victims(fleet_chip, tier)
            actions = self.elastic.plan(needed, victims)
            if not actions:
                continue
            executed = sum(1 for action in actions
                           if self._execute_action(fleet_chip, action))
            if executed == 0:
                continue
            for pending in self._pending:
                pending.blocked = False
            # The squeeze happened on *this* entry's behalf: place it
            # first, before any queue-mate (under fcfs/best_fit a
            # lower-tier head would otherwise consume the just-freed
            # cores). A failed attempt spends the entry's relief budget
            # for this instant — the plan covered the core *count*, so
            # what remains is a topology problem more squeezing cannot
            # fix right now.
            self._try_admit(entry)
            if entry in self._pending:
                entry.relief_exhausted = True
            return True
        return False

    def _victims(self, fleet_chip: FleetChip,
                 below_tier: int) -> list[ElasticVictim]:
        victims = []
        for chip_index, vmid in sorted(self._active):
            if chip_index != fleet_chip.index:
                continue
            active = self._active[(chip_index, vmid)]
            if active.slo.tier >= below_tier:
                continue
            victim = make_victim(active)
            if victim is not None:
                victims.append(victim)
        return victims

    def _execute_action(self, fleet_chip: FleetChip,
                        action: ElasticAction) -> bool:
        active = action.victim.key
        if action.kind == "shrink":
            smaller = shrink_shape(active.rows, active.cols)
            if smaller is None:
                return False
            return self._resize(fleet_chip, active, smaller)
        if action.kind == "preempt":
            return self._preempt(fleet_chip, active)
        raise ServingError(f"unknown elastic action {action.kind!r}")

    def _resize(self, fleet_chip: FleetChip, active: ActiveFleetSession,
                shape) -> bool:
        """Live-resize ``active`` on its chip and re-price its residency."""
        grew = shape.node_count > active.cores
        spec = VNpuSpec(
            name=active.session.tenant,
            topology=shape,
            memory_bytes=resize_memory_bytes(active.session,
                                             shape.node_count),
        )
        try:
            vnpu, charge = fleet_chip.hypervisor.resize_vnpu(
                active.vmid, spec, strategy=self.strategy)
        except AllocationError:
            return False
        active.rows, active.cols = shape.rows, shape.cols
        active.strategy = vnpu.mapping.strategy
        active.mapping_distance = vnpu.mapping.distance
        active.mapping_connected = vnpu.mapping.connected
        active.resizes += 1
        new_total = self.cost_model.service_cycles(
            fleet_chip.chip, active.sized_session(), vnpu)
        reprice(active, new_total, charge, self.sim.now)
        self.metrics.record_resize(charge, grew=grew)
        return True

    def _preempt(self, fleet_chip: FleetChip,
                 active: ActiveFleetSession) -> bool:
        fleet_chip.hypervisor.destroy_vnpu(active.vmid)
        del self._active[(active.chip_index, active.vmid)]
        active.preempted = True
        self.metrics.preemptions += 1
        requeue_in_arrival_order(
            self._pending, active.session, active.preemptions + 1,
            evacuations=active.evacuations, kills=active.kills,
            lost_service_cycles=active.lost_service_cycles)
        return True

    def _grow_back(self) -> None:
        """Give shrunk sessions their cores back once the queue is clear.

        Conservative by design: growth only happens when nothing is
        waiting (queued arrivals outrank a squeezed tenant's comfort),
        highest tier first.
        """
        if self.elastic is None or self._pending:
            return
        shrunk = sorted(
            (a for a in self._active.values()
             if a.shrunk and self.chips[a.chip_index].healthy),
            key=lambda a: (-a.slo.tier, a.admit_cycle, a.session.session_id),
        )
        for active in shrunk:
            self._resize(self.chips[active.chip_index], active,
                         active.session.shape)

    # -- defragmentation ---------------------------------------------------
    def _defragment(self, session: TenantSession) -> bool:
        """Migrate tenants off (or within) over-fragmented chips.

        Returns True when at least one migration landed, i.e. the free
        sets changed and the blocked arrival deserves another attempt.
        """
        threshold = self.defrag.fragmentation_threshold
        fragmented = sorted(
            (fc for fc in self.chips
             if fc.healthy and fc.fragmentation() > threshold),
            key=lambda fc: (-fc.fragmentation(), fc.index),
        )
        moved = 0
        for fleet_chip in fragmented:
            if moved >= self.defrag.max_migrations_per_trigger:
                break
            # Cheapest-to-move tenants first: migration cost scales with
            # resident memory.
            tenants = sorted(
                fleet_chip.hypervisor.vnpus,
                key=lambda v: (v.memory_bytes, v.vmid),
            )
            for vnpu in tenants:
                if moved >= self.defrag.max_migrations_per_trigger:
                    break
                if self._migrate(fleet_chip, vnpu.vmid):
                    moved += 1
                    if fleet_chip.fragmentation() <= threshold:
                        break
        if moved == 0:
            self.metrics.migration_failures += 1
        return moved > 0

    def _migrate(self, source: FleetChip, vmid: int, *,
                 evacuating: bool = False) -> bool:
        """Try destinations emptiest-first, then in-place compaction.

        ``evacuating`` drops the in-place fallback: the source chip is
        failed, so the only useful outcome is landing elsewhere.
        """
        vnpu = source.hypervisor.vnpu(vmid)
        destinations = sorted(
            (fc for fc in self.chips
             if fc is not source and fc.healthy
             and vnpu.core_count <= fc.free_cores()),
            key=lambda fc: (-fc.free_cores(), fc.index),
        )
        if not evacuating:
            destinations.append(source)  # in-place compaction, last resort
        active = self._active[(source.index, vmid)]
        for destination in destinations:
            if destination is source:
                # Probe the compaction placement on a trial mapping
                # before touching the tenant: an in-place "migration"
                # that would land on the identical cores frees nothing,
                # so skip the teardown/rebuild (and the charge) entirely.
                strat = resolve_strategy(
                    self.strategy or source.hypervisor.strategy)
                occupied = (source.hypervisor.allocated_cores
                            - set(vnpu.physical_cores))
                try:
                    trial = strat.map(source.hypervisor.mapper, vnpu.spec,
                                      occupied)
                except AllocationError:
                    continue
                if trial.physical_cores == vnpu.physical_cores:
                    return False
            try:
                migrated, cost = source.hypervisor.migrate_vnpu(
                    vmid, destination=destination.hypervisor,
                    strategy=self.strategy)
            except AllocationError:
                continue
            del self._active[(source.index, vmid)]
            active.chip_index = destination.index
            active.vmid = migrated.vmid
            active.strategy = migrated.mapping.strategy
            active.mapping_distance = migrated.mapping.distance
            active.mapping_connected = migrated.mapping.connected
            active.expected_depart += cost
            active.migrations += 1
            self._active[(destination.index, migrated.vmid)] = active
            self.metrics.record_migration(cost)
            return True
        return False

    # -- fault injection & evacuation ---------------------------------------
    def _failure_timeline(self, steps=None):
        """Replay the failure schedule on the shared clock.

        Recoveries sort before failures at the same cycle (the schedule
        guarantees it), so a back-to-back outage on one chip never sees
        the chip already down. ``steps`` lets a restore resume mid-way
        (only the steps strictly after the checkpoint cycle).
        """
        if steps is None:
            steps = self.faults.timeline()
        for cycle, action, event in steps:
            gap = cycle - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            if action == "fail":
                self._fail_chip(event)
            else:
                self._recover_chip(event)

    def _fail_chip(self, event: FailureEvent) -> None:
        fleet_chip = self.chips[event.chip_index]
        if not fleet_chip.healthy:
            return  # overlaps are dropped at schedule build; belt only
        fleet_chip.hypervisor.mark_failed()
        self.metrics.record_chip_failure(self.sim.now, event.chip_index,
                                         event.kind)
        # Gold drains first: when survivor capacity runs out mid-drain,
        # it is the lower tiers that end up killed and requeued.
        residents = sorted(
            (a for a in self._active.values()
             if a.chip_index == event.chip_index),
            key=lambda a: (-a.slo.tier, a.admit_cycle, a.session.session_id),
        )
        if event.kind == "link":
            # Degraded mode: only tenants owning an endpoint of the
            # failed link lose their placement; the rest keep serving
            # on the (unrankable, but alive) chip.
            residents = [a for a in residents
                         if self._touches_link(fleet_chip, a, event)]
        for active in residents:
            self._evacuate(fleet_chip, active, hard=(event.kind == "chip"))
        # Evacuations and kills changed free sets and the queue alike.
        for pending in self._pending:
            pending.blocked = False
            pending.relief_exhausted = False
        self._admit_loop()
        self._sample()

    def _touches_link(self, fleet_chip: FleetChip,
                      active: ActiveFleetSession,
                      event: FailureEvent) -> bool:
        edges = sorted(fleet_chip.chip.topology.edges)
        if not edges:
            return False
        u, v = edges[event.link_index % len(edges)]
        cores = set(fleet_chip.hypervisor.vnpu(active.vmid).physical_cores)
        return u in cores or v in cores

    def _recover_chip(self, event: FailureEvent) -> None:
        self.chips[event.chip_index].hypervisor.mark_recovered()
        self.metrics.record_chip_recovery(self.sim.now, event.chip_index,
                                          event.kind)
        for pending in self._pending:
            pending.blocked = False
            pending.relief_exhausted = False
        self._admit_loop()
        self._grow_back()
        self._sample()

    def _evacuate(self, source: FleetChip,
                  active: ActiveFleetSession, hard: bool) -> None:
        """Drain one resident off a failing chip.

        ``hard`` (a fail-stop chip crash) and the ``kill_requeue``
        policy skip straight to the kill. Otherwise live migration is
        tried at full size, then — under ``shrink_to_fit``, for
        shrinkable tiers only — at successively halved meshes resized
        in place on the failing chip (drains are exempt from the health
        gate) until some survivor accepts the smaller footprint. A
        session nothing can host is killed and requeued, its lost
        cycles charged to the fault accounting.
        """
        if hard or self.evacuation == "kill_requeue":
            self._kill(source, active)
            return
        if self._evacuate_migrate(source, active):
            return
        if self.evacuation == "shrink_to_fit" and active.slo.shrinkable:
            shape = shrink_shape(active.rows, active.cols)
            while shape is not None:
                if not self._resize(source, active, shape):
                    break
                if self._evacuate_migrate(source, active):
                    return
                shape = shrink_shape(active.rows, active.cols)
        self._kill(source, active)

    def _evacuate_migrate(self, source: FleetChip,
                          active: ActiveFleetSession) -> bool:
        before = active.expected_depart
        if not self._migrate(source, active.vmid, evacuating=True):
            return False
        active.evacuations += 1
        self.metrics.record_evacuation(active.expected_depart - before)
        return True

    def _kill(self, source: FleetChip, active: ActiveFleetSession) -> None:
        """Fail-stop: the vNPU dies with its chip, in-flight work is lost."""
        lost = max(0, self.sim.now - active.admit_cycle)
        source.hypervisor.kill_vnpu(active.vmid)
        del self._active[(active.chip_index, active.vmid)]
        active.preempted = True
        requeue_in_arrival_order(
            self._pending, active.session, active.preemptions + 1,
            evacuations=active.evacuations, kills=active.kills + 1,
            lost_service_cycles=active.lost_service_cycles + lost)
        self.metrics.record_kill(lost)

    # -- observability -----------------------------------------------------
    def _sample(self) -> None:
        free = tuple(fc.free_cores() for fc in self.chips)
        utilization = tuple(fc.utilization() for fc in self.chips)
        fragmentation = tuple(fc.fragmentation() for fc in self.chips)
        queue_length = len(self._pending)
        total_cores = self.core_count
        self.metrics.sample(ClusterSample(
            cycle=self.sim.now,
            free_cores=sum(free),
            utilization=1.0 - sum(free) / total_cores,
            fragmentation=sum(fragmentation) / len(fragmentation),
            queue_length=queue_length,
        ))
        self.metrics.sample_fleet(FleetSample(
            cycle=self.sim.now,
            queue_length=queue_length,
            free_cores=free,
            utilization=utilization,
            fragmentation=fragmentation,
        ))
