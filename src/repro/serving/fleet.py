"""Multi-chip fleet serving with live vNPU migration.

:class:`FleetScheduler` coordinates N chips — each with its own
:class:`~repro.core.hypervisor.Hypervisor` and per-chip state — on one
shared simulated clock (every :class:`~repro.arch.chip.Chip` is built on
the same :class:`~repro.sim.engine.Simulator`). Arrivals are admitted by
the same pluggable :class:`~repro.serving.policies.AdmissionPolicy`
family the single-chip scheduler uses; *which chip* hosts an admitted
session is decided by a :class:`PlacementPolicy`, registered by name
through the same registry idiom:

- ``least_loaded`` — the chip with the most free cores;
- ``best_fit`` — the chip whose trial placement has the smallest
  topology-mapping distance (probes Algorithm 1 per chip; the mapper's
  LRU cache keeps repeat probes cheap);
- ``power_of_two`` — classic power-of-two-choices: two chips sampled by
  a per-session seeded draw, the less loaded one first.

When an arrival is blocked and a chip's fragmentation ratio crosses the
configured threshold, the optional :class:`DefragPolicy` triggers **live
migration** (:meth:`~repro.core.hypervisor.Hypervisor.migrate_vnpu`):
resident tenants are re-placed — onto an emptier chip or compacted in
place — their guest memory re-mapped onto the destination buddy
allocator and routing tables rebuilt, with the migration cost (data
movement + Fig-11 reconfiguration) charged to the migrated session's
timeline. The fleet converts fragmentation into admitted sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.arch.config import SoCConfig, sim_config
from repro.arch.topology import Topology
from repro.core.hypervisor import Hypervisor
from repro.core.registry import Registry
from repro.core.strategies import resolve_strategy
from repro.core.vnpu import VNpuSpec
from repro.cost import CostModel, coerce_cost_model
from repro.errors import AllocationError, ServingError
from repro.serving.metrics import (
    ClusterSample,
    FleetMetrics,
    FleetSample,
    SessionRecord,
    fragmentation_ratio,
)
from repro.serving.policies import AdmissionPolicy
from repro.serving.scheduler import (
    PendingSession,
    coerce_policy,
    drive_simulation,
)
from repro.serving.workload import TenantSession
from repro.sim import Simulator


@dataclass
class FleetChip:
    """One chip of the fleet: its hypervisor plus derived state."""

    index: int
    chip: Chip
    hypervisor: Hypervisor

    def free_cores(self) -> int:
        return self.hypervisor.free_core_count()

    def utilization(self) -> float:
        return self.hypervisor.core_utilization()

    def fragmentation(self) -> float:
        return fragmentation_ratio(self.chip.topology,
                                   self.hypervisor.allocated_cores)


# -- cross-chip placement policies -----------------------------------------

class PlacementPolicy:
    """Orders the fleet's chips for one session's placement attempt.

    ``rank`` returns the chips to try, best first; chips without enough
    free cores are excluded. An empty ranking parks the session until a
    departure (or migration) changes some chip's free set.
    """

    name: str

    def rank(self, chips: "list[FleetChip]",
             session: TenantSession) -> "list[FleetChip]":
        raise NotImplementedError


class LeastLoadedPlacement(PlacementPolicy):
    """Most free cores first — the load-balancing baseline."""

    name = "least_loaded"

    def rank(self, chips, session):
        fits = [c for c in chips if session.core_count <= c.free_cores()]
        return sorted(fits, key=lambda c: (-c.free_cores(), c.index))


class BestFitPlacement(PlacementPolicy):
    """Smallest trial mapping distance across chips (then tightest fit).

    Probes each candidate chip with the similar-topology mapper; a chip
    whose probe finds no connected placement is excluded (the real
    placement would fail the same way). Probe results are pure functions
    of (request structure, free-core set), so the per-chip mapping cache
    absorbs the repeat probes churn produces. The probe inherits the
    mapper's candidate-enumeration cost: on large chips (36+ cores) with
    heavily shattered free sets, ranking pays Algorithm 1's worst case
    per chip — prefer ``least_loaded`` for big-chip fleets where probe
    cost matters more than placement quality.
    """

    name = "best_fit"

    def rank(self, chips, session):
        request = Topology.mesh2d(session.rows, session.cols,
                                  name="placement-probe")
        scored = []
        for fleet_chip in chips:
            if session.core_count > fleet_chip.free_cores():
                continue
            mapper = fleet_chip.hypervisor.mapper
            try:
                trial = mapper.map_similar(
                    request, fleet_chip.hypervisor.allocated_cores)
            except AllocationError:
                continue
            leftover = fleet_chip.free_cores() - session.core_count
            scored.append((trial.distance, leftover, fleet_chip.index,
                           fleet_chip))
        return [entry[-1] for entry in sorted(scored,
                                              key=lambda e: e[:3])]


class PowerOfTwoPlacement(PlacementPolicy):
    """Power-of-two-choices: sample two chips, prefer the less loaded.

    The draw is seeded per session (from the policy seed and the session
    ID), not from a shared stream, so rankings are deterministic
    regardless of how many times or in what order sessions are
    (re-)ranked.
    """

    name = "power_of_two"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def rank(self, chips, session):
        fits = [c for c in chips if session.core_count <= c.free_cores()]
        if len(fits) <= 2:
            return sorted(fits, key=lambda c: (-c.free_cores(), c.index))
        rng = random.Random(self.seed * 1_000_003 + session.session_id)
        pair = rng.sample(fits, 2)
        return sorted(pair, key=lambda c: (-c.free_cores(), c.index))


_PLACEMENTS: Registry[PlacementPolicy] = Registry("placement policy",
                                                  ServingError)


def register_placement(policy: PlacementPolicy,
                       replace: bool = False) -> PlacementPolicy:
    return _PLACEMENTS.register(policy, replace=replace)


def unregister_placement(name: str) -> None:
    return _PLACEMENTS.unregister(name)


def resolve_placement(name: str) -> PlacementPolicy:
    return _PLACEMENTS.resolve(name)


def available_placements() -> tuple[str, ...]:
    return _PLACEMENTS.names()


for _builtin in (LeastLoadedPlacement(), BestFitPlacement(),
                 PowerOfTwoPlacement()):
    register_placement(_builtin)


# -- defragmentation -------------------------------------------------------

@dataclass(frozen=True)
class DefragPolicy:
    """When and how hard to defragment a blocked fleet.

    Migration triggers only when *both* hold: a queued arrival just
    failed placement everywhere, and some chip's fragmentation ratio
    exceeds ``fragmentation_threshold``. At most
    ``max_migrations_per_trigger`` tenants move per trigger — migration
    charges real cycles to the migrated sessions, so the policy is
    deliberately stingy.
    """

    fragmentation_threshold: float = 0.25
    max_migrations_per_trigger: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.fragmentation_threshold <= 1.0:
            raise ServingError(
                f"fragmentation threshold must be in [0, 1], got "
                f"{self.fragmentation_threshold}")
        if self.max_migrations_per_trigger < 1:
            raise ServingError("defrag needs at least one migration per "
                               "trigger")


@dataclass
class ActiveFleetSession:
    session: TenantSession
    chip_index: int
    vmid: int
    admit_cycle: int
    strategy: str
    mapping_distance: float
    mapping_connected: bool
    #: Migration cycles accrued while the current service wait runs; the
    #: lifetime process drains this into additional timeouts.
    extra_cycles: int = 0
    migrations: int = 0


class FleetScheduler:
    """Serves one tenant trace across N chips on a shared clock."""

    def __init__(self, configs: "list[SoCConfig]",
                 policy: "AdmissionPolicy | str" = "fcfs",
                 placement: "PlacementPolicy | str" = "least_loaded",
                 strategy: str | None = None,
                 defrag: DefragPolicy | None = None,
                 sim: Simulator | None = None,
                 cost_model: "CostModel | str" = "analytic") -> None:
        if not configs:
            raise ServingError("fleet needs at least one chip config")
        self.sim = sim or Simulator()
        self.chips: list[FleetChip] = []
        for index, config in enumerate(configs):
            chip = Chip(config, sim=self.sim)
            self.chips.append(FleetChip(index, chip, Hypervisor(chip)))
        self.policy = coerce_policy(policy)
        self.placement = (resolve_placement(placement)
                          if isinstance(placement, str) else placement)
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast, like the hypervisor
        self.strategy = strategy
        self.defrag = defrag
        self.metrics = FleetMetrics()
        #: The fidelity tier pricing every session's residency.
        self.cost_model = coerce_cost_model(cost_model)
        self._pending: list[PendingSession] = []
        #: (chip index, vmid) -> active session.
        self._active: dict[tuple[int, int], ActiveFleetSession] = {}
        self._trace_loaded = False

    @classmethod
    def homogeneous(cls, chips: int, cores: int = 36,
                    **kwargs) -> "FleetScheduler":
        """A fleet of ``chips`` identical SIM-configured chips."""
        if chips < 1:
            raise ServingError(f"fleet needs at least one chip, got {chips}")
        return cls([sim_config(cores) for _ in range(chips)], **kwargs)

    # -- queries -----------------------------------------------------------
    @property
    def chip_count(self) -> int:
        return len(self.chips)

    @property
    def core_count(self) -> int:
        return sum(fc.chip.core_count for fc in self.chips)

    def free_core_count(self) -> int:
        return sum(fc.free_cores() for fc in self.chips)

    @property
    def estimator(self) -> CostModel:
        """Historical name for the pricing engine (now any cost tier)."""
        return self.cost_model

    @estimator.setter
    def estimator(self, model: "CostModel | str") -> None:
        self.cost_model = coerce_cost_model(model)

    def mapper_stats(self) -> dict[str, int | float]:
        """Fleet-wide mapper counters (per-chip ``cache_stats`` summed).

        Every placement probe and provision lands on some chip's mapper;
        the sum is the fleet's mapping workload: cache hits/misses,
        candidates considered/pruned/refined, objective evaluations and
        free-set rebuilds vs incremental updates.
        """
        total: dict[str, int | float] = {}
        for fleet_chip in self.chips:
            for key, value in fleet_chip.hypervisor.mapper.cache_stats().items():
                if key == "hit_rate":
                    continue
                total[key] = total.get(key, 0) + value
        lookups = total.get("hits", 0) + total.get("misses", 0)
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        return total

    # -- public API --------------------------------------------------------
    def register_model(self, name: str, builder) -> None:
        self.cost_model.register_model(name, builder)

    def submit(self, trace: "list[TenantSession]") -> None:
        """Queue a trace; arrivals are replayed at their recorded cycles."""
        if self._trace_loaded:
            raise ServingError("scheduler already has a trace submitted")
        largest = max(fc.chip.core_count for fc in self.chips)
        ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
        for session in ordered:
            if session.model not in self.cost_model.models:
                raise ServingError(
                    f"session {session.session_id} wants unknown model "
                    f"{session.model!r}"
                )
            if session.core_count > largest:
                raise ServingError(
                    f"session {session.session_id} wants "
                    f"{session.core_count} cores; largest fleet chip has "
                    f"{largest}"
                )
        self.sim.process(self._arrivals(ordered), name="fleet-arrivals")
        self._trace_loaded = True

    def run(self, until: int | None = None,
            limit: int | None = None) -> int:
        """Drive the simulation (``limit`` as in ClusterScheduler.run)."""
        if not self._trace_loaded:
            raise ServingError("submit() a trace before run()")
        return drive_simulation(self.sim, until, limit)

    def serve(self, trace: "list[TenantSession]",
              limit: int | None = None) -> FleetMetrics:
        """Convenience: submit + run + return the metrics."""
        self.submit(trace)
        self.run(limit=limit)
        return self.metrics

    # -- simulation processes ----------------------------------------------
    def _arrivals(self, trace: "list[TenantSession]"):
        for session in trace:
            gap = session.arrival_cycle - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            self._pending.append(PendingSession(session))
            self._admit_loop()
            self._sample()

    def _session_lifetime(self, active: ActiveFleetSession,
                          service_cycles: int):
        remaining = service_cycles
        while remaining > 0:
            yield self.sim.timeout(remaining)
            # Migrations that happened during the wait stretched the
            # session: serve the accrued cost before departing.
            remaining, active.extra_cycles = active.extra_cycles, 0
        self._depart(active)
        for entry in self._pending:
            entry.blocked = False
        self._admit_loop()
        self._sample()

    # -- admission ---------------------------------------------------------
    def _admit_loop(self) -> None:
        while True:
            most_free = max(fc.free_cores() for fc in self.chips)
            entry = self.policy.select(self._pending, most_free)
            if entry is None:
                return
            self._try_admit(entry)

    def _try_admit(self, entry: PendingSession) -> None:
        if self._place(entry):
            return
        self.metrics.admission_failures += 1
        if not any(fc.hypervisor.vnpus for fc in self.chips):
            # Even an empty fleet cannot host this request: drop it
            # instead of deadlocking the queue behind it.
            self._pending.remove(entry)
            self.metrics.rejected += 1
            return
        if self.defrag is not None and self._defragment(entry.session):
            for pending in self._pending:
                pending.blocked = False
            if self._place(entry):
                return
        entry.blocked = True

    def _place(self, entry: PendingSession) -> bool:
        """Try the placement policy's chip ranking; admit on first success."""
        session = entry.session
        for fleet_chip in self.placement.rank(self.chips, session):
            spec = VNpuSpec(
                name=session.tenant,
                topology=session.shape,
                memory_bytes=session.memory_bytes,
            )
            try:
                vnpu = fleet_chip.hypervisor.create_vnpu(
                    spec, strategy=self.strategy)
            except AllocationError:
                continue
            self._pending.remove(entry)
            active = ActiveFleetSession(
                session=session,
                chip_index=fleet_chip.index,
                vmid=vnpu.vmid,
                admit_cycle=self.sim.now,
                strategy=vnpu.mapping.strategy,
                mapping_distance=vnpu.mapping.distance,
                mapping_connected=vnpu.mapping.connected,
            )
            self._active[(fleet_chip.index, vnpu.vmid)] = active
            service = self.cost_model.service_cycles(fleet_chip.chip,
                                                     session, vnpu)
            self.sim.process(
                self._session_lifetime(active, service),
                name=f"fleet-session-{session.session_id}",
            )
            return True
        return False

    def _depart(self, active: ActiveFleetSession) -> None:
        fleet_chip = self.chips[active.chip_index]
        fleet_chip.hypervisor.destroy_vnpu(active.vmid)
        del self._active[(active.chip_index, active.vmid)]
        session = active.session
        self.metrics.record_departure(SessionRecord(
            session_id=session.session_id,
            tenant=session.tenant,
            model=session.model,
            cores=session.core_count,
            arrival_cycle=session.arrival_cycle,
            admit_cycle=active.admit_cycle,
            depart_cycle=self.sim.now,
            strategy=active.strategy,
            mapping_distance=active.mapping_distance,
            mapping_connected=active.mapping_connected,
            chip=active.chip_index,
            migrations=active.migrations,
        ))

    # -- defragmentation ---------------------------------------------------
    def _defragment(self, session: TenantSession) -> bool:
        """Migrate tenants off (or within) over-fragmented chips.

        Returns True when at least one migration landed, i.e. the free
        sets changed and the blocked arrival deserves another attempt.
        """
        threshold = self.defrag.fragmentation_threshold
        fragmented = sorted(
            (fc for fc in self.chips if fc.fragmentation() > threshold),
            key=lambda fc: (-fc.fragmentation(), fc.index),
        )
        moved = 0
        for fleet_chip in fragmented:
            if moved >= self.defrag.max_migrations_per_trigger:
                break
            # Cheapest-to-move tenants first: migration cost scales with
            # resident memory.
            tenants = sorted(
                fleet_chip.hypervisor.vnpus,
                key=lambda v: (v.memory_bytes, v.vmid),
            )
            for vnpu in tenants:
                if moved >= self.defrag.max_migrations_per_trigger:
                    break
                if self._migrate(fleet_chip, vnpu.vmid):
                    moved += 1
                    if fleet_chip.fragmentation() <= threshold:
                        break
        if moved == 0:
            self.metrics.migration_failures += 1
        return moved > 0

    def _migrate(self, source: FleetChip, vmid: int) -> bool:
        """Try destinations emptiest-first, then in-place compaction."""
        vnpu = source.hypervisor.vnpu(vmid)
        destinations = sorted(
            (fc for fc in self.chips
             if fc is not source and vnpu.core_count <= fc.free_cores()),
            key=lambda fc: (-fc.free_cores(), fc.index),
        )
        destinations.append(source)  # in-place compaction as a last resort
        active = self._active[(source.index, vmid)]
        for destination in destinations:
            try:
                migrated, cost = source.hypervisor.migrate_vnpu(
                    vmid, destination=destination.hypervisor,
                    strategy=self.strategy)
            except AllocationError:
                continue
            if (destination is source and migrated.vmid == vmid
                    and migrated.physical_cores == vnpu.physical_cores):
                # In-place "migration" that landed on the identical
                # placement freed nothing — don't charge the tenant.
                return False
            del self._active[(source.index, vmid)]
            active.chip_index = destination.index
            active.vmid = migrated.vmid
            active.strategy = migrated.mapping.strategy
            active.mapping_distance = migrated.mapping.distance
            active.mapping_connected = migrated.mapping.connected
            active.extra_cycles += cost
            active.migrations += 1
            self._active[(destination.index, migrated.vmid)] = active
            self.metrics.record_migration(cost)
            return True
        return False

    # -- observability -----------------------------------------------------
    def _sample(self) -> None:
        free = tuple(fc.free_cores() for fc in self.chips)
        utilization = tuple(fc.utilization() for fc in self.chips)
        fragmentation = tuple(fc.fragmentation() for fc in self.chips)
        queue_length = len(self._pending)
        total_cores = self.core_count
        self.metrics.sample(ClusterSample(
            cycle=self.sim.now,
            free_cores=sum(free),
            utilization=1.0 - sum(free) / total_cores,
            fragmentation=sum(fragmentation) / len(fragmentation),
            queue_length=queue_length,
        ))
        self.metrics.sample_fleet(FleetSample(
            cycle=self.sim.now,
            queue_length=queue_length,
            free_cores=free,
            utilization=utilization,
            fragmentation=fragmentation,
        ))
