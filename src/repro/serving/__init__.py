"""Dynamic multi-tenant serving: traces, admission policies, scheduler.

This layer turns the static create/deploy/estimate flow into a serving
system: :func:`generate_trace` produces a seeded stream of tenant
sessions, and :class:`ClusterScheduler` replays it on a chip's
discrete-event simulator — admitting, queueing, provisioning vNPUs and
freeing them as tenants depart — while :class:`ServingMetrics` tracks
queue delays, utilization and fragmentation over time.
"""

from repro.serving.metrics import (
    ClusterSample,
    ServingMetrics,
    SessionRecord,
    fragmentation_ratio,
    percentile,
)
from repro.serving.policies import (
    AdmissionPolicy,
    BestFitPolicy,
    FCFSPolicy,
    PriorityPolicy,
    available_policies,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.serving.scheduler import ClusterScheduler, PendingSession
from repro.serving.workload import (
    MODEL_BUILDERS,
    SHAPE_MIX,
    TenantSession,
    generate_trace,
)

__all__ = [
    "AdmissionPolicy",
    "BestFitPolicy",
    "ClusterSample",
    "ClusterScheduler",
    "FCFSPolicy",
    "MODEL_BUILDERS",
    "PendingSession",
    "PriorityPolicy",
    "SHAPE_MIX",
    "ServingMetrics",
    "SessionRecord",
    "TenantSession",
    "available_policies",
    "fragmentation_ratio",
    "generate_trace",
    "percentile",
    "register_policy",
    "resolve_policy",
    "unregister_policy",
]
