"""Dynamic multi-tenant serving: traces, admission policies, schedulers.

This layer turns the static create/deploy/estimate flow into a serving
system: :func:`generate_trace` produces a seeded stream of tenant
sessions, and :class:`ClusterScheduler` replays it on a chip's
discrete-event simulator — admitting, queueing, provisioning vNPUs and
freeing them as tenants depart — while :class:`ServingMetrics` tracks
queue delays, utilization and fragmentation over time.
:class:`FleetScheduler` scales the same loop to N chips on one shared
clock, with pluggable cross-chip placement policies and live vNPU
migration for defragmentation (:class:`DefragPolicy`). Both schedulers
price sessions through a pluggable :mod:`repro.cost` fidelity tier
(``cost_model="analytic" | "executor" | "cached"``) and, when given an
``elastic=`` policy, enforce :class:`SLOClass` objectives by live
grow/shrink resizing and preemption of lower tiers
(:mod:`repro.serving.slo`); traces can additionally model bursty
(Markov-modulated) and diurnal arrival processes with per-session SLO
mixes. :mod:`repro.serving.faults` adds deterministic chip/link/HBM
failure injection (:class:`FailureSchedule`) with policy-driven vNPU
evacuation off failing chips. :mod:`repro.serving.shard` scales past
one process: :class:`ShardedFleetScheduler` partitions the fleet into
chip-group shards, each simulated by its own worker process, and
coordinates them over deterministic epoch fences — aggregate results
are byte-identical for any worker count. The coordinator supervises
its workers: epoch-fence checkpoints, a watchdog deadline on fence
reports, respawn-and-replay recovery for crashed or hung workers
(injectable via :class:`CrashSchedule`), and graceful degradation to
the in-process path when the respawn budget runs out.
"""

from repro.serving.config import CONFIG_KEYS, ServingConfig
from repro.serving.faults import (
    EVACUATION_POLICIES,
    FAILURE_KINDS,
    FailureEvent,
    FailureSchedule,
    coerce_evacuation,
    generate_failure_schedule,
    partition_schedule,
)
from repro.serving.fleet import (
    BestFitPlacement,
    DefragPolicy,
    FleetChip,
    FleetScheduler,
    LeastLoadedPlacement,
    PlacementPolicy,
    PowerOfTwoPlacement,
    available_placements,
    coerce_placement,
    register_placement,
    resolve_placement,
    unregister_placement,
)
from repro.serving.metrics import (
    ClusterSample,
    FleetMetrics,
    FleetSample,
    ServingMetrics,
    SessionRecord,
    SLOMetrics,
    canonical_json,
    fragmentation_ratio,
    merge_fleet_summaries,
    percentile,
    summary_wire,
)
from repro.serving.protocol import (
    OPS,
    ProtocolError,
    decode_message,
    encode_message,
    session_from_wire,
    session_to_wire,
)
from repro.serving.service import MODES, ControlPlane, ServiceClient
from repro.serving.policies import (
    AdmissionPolicy,
    BestFitPolicy,
    FCFSPolicy,
    PriorityPolicy,
    available_policies,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.serving.scheduler import (
    ClusterScheduler,
    PendingSession,
    ServiceTimeEstimator,
    coerce_policy,
)
from repro.serving.shard import (
    CRASH_KINDS,
    DEALING_MODES,
    AdmitOrder,
    CrashEvent,
    CrashSchedule,
    EpochPlan,
    ShardedFleetScheduler,
    ShardSlice,
    generate_crash_schedule,
    partition_chips,
)
from repro.serving.slo import (
    BEST_EFFORT,
    GOLD,
    SILVER,
    ElasticAction,
    ElasticPolicy,
    ElasticVictim,
    PreemptPolicy,
    ShrinkPolicy,
    ShrinkThenPreemptPolicy,
    SLOClass,
    available_elastics,
    available_slos,
    coerce_elastic,
    effective_priority,
    register_elastic,
    register_slo,
    resolve_elastic,
    resolve_slo,
    session_slo,
    shrink_shape,
    unregister_elastic,
    unregister_slo,
)
from repro.serving.workload import (
    ARRIVAL_PROCESSES,
    DEFAULT_SLO_MIX,
    FRAGMENTATION_SHAPE_MIX,
    MODEL_BUILDERS,
    SHAPE_MIX,
    TenantSession,
    TraceSpec,
    deal_sessions,
    generate_fleet_trace,
    generate_trace,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionPolicy",
    "AdmitOrder",
    "BEST_EFFORT",
    "BestFitPlacement",
    "BestFitPolicy",
    "CONFIG_KEYS",
    "CRASH_KINDS",
    "ClusterSample",
    "ClusterScheduler",
    "ControlPlane",
    "CrashEvent",
    "CrashSchedule",
    "DEALING_MODES",
    "DEFAULT_SLO_MIX",
    "DefragPolicy",
    "EVACUATION_POLICIES",
    "ElasticAction",
    "ElasticPolicy",
    "ElasticVictim",
    "EpochPlan",
    "FAILURE_KINDS",
    "FCFSPolicy",
    "FRAGMENTATION_SHAPE_MIX",
    "FailureEvent",
    "FailureSchedule",
    "FleetChip",
    "FleetMetrics",
    "FleetSample",
    "FleetScheduler",
    "GOLD",
    "LeastLoadedPlacement",
    "MODEL_BUILDERS",
    "MODES",
    "OPS",
    "PendingSession",
    "PlacementPolicy",
    "PowerOfTwoPlacement",
    "PreemptPolicy",
    "PriorityPolicy",
    "ProtocolError",
    "SHAPE_MIX",
    "SILVER",
    "SLOClass",
    "SLOMetrics",
    "ServiceClient",
    "ServiceTimeEstimator",
    "ServingConfig",
    "ServingMetrics",
    "SessionRecord",
    "ShardSlice",
    "ShardedFleetScheduler",
    "ShrinkPolicy",
    "ShrinkThenPreemptPolicy",
    "TenantSession",
    "TraceSpec",
    "available_elastics",
    "available_placements",
    "available_policies",
    "available_slos",
    "canonical_json",
    "coerce_elastic",
    "coerce_evacuation",
    "coerce_placement",
    "coerce_policy",
    "deal_sessions",
    "decode_message",
    "encode_message",
    "effective_priority",
    "fragmentation_ratio",
    "generate_crash_schedule",
    "generate_failure_schedule",
    "generate_fleet_trace",
    "generate_trace",
    "merge_fleet_summaries",
    "partition_chips",
    "partition_schedule",
    "percentile",
    "register_elastic",
    "register_placement",
    "register_policy",
    "register_slo",
    "resolve_elastic",
    "resolve_placement",
    "resolve_policy",
    "resolve_slo",
    "session_from_wire",
    "session_slo",
    "session_to_wire",
    "shrink_shape",
    "summary_wire",
    "unregister_elastic",
    "unregister_placement",
    "unregister_policy",
    "unregister_slo",
]
