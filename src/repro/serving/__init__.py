"""Dynamic multi-tenant serving: traces, admission policies, schedulers.

This layer turns the static create/deploy/estimate flow into a serving
system: :func:`generate_trace` produces a seeded stream of tenant
sessions, and :class:`ClusterScheduler` replays it on a chip's
discrete-event simulator — admitting, queueing, provisioning vNPUs and
freeing them as tenants depart — while :class:`ServingMetrics` tracks
queue delays, utilization and fragmentation over time.
:class:`FleetScheduler` scales the same loop to N chips on one shared
clock, with pluggable cross-chip placement policies and live vNPU
migration for defragmentation (:class:`DefragPolicy`). Both schedulers
price sessions through a pluggable :mod:`repro.cost` fidelity tier
(``cost_model="analytic" | "executor" | "cached"``).
"""

from repro.serving.fleet import (
    BestFitPlacement,
    DefragPolicy,
    FleetChip,
    FleetScheduler,
    LeastLoadedPlacement,
    PlacementPolicy,
    PowerOfTwoPlacement,
    available_placements,
    register_placement,
    resolve_placement,
    unregister_placement,
)
from repro.serving.metrics import (
    ClusterSample,
    FleetMetrics,
    FleetSample,
    ServingMetrics,
    SessionRecord,
    fragmentation_ratio,
    percentile,
)
from repro.serving.policies import (
    AdmissionPolicy,
    BestFitPolicy,
    FCFSPolicy,
    PriorityPolicy,
    available_policies,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.serving.scheduler import (
    ClusterScheduler,
    PendingSession,
    ServiceTimeEstimator,
    coerce_policy,
)
from repro.serving.workload import (
    FRAGMENTATION_SHAPE_MIX,
    MODEL_BUILDERS,
    SHAPE_MIX,
    TenantSession,
    generate_fleet_trace,
    generate_trace,
)

__all__ = [
    "AdmissionPolicy",
    "BestFitPlacement",
    "BestFitPolicy",
    "ClusterSample",
    "ClusterScheduler",
    "DefragPolicy",
    "FCFSPolicy",
    "FRAGMENTATION_SHAPE_MIX",
    "FleetChip",
    "FleetMetrics",
    "FleetSample",
    "FleetScheduler",
    "LeastLoadedPlacement",
    "MODEL_BUILDERS",
    "PendingSession",
    "PlacementPolicy",
    "PowerOfTwoPlacement",
    "PriorityPolicy",
    "SHAPE_MIX",
    "ServiceTimeEstimator",
    "ServingMetrics",
    "SessionRecord",
    "TenantSession",
    "available_placements",
    "available_policies",
    "coerce_policy",
    "fragmentation_ratio",
    "generate_fleet_trace",
    "generate_trace",
    "percentile",
    "register_placement",
    "register_policy",
    "resolve_placement",
    "resolve_policy",
    "unregister_placement",
    "unregister_policy",
]
