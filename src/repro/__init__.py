"""vNPU: topology-aware virtualization for inter-core connected NPUs.

A full-system reproduction of Feng et al., *Topology-Aware Virtualization
over Inter-Core Connected Neural Processing Units* (ISCA 2025): a
cycle-accounting NPU chip simulator, the vRouter / vChunk virtualization
hardware, the topology-mapping hypervisor, the UVM and MIG baselines, a
model zoo, and a compiler/runtime that deploys models onto virtual NPUs.

Quickstart::

    from repro import (Chip, Hypervisor, MeshShape, VNpuSpec, deploy,
                       sim_config)
    from repro.workloads import resnet

    chip = Chip(sim_config(36))
    hypervisor = Hypervisor(chip)
    vnpu = hypervisor.create_vnpu(
        VNpuSpec("tenant-a", MeshShape(4, 6), memory_bytes=256 << 20))
    report = deploy(resnet(34), vnpu, chip)
    print(f"{report.fps:.0f} inferences/s")
"""

from repro.arch.chip import Chip
from repro.arch.config import (
    CoreConfig,
    MemoryConfig,
    NoCConfig,
    SoCConfig,
    fpga_config,
    sim_config,
)
from repro.arch.topology import MeshShape, Topology
from repro.core.ged import EditCosts, ged
from repro.core.hypervisor import Hypervisor
from repro.core.strategies import (
    MappingStrategy,
    available_strategies,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)
from repro.core.topology_mapping import MappingResult, TopologyMapper
from repro.core.vnpu import VirtualNPU, VNpuSpec
from repro.cost import (
    AnalyticCostModel,
    CachedCostModel,
    CostModel,
    ExecutorCostModel,
    WorkloadCost,
    available_cost_models,
    coerce_cost_model,
    register_cost_model,
    resolve_cost_model,
)
from repro.errors import ReproError
from repro.runtime.executor import Executor
from repro.runtime.session import (
    RunReport,
    compile_bare_metal,
    compile_model,
    deploy,
    estimate_together,
)
from repro.serving import (
    ClusterScheduler,
    DefragPolicy,
    FleetMetrics,
    FleetScheduler,
    ServingMetrics,
    generate_fleet_trace,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticCostModel",
    "CachedCostModel",
    "Chip",
    "ClusterScheduler",
    "CoreConfig",
    "CostModel",
    "DefragPolicy",
    "EditCosts",
    "Executor",
    "ExecutorCostModel",
    "FleetMetrics",
    "FleetScheduler",
    "Hypervisor",
    "MappingResult",
    "MappingStrategy",
    "MemoryConfig",
    "MeshShape",
    "NoCConfig",
    "ReproError",
    "RunReport",
    "ServingMetrics",
    "SoCConfig",
    "Topology",
    "TopologyMapper",
    "VNpuSpec",
    "VirtualNPU",
    "WorkloadCost",
    "available_cost_models",
    "available_strategies",
    "coerce_cost_model",
    "compile_bare_metal",
    "compile_model",
    "deploy",
    "estimate_together",
    "fpga_config",
    "ged",
    "generate_fleet_trace",
    "generate_trace",
    "register_cost_model",
    "register_strategy",
    "resolve_cost_model",
    "resolve_strategy",
    "sim_config",
    "unregister_strategy",
]
