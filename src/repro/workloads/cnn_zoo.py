"""CNN model zoo (Fig 3, Fig 14, Fig 18 workloads).

Layer dimensions follow the published architectures closely enough that
parameter counts land near the canonical values (ResNet-50 ~25 M params,
AlexNet ~61 M, GoogleNet ~7 M, MobileNet ~4.2 M); the experiments depend
on those volumes and on graph *shape* (ResNet's skip edges, Inception's
branches), not on numerical outputs.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.workloads.graph import (
    ModelGraph,
    conv_layer,
    depthwise_conv_layer,
    fc_layer,
    pool_layer,
)


def alexnet() -> ModelGraph:
    """AlexNet: 5 convolutions + 3 large fully-connected layers."""
    g = ModelGraph("alexnet")
    g.add_layer(conv_layer("conv1", 224, 224, 3, 64, 11, stride=4))
    g.add_layer(pool_layer("pool1", 56, 56, 64))
    g.add_layer(conv_layer("conv2", 28, 28, 64, 192, 5))
    g.add_layer(pool_layer("pool2", 28, 28, 192))
    g.add_layer(conv_layer("conv3", 14, 14, 192, 384, 3))
    g.add_layer(conv_layer("conv4", 14, 14, 384, 256, 3))
    g.add_layer(conv_layer("conv5", 14, 14, 256, 256, 3))
    g.add_layer(pool_layer("pool5", 14, 14, 256))
    g.add_layer(fc_layer("fc6", 256 * 7 * 7, 4096))
    g.add_layer(fc_layer("fc7", 4096, 4096))
    g.add_layer(fc_layer("fc8", 4096, 1000))
    return g


def _resnet_basic_block(g: ModelGraph, name: str, entry: int, h: int,
                        channels_in: int, channels_out: int,
                        stride: int = 1) -> int:
    """Two 3x3 convs + identity/projection shortcut; returns exit index."""
    c1 = g.add_layer(
        conv_layer(f"{name}.conv1", h, h, channels_in, channels_out, 3,
                   stride=stride),
        inputs=[entry],
    )
    if stride != 1 or channels_in != channels_out:
        skip = g.add_layer(
            conv_layer(f"{name}.proj", h, h, channels_in, channels_out, 1,
                       stride=stride),
            inputs=[entry],
        )
    else:
        skip = entry  # identity skip: the ResNet signature edge
    out_h = max(1, h // stride)
    c2 = g.add_layer(
        conv_layer(f"{name}.conv2", out_h, out_h, channels_out, channels_out, 3),
        inputs=[c1, skip],
    )
    return c2


def _resnet_bottleneck(g: ModelGraph, name: str, entry: int, h: int,
                       channels_in: int, width: int, stride: int = 1) -> int:
    """1x1 down, 3x3, 1x1 up (x4) with shortcut; returns exit index."""
    expanded = width * 4
    c1 = g.add_layer(
        conv_layer(f"{name}.conv1", h, h, channels_in, width, 1),
        inputs=[entry],
    )
    c2 = g.add_layer(
        conv_layer(f"{name}.conv2", h, h, width, width, 3, stride=stride),
        inputs=[c1],
    )
    if stride != 1 or channels_in != expanded:
        skip = g.add_layer(
            conv_layer(f"{name}.proj", h, h, channels_in, expanded, 1,
                       stride=stride),
            inputs=[entry],
        )
    else:
        skip = entry
    out_h = max(1, h // stride)
    c3 = g.add_layer(
        conv_layer(f"{name}.conv3", out_h, out_h, width, expanded, 1),
        inputs=[c2, skip],
    )
    return c3


_RESNET_STAGES = {
    18: ([2, 2, 2, 2], "basic"),
    34: ([3, 4, 6, 3], "basic"),
    50: ([3, 4, 6, 3], "bottleneck"),
}


def resnet(depth: int = 50) -> ModelGraph:
    """ResNet-18/34/50 with explicit shortcut edges."""
    if depth not in _RESNET_STAGES:
        raise CompilationError(
            f"unsupported ResNet depth {depth}; choose from "
            f"{sorted(_RESNET_STAGES)}"
        )
    blocks_per_stage, block_kind = _RESNET_STAGES[depth]
    g = ModelGraph(f"resnet{depth}")
    stem = g.add_layer(conv_layer("stem", 224, 224, 3, 64, 7, stride=2))
    current = g.add_layer(pool_layer("stem.pool", 112, 112, 64), inputs=[stem])
    h = 56
    channels = 64
    widths = [64, 128, 256, 512]
    for stage, (blocks, width) in enumerate(zip(blocks_per_stage, widths)):
        for block in range(blocks):
            stride = 2 if block == 0 and stage > 0 else 1
            name = f"s{stage}.b{block}"
            if block_kind == "basic":
                current = _resnet_basic_block(
                    g, name, current, h, channels, width, stride)
                channels = width
            else:
                current = _resnet_bottleneck(
                    g, name, current, h, channels, width, stride)
                channels = width * 4
            h = max(1, h // stride)
    g.add_layer(fc_layer("fc", channels, 1000), inputs=[current])
    return g


def resnet_block(hw: int, channels: int) -> ModelGraph:
    """A standalone residual block — Fig 15's '16wh_64c' / '20wh_32c'."""
    g = ModelGraph(f"resnet_block_{hw}wh_{channels}c")
    entry = g.add_layer(
        conv_layer("in", hw, hw, channels, channels, 1))
    _resnet_basic_block(g, "block", entry, hw, channels, channels)
    return g


def googlenet() -> ModelGraph:
    """GoogleNet with 9 Inception modules (4 parallel branches each)."""
    g = ModelGraph("googlenet")
    stem = g.add_layer(conv_layer("stem1", 224, 224, 3, 64, 7, stride=2))
    current = g.add_layer(conv_layer("stem2", 56, 56, 64, 192, 3),
                          inputs=[stem])

    def inception(name, entry, h, cin, c1, c3r, c3, c5r, c5, proj):
        b1 = g.add_layer(conv_layer(f"{name}.1x1", h, h, cin, c1, 1),
                         inputs=[entry])
        b2a = g.add_layer(conv_layer(f"{name}.3x3r", h, h, cin, c3r, 1),
                          inputs=[entry])
        b2 = g.add_layer(conv_layer(f"{name}.3x3", h, h, c3r, c3, 3),
                         inputs=[b2a])
        b3a = g.add_layer(conv_layer(f"{name}.5x5r", h, h, cin, c5r, 1),
                          inputs=[entry])
        b3 = g.add_layer(conv_layer(f"{name}.5x5", h, h, c5r, c5, 5),
                         inputs=[b3a])
        b4 = g.add_layer(conv_layer(f"{name}.pool", h, h, cin, proj, 1),
                         inputs=[entry])
        concat = g.add_layer(pool_layer(f"{name}.cat", h, h,
                                        c1 + c3 + c5 + proj, stride=1),
                             inputs=[b1, b2, b3, b4])
        return concat, c1 + c3 + c5 + proj

    current, channels = inception("i3a", current, 28, 192, 64, 96, 128, 16, 32, 32)
    current, channels = inception("i3b", current, 28, channels, 128, 128, 192, 32, 96, 64)
    current, channels = inception("i4a", current, 14, channels, 192, 96, 208, 16, 48, 64)
    current, channels = inception("i4b", current, 14, channels, 160, 112, 224, 24, 64, 64)
    current, channels = inception("i4c", current, 14, channels, 128, 128, 256, 24, 64, 64)
    current, channels = inception("i4d", current, 14, channels, 112, 144, 288, 32, 64, 64)
    current, channels = inception("i4e", current, 14, channels, 256, 160, 320, 32, 128, 128)
    current, channels = inception("i5a", current, 7, channels, 256, 160, 320, 32, 128, 128)
    current, channels = inception("i5b", current, 7, channels, 384, 192, 384, 48, 128, 128)
    g.add_layer(fc_layer("fc", channels, 1000), inputs=[current])
    return g


def mobilenet() -> ModelGraph:
    """MobileNet-v1: depthwise-separable stacks."""
    g = ModelGraph("mobilenet")
    current = g.add_layer(conv_layer("stem", 224, 224, 3, 32, 3, stride=2))
    h, cin = 112, 32
    plan = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2),
        (1024, 1),
    ]
    for index, (cout, stride) in enumerate(plan):
        dw = g.add_layer(
            depthwise_conv_layer(f"dw{index}", h, h, cin, 3, stride=stride),
            inputs=[current],
        )
        h = max(1, h // stride)
        current = g.add_layer(
            conv_layer(f"pw{index}", h, h, cin, cout, 1), inputs=[dw])
        cin = cout
    g.add_layer(fc_layer("fc", 1024, 1000), inputs=[current])
    return g


def yolo_lite() -> ModelGraph:
    """YOLO-LITE: seven small convolutions for non-GPU object detection."""
    g = ModelGraph("yololite")
    h, cin = 224, 3
    for index, cout in enumerate([16, 32, 64, 128, 128, 256]):
        g.add_layer(conv_layer(f"conv{index}", h, h, cin, cout, 3))
        g.add_layer(pool_layer(f"pool{index}", h, h, cout))
        h = max(1, h // 2)
        cin = cout
    g.add_layer(conv_layer("head", h, h, 256, 125, 1))
    return g


def efficientnet_b0() -> ModelGraph:
    """EfficientNet-B0 at MBConv granularity (Fig 3 workload)."""
    g = ModelGraph("efficientnet")
    current = g.add_layer(conv_layer("stem", 224, 224, 3, 32, 3, stride=2))
    h, cin = 112, 32
    plan = [(16, 1, 1), (24, 2, 2), (40, 2, 2), (80, 3, 2),
            (112, 3, 1), (192, 4, 2), (320, 1, 1)]
    for index, (cout, repeats, stride) in enumerate(plan):
        for r in range(repeats):
            s = stride if r == 0 else 1
            expanded = cin * 6
            e = g.add_layer(conv_layer(f"mb{index}.{r}.expand", h, h, cin,
                                       expanded, 1), inputs=[current])
            d = g.add_layer(depthwise_conv_layer(f"mb{index}.{r}.dw", h, h,
                                                 expanded, 3, stride=s),
                            inputs=[e])
            h = max(1, h // s)
            current = g.add_layer(conv_layer(f"mb{index}.{r}.project", h, h,
                                             expanded, cout, 1), inputs=[d])
            cin = cout
    g.add_layer(fc_layer("fc", 1280, 1000),
                inputs=[g.add_layer(conv_layer("head", h, h, cin, 1280, 1),
                                    inputs=[current])])
    return g


def retinanet() -> ModelGraph:
    """RetinaNet: ResNet-50 backbone + FPN heads (Fig 3 workload)."""
    g = resnet(50)
    g.name = "retinanet"
    backbone_exit = g.layer_count - 2  # before the fc
    for level in range(3, 8):
        h = max(1, 224 // (2 ** level))
        p = g.add_layer(conv_layer(f"fpn.p{level}", h, h, 256, 256, 3),
                        inputs=[backbone_exit])
        g.add_layer(conv_layer(f"head.cls{level}", h, h, 256, 9 * 80, 3),
                    inputs=[p])
        g.add_layer(conv_layer(f"head.box{level}", h, h, 256, 9 * 4, 3),
                    inputs=[p])
    return g


def resnet_rs() -> ModelGraph:
    """ResNet-RS (scaled ResNet variant used in Fig 3)."""
    g = resnet(50)
    g.name = "resnet-rs"
    return g


def dlrm() -> ModelGraph:
    """DLRM: embedding-dominated recommendation model (Fig 3 workload)."""
    from repro.workloads.graph import embedding_layer

    g = ModelGraph("dlrm")
    dense = g.add_layer(fc_layer("bottom.fc1", 13, 512))
    dense = g.add_layer(fc_layer("bottom.fc2", 512, 256), inputs=[dense])
    dense = g.add_layer(fc_layer("bottom.fc3", 256, 64), inputs=[dense])
    tables = []
    for table in range(8):
        tables.append(g.add_layer(
            embedding_layer(f"emb{table}", vocab=100_000, dim=64, seq_len=1),
            inputs=[],
        ))
    interact = g.add_layer(fc_layer("interact", 64 * 9, 512),
                           inputs=[dense, *tables])
    top = g.add_layer(fc_layer("top.fc1", 512, 256), inputs=[interact])
    g.add_layer(fc_layer("top.fc2", 256, 1), inputs=[top])
    return g
