"""Transformer model zoo: GPT-2 family, BERT, and Fig 15 micro-blocks.

GPT-2 layer counts line up with the paper's core requests in §6.3.2:
GPT2-small has 12 transformer blocks (-> 12 NPU cores, one block per
core), GPT2-medium 24, GPT2-large 36.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.workloads.graph import (
    ModelGraph,
    attention_layer,
    embedding_layer,
    fc_layer,
    mlp_layer,
)

_GPT2_CONFIGS = {
    "small": dict(blocks=12, dim=768, heads=12),
    "medium": dict(blocks=24, dim=1024, heads=16),
    "large": dict(blocks=36, dim=1280, heads=20),
}


def transformer_block(dim: int, seq_len: int, heads: int = 4,
                      ff_mult: int = 4, name: str | None = None) -> ModelGraph:
    """One attention + MLP block — Fig 15's '128dim_16slen' etc."""
    if dim % heads:
        raise CompilationError(f"dim {dim} not divisible by heads {heads}")
    g = ModelGraph(name or f"transformer_{dim}dim_{seq_len}slen")
    attn = g.add_layer(attention_layer("attn", seq_len, dim, heads))
    g.add_layer(mlp_layer("mlp", seq_len, dim, dim * ff_mult), inputs=[attn])
    return g


def gpt2(size: str = "small", seq_len: int = 1024,
         include_embeddings: bool = False) -> ModelGraph:
    """GPT-2 small/medium/large as a chain of attention+MLP blocks.

    ``include_embeddings=False`` (default) models the common NPU
    deployment where the token embedding and LM head live host-side —
    what lets §6.3.2's core counts equal the block counts (12/24/36).
    """
    config = _GPT2_CONFIGS.get(size)
    if config is None:
        raise CompilationError(
            f"unknown GPT-2 size {size!r}; choose from {sorted(_GPT2_CONFIGS)}"
        )
    dim, heads, blocks = config["dim"], config["heads"], config["blocks"]
    g = ModelGraph(f"gpt2-{size}")
    current: int | None = None
    if include_embeddings:
        current = g.add_layer(embedding_layer("wte", vocab=50257, dim=dim,
                                              seq_len=seq_len))
    for block in range(blocks):
        attn = g.add_layer(
            attention_layer(f"b{block}.attn", seq_len, dim, heads),
            inputs=[current] if current is not None else [],
        )
        current = g.add_layer(
            mlp_layer(f"b{block}.mlp", seq_len, dim, 4 * dim),
            inputs=[attn],
        )
    if include_embeddings:
        g.add_layer(fc_layer("lm_head", dim, 50257), inputs=[current])
    return g


def gpt2_block_count(size: str) -> int:
    """Transformer blocks in a GPT-2 variant (= paper's core request)."""
    config = _GPT2_CONFIGS.get(size)
    if config is None:
        raise CompilationError(f"unknown GPT-2 size {size!r}")
    return config["blocks"]


def bert_base(seq_len: int = 128) -> ModelGraph:
    """BERT-base: 12 encoder blocks, dim 768 (Fig 3 / Fig 14 workload)."""
    g = ModelGraph("bert")
    current = g.add_layer(embedding_layer("embed", vocab=30522, dim=768,
                                          seq_len=seq_len))
    for block in range(12):
        attn = g.add_layer(
            attention_layer(f"b{block}.attn", seq_len, 768, 12),
            inputs=[current],
        )
        current = g.add_layer(
            mlp_layer(f"b{block}.mlp", seq_len, 768, 3072),
            inputs=[attn],
        )
    g.add_layer(fc_layer("pooler", 768, 768), inputs=[current])
    return g
