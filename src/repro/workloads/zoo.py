"""The serving model zoo: concrete builders tenant sessions name.

Every :class:`~repro.serving.workload.TenantSession` carries a ``model``
string; this table binds those strings to zero-arg builders producing
:class:`~repro.workloads.graph.ModelGraph` instances, so the serving
stack and the cost engine always run *real compiled workloads* — a
transformer prefill (bert), decode-shaped gpt2, and a CNN slice of the
zoo — rather than abstract core/byte shapes.

The table's *contents* are part of the trace-determinism contract: the
trace generator draws ``rng.choice(sorted(SERVING_MODEL_BUILDERS))``, so
adding, removing or renaming an entry silently reshuffles every
historical seed's trace (see the golden-hash regression test in
``tests/unit/test_trace_golden.py``). Extend per-experiment via
``CostModel.register_model`` / ``ClusterScheduler.register_model``
instead of editing this table.
"""

from __future__ import annotations

from repro.workloads.cnn_zoo import alexnet, mobilenet, resnet, yolo_lite
from repro.workloads.transformer import bert_base, gpt2

#: name -> zero-arg builder. Kept to the cheaper graphs so a 500-session
#: trace compiles quickly.
SERVING_MODEL_BUILDERS = {
    "alexnet": alexnet,
    "bert-base": lambda: bert_base(128),
    "gpt2-small": lambda: gpt2("small", 256),
    "mobilenet": mobilenet,
    "resnet18": lambda: resnet(18),
    "resnet34": lambda: resnet(34),
    "yolo-lite": yolo_lite,
}
