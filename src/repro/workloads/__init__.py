"""Workload layer: model-graph IR and the model zoo."""

from repro.workloads.cnn_zoo import (
    alexnet,
    dlrm,
    efficientnet_b0,
    googlenet,
    mobilenet,
    resnet,
    resnet_block,
    resnet_rs,
    retinanet,
    yolo_lite,
)
from repro.workloads.graph import Layer, ModelGraph
from repro.workloads.transformer import (
    bert_base,
    gpt2,
    gpt2_block_count,
    transformer_block,
)
from repro.workloads.zoo import SERVING_MODEL_BUILDERS

__all__ = [
    "SERVING_MODEL_BUILDERS",
    "Layer",
    "ModelGraph",
    "alexnet",
    "bert_base",
    "dlrm",
    "efficientnet_b0",
    "googlenet",
    "gpt2",
    "gpt2_block_count",
    "mobilenet",
    "resnet",
    "resnet_block",
    "resnet_rs",
    "retinanet",
    "transformer_block",
    "yolo_lite",
]
