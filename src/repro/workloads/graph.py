"""Model-graph intermediate representation.

A :class:`ModelGraph` is a DAG of :class:`Layer` nodes, each annotated
with the three quantities every experiment in the paper derives from real
models: MAC count (compute), weight bytes (DMA traffic + scratchpad
footprint) and output-activation bytes (NoC traffic between pipeline
stages). Branchy graphs (ResNet shortcuts, Inception modules) are what
make topology mapping matter (§6.3.5) — the compiler maps *graph edges*
onto *mesh links*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError

#: Bytes per element for weights/activations. The paper's prototype
#: extends Gemmini, whose native datatype is int8, so one byte per
#: element; this also matches how the paper quotes model sizes
#: ("ResNet-50 contains 25 million parameters" ~ 25 MB resident).
DTYPE_BYTES = 1


@dataclass(frozen=True)
class Layer:
    """One operator: compute + memory volumes, not tensors."""

    name: str
    kind: str  # "conv" | "fc" | "attn" | "pool" | "embed" | ...
    macs: int
    weight_bytes: int
    output_bytes: int

    def __post_init__(self) -> None:
        if self.macs < 0 or self.weight_bytes < 0 or self.output_bytes < 0:
            raise CompilationError(f"layer {self.name!r} has negative volumes")

    @property
    def flops(self) -> int:
        return 2 * self.macs


class ModelGraph:
    """A DAG of layers with explicit dataflow edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.layers: list[Layer] = []
        self._edges: set[tuple[int, int]] = set()

    # -- construction -----------------------------------------------------
    def add_layer(self, layer: Layer, inputs: list[int] | None = None) -> int:
        """Append ``layer``; wire edges from ``inputs`` (defaults to previous)."""
        index = len(self.layers)
        self.layers.append(layer)
        if inputs is None:
            inputs = [index - 1] if index > 0 else []
        for src in inputs:
            self.add_edge(src, index)
        return index

    def add_edge(self, src: int, dst: int) -> None:
        if not 0 <= src < len(self.layers) or not 0 <= dst < len(self.layers):
            raise CompilationError(
                f"edge ({src}, {dst}) references unknown layer in {self.name}"
            )
        if src >= dst:
            raise CompilationError(
                f"edge ({src}, {dst}) violates topological layer order"
            )
        self._edges.add((src, dst))

    # -- queries -----------------------------------------------------------
    @property
    def edges(self) -> list[tuple[int, int]]:
        return sorted(self._edges)

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    def successors(self, index: int) -> list[int]:
        return sorted(dst for src, dst in self._edges if src == index)

    def predecessors(self, index: int) -> list[int]:
        return sorted(src for src, dst in self._edges if dst == index)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return 2 * self.total_macs

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def total_activation_bytes(self) -> int:
        """Bytes crossing graph edges (each edge moves its source's output)."""
        return sum(self.layers[src].output_bytes for src, _ in self._edges)

    @property
    def parameter_count(self) -> int:
        return self.total_weight_bytes // DTYPE_BYTES

    def scaled(self, batch: int) -> "ModelGraph":
        """The same graph at batch size ``batch``: compute and activations
        scale, weights do not."""
        if batch < 1:
            raise CompilationError(f"batch must be >= 1, got {batch}")
        scaled = ModelGraph(f"{self.name}@b{batch}")
        for layer in self.layers:
            scaled.layers.append(Layer(
                name=layer.name,
                kind=layer.kind,
                macs=layer.macs * batch,
                weight_bytes=layer.weight_bytes,
                output_bytes=layer.output_bytes * batch,
            ))
        scaled._edges = set(self._edges)
        return scaled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ModelGraph {self.name!r}: {self.layer_count} layers, "
                f"{self.parameter_count / 1e6:.1f}M params>")


# -- layer factories ----------------------------------------------------------

def conv_layer(name: str, h: int, w: int, cin: int, cout: int, kernel: int,
               stride: int = 1) -> Layer:
    """Standard convolution; output spatial dims follow the stride."""
    out_h, out_w = max(1, h // stride), max(1, w // stride)
    macs = out_h * out_w * cin * cout * kernel * kernel
    return Layer(
        name=name,
        kind="conv",
        macs=macs,
        weight_bytes=cin * cout * kernel * kernel * DTYPE_BYTES,
        output_bytes=out_h * out_w * cout * DTYPE_BYTES,
    )


def depthwise_conv_layer(name: str, h: int, w: int, channels: int,
                         kernel: int, stride: int = 1) -> Layer:
    out_h, out_w = max(1, h // stride), max(1, w // stride)
    macs = out_h * out_w * channels * kernel * kernel
    return Layer(
        name=name,
        kind="dwconv",
        macs=macs,
        weight_bytes=channels * kernel * kernel * DTYPE_BYTES,
        output_bytes=out_h * out_w * channels * DTYPE_BYTES,
    )


def fc_layer(name: str, in_features: int, out_features: int) -> Layer:
    return Layer(
        name=name,
        kind="fc",
        macs=in_features * out_features,
        weight_bytes=in_features * out_features * DTYPE_BYTES,
        output_bytes=out_features * DTYPE_BYTES,
    )


def attention_layer(name: str, seq_len: int, dim: int, heads: int) -> Layer:
    """Multi-head self-attention: QKV/output projections + score matmuls."""
    projections = 4 * dim * dim * seq_len
    scores = 2 * seq_len * seq_len * dim
    return Layer(
        name=name,
        kind="attn",
        macs=projections + scores,
        weight_bytes=4 * dim * dim * DTYPE_BYTES,
        output_bytes=seq_len * dim * DTYPE_BYTES,
    )


def mlp_layer(name: str, seq_len: int, dim: int, hidden: int) -> Layer:
    """Transformer feed-forward block (two projections)."""
    macs = 2 * seq_len * dim * hidden
    return Layer(
        name=name,
        kind="mlp",
        macs=macs,
        weight_bytes=2 * dim * hidden * DTYPE_BYTES,
        output_bytes=seq_len * dim * DTYPE_BYTES,
    )


def pool_layer(name: str, h: int, w: int, channels: int,
               stride: int = 2) -> Layer:
    out_h, out_w = max(1, h // stride), max(1, w // stride)
    return Layer(
        name=name,
        kind="pool",
        macs=0,
        weight_bytes=0,
        output_bytes=out_h * out_w * channels * DTYPE_BYTES,
    )


def embedding_layer(name: str, vocab: int, dim: int, seq_len: int) -> Layer:
    return Layer(
        name=name,
        kind="embed",
        macs=0,
        weight_bytes=vocab * dim * DTYPE_BYTES,
        output_bytes=seq_len * dim * DTYPE_BYTES,
    )
