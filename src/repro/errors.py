"""Exception hierarchy for the vNPU reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses are grouped by the subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An SoC or component configuration is invalid or inconsistent."""


class TopologyError(ReproError):
    """A topology operation failed (unknown node, disconnected graph, ...)."""


class RoutingError(ReproError):
    """Routing-table lookup or NoC routing failed."""


class IsolationViolation(RoutingError):
    """A virtual NPU attempted to reach a core outside its topology."""


class TranslationFault(ReproError):
    """An address translation failed (no matching RTT/page-table entry)."""

    def __init__(self, virtual_address: int, detail: str = "") -> None:
        self.virtual_address = virtual_address
        message = f"translation fault at VA {virtual_address:#x}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class PermissionFault(TranslationFault):
    """An address translated but the requested access right was missing."""

    def __init__(self, virtual_address: int, requested: str, granted: str) -> None:
        self.requested = requested
        self.granted = granted
        super().__init__(
            virtual_address,
            detail=f"requested {requested!r} but entry grants {granted!r}",
        )


class AllocationError(ReproError):
    """A resource allocation (memory or NPU cores) could not be satisfied."""


class OutOfMemoryError(AllocationError):
    """The buddy allocator has no free block of the requested size."""


class TopologyLockIn(AllocationError):
    """No placement of the requested topology exists (the paper's lock-in).

    Raised by exact-mapping allocation when enough *cores* are free but no
    subgraph matches the requested topology exactly.
    """


class HypervisorError(ReproError):
    """Invalid hypervisor operation (bad VMID, double-free, hyper-mode)."""


class HyperModeViolation(HypervisorError):
    """A guest attempted an operation reserved for hyper mode."""


class ProgramError(ReproError):
    """A per-core instruction program is malformed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state (deadlock...)."""


class CompilationError(ReproError):
    """The compiler could not partition or map a workload."""


class ServingError(ReproError):
    """The serving layer was misconfigured (bad policy, bad trace...)."""


class WorkerFailure(ServingError):
    """A sharded-simulation worker process died (pipe EOF / broken pipe)."""


class EpochTimeoutError(WorkerFailure):
    """A sharded-simulation worker missed its epoch deadline (hung).

    Raised by the coordinator's deadline-based ``conn.poll()`` watchdog
    when a worker neither reports nor dies within
    ``epoch_timeout_seconds``; the supervisor treats it exactly like a
    worker death (kill, respawn from the last checkpoint, replay).
    """
