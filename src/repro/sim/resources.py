"""Shared-resource primitives for the discrete-event engine.

Three primitives cover every hardware structure in the chip model:

- :class:`Resource` — a counted semaphore with FIFO ordering. NoC links,
  HBM channels and DMA issue slots are ``Resource(capacity=1)`` instances;
  a holder models *occupancy time* by sleeping while holding the grant.
- :class:`Store` — an unbounded FIFO of items with blocking ``get``. The
  receive queues of NoC ports and the controller's instruction queues are
  stores.
- :class:`Mutex` — convenience alias for a capacity-1 resource.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, Simulator


class Resource:
    """A counted, FIFO-fair resource.

    Usage inside a process::

        grant = yield resource.acquire()
        yield sim.timeout(occupancy)
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Statistics used by benchmarks to report contention.
        self.total_acquisitions = 0
        self.total_wait_cycles = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the resource."""
        grant = self.sim.event(name=f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            grant.succeed(self.sim.now)
        else:
            grant.value = self.sim.now  # stash request time for stats
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            grant = self._waiters.popleft()
            requested_at = grant.value
            grant.value = None
            self.total_acquisitions += 1
            self.total_wait_cycles += self.sim.now - requested_at
            grant.triggered = False  # re-arm: value was used as scratch
            grant.succeed(self.sim.now)
        else:
            self._in_use -= 1


class Mutex(Resource):
    """A capacity-1 resource."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)


class Store:
    """An unbounded FIFO with blocking ``get`` and immediate ``put``."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item (FIFO order)."""
        request = self.sim.event(name=f"get:{self.name}")
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request

    def peek_all(self) -> list[Any]:
        """Non-destructive snapshot of queued items (for assertions)."""
        return list(self._items)
