"""A small discrete-event simulation engine.

The engine models time in *cycles* (integers). Simulated activities are
Python generators ("processes") that yield :class:`Event` objects; the
engine resumes a process when the event it is waiting on fires. This is the
substrate under the NPU chip model: cores, DMA engines, NoC links and the
NPU controller all run as processes.

The design intentionally mirrors a tiny subset of SimPy:

- :meth:`Simulator.process` registers a generator as a process.
- A process yields ``sim.timeout(n)`` to advance ``n`` cycles,
  ``sim.event()`` (triggered later by another process), or another
  process handle to join it.
- :meth:`Simulator.run` drives the event loop until no events remain, a
  deadline is reached, or every process has finished.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> _ = sim.process(worker(sim))
>>> sim.run()
>>> log
[5]
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from typing import Any

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, optionally carrying a value.
    Any number of processes may wait on the same event; all are resumed
    (in registration order) when it fires.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "_dispatched", "value", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list = []
        self.triggered = False
        self._dispatched = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, waking all waiters at the current cycle."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        self.sim._schedule(self.sim.now, self)
        return self

    def add_callback(self, callback) -> None:
        """Register a waiter; late registration still delivers the value.

        If the event has already been dispatched, the callback is delivered
        through a fresh proxy event at the current cycle so that joining an
        already-finished process (or re-waiting a fired event) never hangs.
        """
        if self._dispatched:
            proxy = Event(self.sim, name=f"late:{self.name}")
            proxy._callbacks.append(callback)
            proxy.succeed(self.value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires a fixed number of cycles in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Timeouts are the hot path (every compute/DMA/NoC wait makes
        # one); inlining Event.__init__ here — constant name, no super()
        # call — is worth ~25% engine throughput. Kept in lockstep with
        # Event by test_sim_engine's slot-initialization check: a new
        # Event field must be initialized here too.
        self.sim = sim
        self.name = "timeout"
        self._callbacks = []
        self.triggered = True
        self._dispatched = False
        self.value = None
        self.delay = int(delay)
        sim._schedule(sim.now + self.delay, self)


class Process(Event):
    """A running generator. Also an event: it fires when the generator ends.

    The value of the event is the generator's return value (``StopIteration``
    payload), so processes can be joined with ``result = yield other_proc``.
    """

    __slots__ = ("generator", "alive")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.alive = True
        # Kick off the process at the current cycle.
        bootstrap = Event(sim, name=f"start:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self.generator.send(event.value)
        except StopIteration as stop:
            self.alive = False
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        target.add_callback(self._resume)


class Simulator:
    """The event loop: a priority queue of (cycle, sequence, event)."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        self._processes: list[Process] = []

    # -- construction -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event (fired later via ``succeed``)."""
        return Event(self, name=name)

    def timeout(self, delay: int) -> Timeout:
        """An event that fires ``delay`` cycles from now."""
        return Timeout(self, delay)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current cycle."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # -- scheduling --------------------------------------------------------
    def _schedule(self, cycle: int, event: Event) -> None:
        heapq.heappush(self._queue, (cycle, next(self._sequence), event))

    def run(self, until: int | None = None) -> int:
        """Drive the loop; returns the final cycle.

        ``until`` bounds simulated time; events scheduled beyond it remain
        queued (useful for sampling a steady state).
        """
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            # Unbounded fast path: pop directly (no peek-then-pop double
            # heap access) and resume the common single-waiter case
            # without the generic callback loop.
            while queue:
                cycle, _seq, event = pop(queue)
                self.now = cycle
                callbacks = event._callbacks
                event._callbacks = []
                event._dispatched = True
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
            return self.now
        while queue:
            cycle = queue[0][0]
            if cycle > until:
                self.now = until
                return self.now
            _, _seq, event = pop(queue)
            self.now = cycle
            callbacks = event._callbacks
            event._callbacks = []
            event._dispatched = True
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
        return self.now

    def run_until_processes_done(self, limit: int = 10_000_000_000) -> int:
        """Run until every registered process finished; detect deadlock.

        Raises :class:`SimulationError` if the queue drains while some
        process is still alive (a wait that nobody will ever satisfy).
        """
        self.run(until=limit)
        stuck = [p.name for p in self._processes if p.alive]
        if stuck:
            raise SimulationError(
                f"deadlock at cycle {self.now}: processes still waiting: {stuck}"
            )
        # Every process finished: drop them so long-lived simulators (a
        # serving loop spawns one process per session) don't scan an
        # ever-growing list on the next call.
        self._processes.clear()
        return self.now

    def all_of(self, events: list[Event], name: str = "all_of") -> Event:
        """An event that fires once every event in ``events`` has fired."""
        gate = self.event(name=name)
        remaining = {"count": len(events)}
        if remaining["count"] == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * len(events)

        def make_callback(index: int):
            def _cb(ev: Event) -> None:
                results[index] = ev.value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    gate.succeed(results)

            return _cb

        for index, ev in enumerate(events):
            ev.add_callback(make_callback(index))
        return gate
