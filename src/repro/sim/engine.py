"""A small discrete-event simulation engine.

The engine models time in *cycles* (integers). Simulated activities are
Python generators ("processes") that yield :class:`Event` objects; the
engine resumes a process when the event it is waiting on fires. This is the
substrate under the NPU chip model: cores, DMA engines, NoC links and the
NPU controller all run as processes.

The design intentionally mirrors a tiny subset of SimPy:

- :meth:`Simulator.process` registers a generator as a process.
- A process yields ``sim.timeout(n)`` to advance ``n`` cycles,
  ``sim.event()`` (triggered later by another process), or another
  process handle to join it.
- :meth:`Simulator.run` drives the event loop until no events remain, a
  deadline is reached, or every process has finished.

Scheduler data structure
------------------------
Events live in a **calendar queue**: one FIFO bucket (a plain list) per
distinct cycle, plus a min-heap of the occupied cycles. Dispatch order is
the exact ``(cycle, sequence)`` total order of the original binary-heap
engine — all events at cycle *c* fire before any at *c' > c*, and within
one cycle events fire in scheduling order, because appends to a bucket
happen in sequence order by construction. The win over a heap: one heap
operation per *occupied cycle* instead of two per *event*, so same-cycle
bursts (the serving schedulers' timeout-hot loops, broadcast fan-outs)
are drained in a single bucket sweep. Events scheduled *at the current
cycle from inside the sweep* (zero timeouts, ``succeed`` at ``now``) are
appended to the live bucket and drained by the same sweep, exactly as
the heap dispatched them.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> _ = sim.process(worker(sim))
>>> sim.run()
>>> log
[5]
"""

from __future__ import annotations

from collections.abc import Generator
from heapq import heappop, heappush
from typing import Any

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, optionally carrying a value.
    Any number of processes may wait on the same event; all are resumed
    (in registration order) when it fires.

    Waiters are stored in a single ``_callback`` slot with an ``_extra``
    overflow list: nearly every event on the hot path (timeouts, process
    completions, resource grants) has exactly one waiter, so the common
    case allocates no list at all.
    """

    __slots__ = ("sim", "_callback", "_extra", "triggered", "_dispatched",
                 "value", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callback = None
        self._extra: list | None = None
        self.triggered = False
        self._dispatched = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, waking all waiters at the current cycle."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        # Inlined self.sim._schedule(self.sim.now, self): succeed fires on
        # every process completion and resource grant, so the extra method
        # call is measurable engine-wide.
        sim = self.sim
        cycle = sim.now
        buckets = sim._buckets
        bucket = buckets.get(cycle)
        if bucket is None:
            buckets[cycle] = [self]
            heappush(sim._cycle_heap, cycle)
        else:
            bucket.append(self)
        return self

    def add_callback(self, callback) -> None:
        """Register a waiter; late registration still delivers the value.

        If the event has already been dispatched, the callback is delivered
        through a fresh proxy event at the current cycle so that joining an
        already-finished process (or re-waiting a fired event) never hangs.
        """
        if self._dispatched:
            proxy = Event(self.sim, name=f"late:{self.name}")
            proxy._callback = callback
            proxy.succeed(self.value)
        elif self._callback is None:
            self._callback = callback
        elif self._extra is None:
            self._extra = [callback]
        else:
            self._extra.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires a fixed number of cycles in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Timeouts are the hot path (every compute/DMA/NoC wait makes
        # one); inlining Event.__init__ *and* the bucket insertion here —
        # constant name, no super() call, no method dispatch — is worth
        # ~25% engine throughput. Kept in lockstep with Event by
        # test_sim_engine's slot-initialization check: a new Event field
        # must be initialized here too.
        self.sim = sim
        self.name = "timeout"
        self._callback = None
        self._extra = None
        self.triggered = True
        self._dispatched = False
        self.value = None
        delay = int(delay)
        self.delay = delay
        cycle = sim.now + delay
        buckets = sim._buckets
        bucket = buckets.get(cycle)
        if bucket is None:
            buckets[cycle] = [self]
            heappush(sim._cycle_heap, cycle)
        else:
            bucket.append(self)


class Process(Event):
    """A running generator. Also an event: it fires when the generator ends.

    The value of the event is the generator's return value (``StopIteration``
    payload), so processes can be joined with ``result = yield other_proc``.

    ``_send`` and ``_resume_cb`` cache the generator's bound ``send`` and
    this process's bound ``_resume``: both would otherwise be re-created
    on every event the process waits on.
    """

    __slots__ = ("generator", "alive", "_send", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.alive = True
        self._send = generator.send
        self._resume_cb = self._resume
        # Kick off the process at the current cycle.
        bootstrap = Event(sim, name=f"start:{self.name}")
        bootstrap._callback = self._resume_cb
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._send(event.value)
        except StopIteration as stop:
            self.alive = False
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        target.add_callback(self._resume_cb)


class _AllOfState:
    """Countdown shared by one ``all_of`` gate: a plain int decrement."""

    __slots__ = ("gate", "results", "remaining")

    def __init__(self, gate: Event, count: int) -> None:
        self.gate = gate
        self.results: list[Any] = [None] * count
        self.remaining = count


class _AllOfWaiter:
    """Per-event callback for ``all_of`` — a ``__slots__`` callable.

    Replaces the previous dict-based countdown closure (one dict plus one
    closure cell per gate, one closure per event) on the broadcast hot
    path with two fixed-slot objects and an int decrement.
    """

    __slots__ = ("state", "index")

    def __init__(self, state: _AllOfState, index: int) -> None:
        self.state = state
        self.index = index

    def __call__(self, event: Event) -> None:
        state = self.state
        state.results[self.index] = event.value
        state.remaining -= 1
        if not state.remaining:
            state.gate.succeed(state.results)


class Simulator:
    """The event loop: a calendar queue of per-cycle FIFO buckets.

    ``_buckets`` maps cycle -> list of events scheduled for that cycle in
    scheduling (sequence) order; ``_cycle_heap`` is a min-heap of the
    occupied cycles. A cycle is pushed exactly once (when its bucket is
    created) and popped exactly once (when its bucket is drained), so the
    heap never holds duplicates or stale entries.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._buckets: dict[int, list[Event]] = {}
        self._cycle_heap: list[int] = []
        self._processes: list[Process] = []

    # -- construction -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event (fired later via ``succeed``)."""
        return Event(self, name=name)

    def timeout(self, delay: int) -> Timeout:
        """An event that fires ``delay`` cycles from now."""
        return Timeout(self, delay)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current cycle."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # -- scheduling --------------------------------------------------------
    def _schedule(self, cycle: int, event: Event) -> None:
        """Append ``event`` to the cycle's bucket (creating it if needed).

        The hot constructors (``Timeout.__init__``, ``Event.succeed``)
        inline this body; keep them in lockstep when changing it.
        """
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [event]
            heappush(self._cycle_heap, cycle)
        else:
            bucket.append(event)

    def _drain(self, until: int | None) -> int:
        """Dispatch buckets in cycle order; the shared engine core.

        Each occupied cycle is drained in one sweep: iterating the bucket
        list picks up events appended *during* the sweep (re-entrant
        same-cycle scheduling), which is exactly where the heap engine
        would have dispatched them. Does not advance ``now`` past the
        last dispatched cycle when the queue empties — callers decide
        whether the deadline is a target time (:meth:`run`) or a safety
        horizon (:meth:`run_until_processes_done`).
        """
        cycle_heap = self._cycle_heap
        buckets = self._buckets
        if until is None:
            while cycle_heap:
                cycle = heappop(cycle_heap)
                self.now = cycle
                bucket = buckets[cycle]
                for event in bucket:
                    event._dispatched = True
                    callback = event._callback
                    if callback is not None:
                        callback(event)
                        extra = event._extra
                        if extra is not None:
                            for cb in extra:
                                cb(event)
                del buckets[cycle]
            return self.now
        while cycle_heap:
            cycle = cycle_heap[0]
            if cycle > until:
                self.now = until
                return self.now
            heappop(cycle_heap)
            self.now = cycle
            bucket = buckets[cycle]
            for event in bucket:
                event._dispatched = True
                callback = event._callback
                if callback is not None:
                    callback(event)
                    extra = event._extra
                    if extra is not None:
                        for cb in extra:
                            cb(event)
            del buckets[cycle]
        return self.now

    # -- cooperative stepping ----------------------------------------------
    def peek(self) -> int | None:
        """The next occupied cycle, or ``None`` when the queue is empty.

        Never advances the clock; the cooperative-driver companion to
        :meth:`step` (an asyncio control plane peeks to decide how long
        to sleep before dispatching the next bucket).
        """
        return self._cycle_heap[0] if self._cycle_heap else None

    def step(self) -> int | None:
        """Dispatch exactly one bucket (one occupied cycle); return its
        cycle, or ``None`` when the queue is empty.

        The sweep is the same code path as :meth:`_drain`'s inner loop —
        events appended to the live bucket mid-sweep are drained by the
        same sweep — so ``while sim.step() is not None: ...`` dispatches
        the exact event order ``run()`` does. This is the yield point a
        cooperative driver needs: between buckets the queue is parked in
        a snapshot-valid state and control can return to an event loop.
        """
        if not self._cycle_heap:
            return None
        buckets = self._buckets
        cycle = heappop(self._cycle_heap)
        self.now = cycle
        bucket = buckets[cycle]
        for event in bucket:
            event._dispatched = True
            callback = event._callback
            if callback is not None:
                callback(event)
                extra = event._extra
                if extra is not None:
                    for cb in extra:
                        cb(event)
        del buckets[cycle]
        return cycle

    def finish_processes(self) -> None:
        """Deadlock check + process-list reset after a drained queue.

        The tail of :meth:`run_until_processes_done`, callable on its
        own by drivers that advanced the clock through :meth:`step` or
        :meth:`run`: raises :class:`SimulationError` naming any process
        still waiting, otherwise clears the (now all finished) process
        list so long-lived simulators don't scan it forever.
        """
        stuck = [p.name for p in self._processes if p.alive]
        if stuck:
            raise SimulationError(
                f"deadlock at cycle {self.now}: processes still waiting: {stuck}"
            )
        # Every process finished: drop them so long-lived simulators (a
        # serving loop spawns one process per session) don't scan an
        # ever-growing list on the next call.
        self._processes.clear()

    def run(self, until: int | None = None) -> int:
        """Drive the loop; returns the final cycle.

        ``until`` bounds simulated time; events scheduled beyond it remain
        queued (useful for sampling a steady state). After a bounded run
        the clock always reads ``until`` — even when the queue drained
        early — so steady-state sampling loops never observe a stale
        ``now`` (SimPy semantics).
        """
        final = self._drain(until)
        if until is not None and final < until:
            self.now = until
        return self.now

    def run_until_processes_done(self, limit: int = 10_000_000_000) -> int:
        """Run until every registered process finished; detect deadlock.

        Raises :class:`SimulationError` if the queue drains while some
        process is still alive (a wait that nobody will ever satisfy).
        ``limit`` is a safety horizon, not a target time: when the queue
        drains early the clock stays at the last dispatched cycle (so
        makespans and deadlock reports name the real final cycle, not the
        horizon).
        """
        self._drain(limit)
        self.finish_processes()
        return self.now

    def all_of(self, events: list[Event], name: str = "all_of") -> Event:
        """An event that fires once every event in ``events`` has fired."""
        gate = self.event(name=name)
        if not events:
            gate.succeed([])
            return gate
        state = _AllOfState(gate, len(events))
        for index, ev in enumerate(events):
            ev.add_callback(_AllOfWaiter(state, index))
        return gate
