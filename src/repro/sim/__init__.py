"""Discrete-event simulation substrate (engine, processes, resources)."""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.resources import Mutex, Resource, Store

__all__ = [
    "Event",
    "Mutex",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
