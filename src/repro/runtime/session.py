"""High-level convenience API: compile, place, estimate in one call.

This is the surface most examples and benchmarks use::

    chip = Chip(sim_config(36))
    hv = Hypervisor(chip)
    vnpu = hv.create_vnpu(VNpuSpec("tenant", MeshShape(3, 4), 256 * MB))
    report = deploy(resnet(34), vnpu, chip)
    print(report.fps, report.warmup_cycles)

Multi-tenant runs share one :class:`~repro.runtime.pipeline.SteadyStateModel`
so contention is modelled across tenants (:func:`estimate_together`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.compiler.mapper import MappedTask, map_stages
from repro.compiler.partitioner import partition
from repro.compiler.placement import (
    PlacedTask,
    place_bare_metal,
    place_on_vnpu,
)
from repro.core.vnpu import VirtualNPU
from repro.errors import CompilationError
from repro.runtime.pipeline import SteadyStateModel, TaskEstimate
from repro.workloads.graph import ModelGraph


@dataclass
class RunReport:
    """Everything a tenant sees about one deployed model."""

    task: str
    fps: float
    iteration_cycles: int
    warmup_cycles: int
    bottleneck: tuple
    interference_fraction: float
    placed: PlacedTask

    def warmup_seconds(self, chip: Chip) -> float:
        """Wall-clock warm-up time on ``chip`` (weight-load, §6.3.4)."""
        return chip.seconds(self.warmup_cycles)


def compile_model(model: ModelGraph, vnpu: VirtualNPU,
                  chip: Chip) -> PlacedTask:
    """Partition + map + place one model onto a vNPU."""
    plan = partition(
        model, vnpu.core_count,
        weight_zone_bytes=chip.config.core.weight_zone_bytes,
    )
    mapped = map_stages(plan, vnpu.virtual_topology(), name=model.name)
    return place_on_vnpu(mapped, vnpu, chip.topology)


def compile_bare_metal(model: ModelGraph, chip: Chip,
                       cores: list[int] | None = None) -> PlacedTask:
    """Compile directly onto physical cores (the §6.3.3 control)."""
    topology = chip.topology
    if cores is not None:
        if not topology.is_connected(set(cores)):
            raise CompilationError("bare-metal core set must be connected")
        topology = topology.subtopology(cores)
    plan = partition(
        model, topology.node_count,
        weight_zone_bytes=chip.config.core.weight_zone_bytes,
    )
    mapped = map_stages(plan, topology, name=model.name)
    return place_bare_metal(mapped, chip.topology)


def estimate_together(chip: Chip, placed: list[PlacedTask],
                      uvm_tasks: set[str] | None = None
                      ) -> dict[str, RunReport]:
    """Steady-state estimates for co-resident tasks, with warm-up."""
    model = SteadyStateModel(chip.config)
    estimates = model.estimate(placed, uvm_tasks=uvm_tasks)
    total_interfaces = max(1, len(chip.config.memory_interface_cores))
    reports = {}
    for task in placed:
        estimate = estimates[task.name]
        interfaces = chip.memory_interfaces_spanned(task.cores)
        warmup = model.warmup_cycles(task, interfaces, total_interfaces)
        reports[task.name] = RunReport(
            task=task.name,
            fps=estimate.fps,
            iteration_cycles=estimate.iteration_cycles,
            warmup_cycles=warmup,
            bottleneck=estimate.bottleneck,
            interference_fraction=estimate.interference_fraction,
            placed=task,
        )
    return reports


def deploy(model: ModelGraph, vnpu: VirtualNPU, chip: Chip) -> RunReport:
    """One-call deployment of a single model on a single vNPU."""
    placed = compile_model(model, vnpu, chip)
    return estimate_together(chip, [placed])[placed.name]
