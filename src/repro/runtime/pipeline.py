"""Steady-state pipeline performance model (Figs 15, 16, 18).

For a saturated dataflow pipeline the iteration interval equals the
busiest resource's per-iteration occupancy. The model therefore sums,
for every placed task, the per-iteration busy cycles of:

- each **core** — kernel compute + send/receive engine serialization
  (+ the vRouter's per-flow engine overhead when virtualized);
- each **NoC link** — packet serialization of every flow routed over it
  (this is where a stretched zig-zag mapping and cross-VM DOR leakage
  hurt: more links per flow, more flows per link);
- the **global memory system** — only used per-iteration by UVM-style
  tasks, which stage every inter-core transfer through memory.

A task's iteration interval is the maximum total busy among resources it
touches — *total* including other tasks sharing the resource, which is
how multi-tenant interference (Fig 15 right, Fig 16 TDM) emerges. Cores
shared by two virtual cores (MIG's time-division multiplexing) simply
accumulate both compute loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch import calibration
from repro.arch.compute import ComputeModel
from repro.arch.config import SoCConfig
from repro.compiler.placement import PlacedTask
from repro.errors import ConfigError

#: Resource keys: ("core", id) | ("link", (u, v)) | ("mem",)
Resource = tuple


@dataclass
class TaskEstimate:
    """Steady-state prediction for one task."""

    name: str
    iteration_cycles: int
    fps: float
    bottleneck: Resource
    #: This task's own busy cycles on its bottleneck resource.
    own_bottleneck_cycles: int
    #: Busy contributed by *other* tasks on that resource (interference).
    interference_cycles: int
    core_busy: dict[int, int] = field(default_factory=dict)

    @property
    def interference_fraction(self) -> float:
        total = self.own_bottleneck_cycles + self.interference_cycles
        return self.interference_cycles / total if total else 0.0


class SteadyStateModel:
    """Bottleneck analysis over one chip configuration."""

    def __init__(self, config: SoCConfig) -> None:
        self.config = config
        self.compute = ComputeModel(config.core)

    # -- per-flow costs ------------------------------------------------------
    def _flow_serialization(self, nbytes: int) -> int:
        packets = max(1, math.ceil(nbytes / self.config.noc.packet_bytes))
        per_packet = (self.config.noc.packet_serialization()
                      + self.config.noc.packet_handshake)
        return packets * per_packet

    def _uvm_core_cycles(self, nbytes: int) -> int:
        return (math.ceil(nbytes / calibration.UVM_MEMORY_BYTES_PER_CYCLE)
                + calibration.UVM_SYNC_LATENCY)

    def _uvm_memory_cycles(self, nbytes: int) -> int:
        rate = min(
            self.config.memory.bytes_per_cycle(self.config.frequency_hz),
            calibration.UVM_AGGREGATE_BYTES_PER_CYCLE,
        )
        return math.ceil(2 * nbytes / rate)  # write + read

    # -- estimation --------------------------------------------------------
    def estimate(self, tasks: list[PlacedTask],
                 uvm_tasks: set[str] | None = None) -> dict[str, TaskEstimate]:
        """Estimate all ``tasks`` sharing the chip.

        ``uvm_tasks`` names tasks whose flows synchronize through global
        memory instead of the NoC (the UVM baseline of §6.3.1).
        """
        if not tasks:
            raise ConfigError("estimate needs at least one task")
        uvm_tasks = uvm_tasks or set()
        busy: dict[Resource, int] = {}
        touched: dict[str, set[Resource]] = {task.name: set() for task in tasks}
        own: dict[tuple[str, Resource], int] = {}

        def charge(task: PlacedTask, resource: Resource, cycles: int) -> None:
            busy[resource] = busy.get(resource, 0) + cycles
            touched[task.name].add(resource)
            own[(task.name, resource)] = (
                own.get((task.name, resource), 0) + cycles
            )

        mem_rate = self.config.memory.bytes_per_cycle(self.config.frequency_hz)
        channel_rate = self.config.memory.channel_bytes_per_cycle(
            self.config.frequency_hz)
        for task in tasks:
            is_uvm = task.name in uvm_tasks
            for core, macs in task.core_macs.items():
                charge(task, ("core", core), self.compute.cycles_for_macs(macs))
            for core, nbytes in task.stream_bytes.items():
                # Per-iteration weight re-streaming (oversized stages).
                charge(task, ("core", core), math.ceil(nbytes / channel_rate))
                charge(task, ("mem",), math.ceil(nbytes / mem_rate))
            for flow in task.flows:
                if is_uvm:
                    # UVM staging is on the core's critical path: the core
                    # itself issues the loads/stores and spins on the sync
                    # flag (§6.2.3 / Fig 13's memory-synchronization bars).
                    cost = self._uvm_core_cycles(flow.nbytes)
                    charge(task, ("core", flow.src), cost)
                    charge(task, ("core", flow.dst), cost)
                    charge(task, ("mem",), self._uvm_memory_cycles(flow.nbytes))
                    continue
                # NoC transfers run on the decoupled send/receive engines
                # and overlap with compute (the paper: "the broadcast
                # overhead [can] be fully overlapped with kernel
                # execution"). The core only pays descriptor issue plus
                # the vRouter's lookup/rewrite/meta-fetch when virtualized;
                # serialization lands on the links.
                serialization = self._flow_serialization(flow.nbytes)
                charge(task, ("core", flow.src),
                       self.config.noc.transfer_setup + task.vrouter_overhead)
                charge(task, ("core", flow.dst),
                       self.config.noc.packet_handshake)
                for u, v in zip(flow.path, flow.path[1:]):
                    charge(task, ("link", (u, v)), serialization)

        estimates = {}
        for task in tasks:
            resources = touched[task.name]
            bottleneck = max(resources, key=lambda r: busy[r])
            total = busy[bottleneck]
            own_cycles = own.get((task.name, bottleneck), 0)
            estimates[task.name] = TaskEstimate(
                name=task.name,
                iteration_cycles=total,
                fps=self.config.frequency_hz / total if total else float("inf"),
                bottleneck=bottleneck,
                own_bottleneck_cycles=own_cycles,
                interference_cycles=total - own_cycles,
                core_busy={
                    core: busy[("core", core)]
                    for core in task.core_macs
                },
            )
        return estimates

    # -- warm-up (§6.3.4) -------------------------------------------------------
    def warmup_cycles(self, task: PlacedTask, interface_count: int,
                      total_interfaces: int) -> int:
        """Weight-load time: bandwidth proportional to memory interfaces."""
        if total_interfaces < 1:
            raise ConfigError("chip needs at least one memory interface")
        share = min(1.0, max(interface_count, 1) / total_interfaces)
        rate = self.config.memory.bytes_per_cycle(self.config.frequency_hz) * share
        return (self.config.memory.access_latency
                + math.ceil(task.total_weight_bytes() / rate))
