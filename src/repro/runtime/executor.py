"""Event-driven execution of task programs on the simulated chip.

Where :mod:`repro.runtime.pipeline` predicts steady-state throughput
analytically, the executor actually *runs* per-core instruction streams
as simulation processes: DMA loads go through the task's translator, NoC
sends route through the vNPU's vRouter with link-level contention, and
receives block on mailboxes. It is the fidelity reference the analytic
model is validated against in the integration tests, and the engine
behind the micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.chip import Chip
from repro.arch.dma import DmaEngine, TensorAccess
from repro.core.vnpu import VirtualNPU
from repro.errors import ProgramError
from repro.isa.instructions import Compute, DmaLoad, DmaStore, Receive, Send
from repro.isa.program import TaskProgram
from repro.mem.address_space import PhysicalTranslator


@dataclass
class ExecutionReport:
    """Outcome of running one task program to completion."""

    task: str
    total_cycles: int
    core_finish_cycles: dict[int, int] = field(default_factory=dict)
    compute_cycles: dict[int, int] = field(default_factory=dict)
    dma_cycles: dict[int, int] = field(default_factory=dict)
    noc_cycles: dict[int, int] = field(default_factory=dict)
    foreign_traversals: int = 0

    @property
    def critical_core(self) -> int:
        return max(self.core_finish_cycles, key=self.core_finish_cycles.get)


class Executor:
    """Runs task programs on one chip, optionally through a vNPU.

    ``dma_burst_bytes`` overrides the DMA engines' burst granularity
    (default: the calibrated hardware burst). Coarser bursts keep the
    modelled bandwidth/latency identical for bandwidth-bound streams
    while shrinking the per-burst bookkeeping — the knob the cost
    engine's executor tier uses to price large weight streams quickly.
    """

    def __init__(self, chip: Chip,
                 dma_burst_bytes: int | None = None) -> None:
        self.chip = chip
        self.dma_burst_bytes = dma_burst_bytes

    def run(self, program: TaskProgram, vnpu: VirtualNPU | None = None,
            iterations: int = 1) -> ExecutionReport:
        """Execute ``program`` to completion; returns cycle accounting."""
        if iterations < 1:
            raise ProgramError(f"iterations must be >= 1, got {iterations}")
        if vnpu is not None:
            program.validate(allowed_cores=set(vnpu.virtual_cores))
        else:
            program.validate(allowed_cores=set(self.chip.topology.nodes))

        report = ExecutionReport(task=program.name, total_cycles=0)
        start_cycle = self.chip.sim.now
        for core_program in program.programs():
            self.chip.sim.process(
                self._run_core(core_program, vnpu, iterations, report),
                name=f"{program.name}:core{core_program.core}",
            )
        self.chip.sim.run_until_processes_done()
        report.total_cycles = self.chip.sim.now - start_cycle
        report.foreign_traversals = self.chip.noc.total_foreign_traversals
        return report

    # -- helpers ------------------------------------------------------------
    def _physical(self, vnpu: VirtualNPU | None, core: int) -> int:
        return vnpu.physical_core(core) if vnpu is not None else core

    def _dma_engine(self, vnpu: VirtualNPU | None, p_core: int) -> DmaEngine:
        translator = (vnpu.translator if vnpu is not None
                      else PhysicalTranslator())
        per_core_rate = max(
            1.0,
            self.chip.memory.bytes_per_cycle / self.chip.core_count,
        )
        counter = vnpu.access_counter if vnpu is not None else None
        overrides = {}
        if self.dma_burst_bytes is not None:
            overrides["burst_bytes"] = self.dma_burst_bytes
        return DmaEngine(
            core_id=p_core,
            translator=translator,
            bytes_per_cycle=per_core_rate,
            access_latency=self.chip.config.memory.access_latency,
            access_counter=counter,
            **overrides,
        )

    def _run_core(self, core_program, vnpu, iterations, report):
        sim = self.chip.sim
        v_core = core_program.core
        p_core = self._physical(vnpu, v_core)
        core = self.chip.core(p_core)
        engine = self._dma_engine(vnpu, p_core)
        vmid = vnpu.vmid if vnpu is not None else None

        for iteration in range(iterations):
            for instruction in core_program.instructions:
                if isinstance(instruction, (DmaLoad, DmaStore)):
                    result = engine.stream_weights(
                        [TensorAccess(instruction.virtual_address,
                                      instruction.nbytes)],
                        iteration=iteration, vmid=vmid,
                    )
                    core.busy_dma_cycles += result.total_cycles
                    yield sim.timeout(result.total_cycles)
                elif isinstance(instruction, Compute):
                    cycles = self._compute_cycles(core, instruction)
                    core.busy_compute_cycles += cycles
                    yield sim.timeout(cycles)
                elif isinstance(instruction, Send):
                    yield from self._run_send(
                        core, vnpu, vmid, v_core, instruction, iteration)
                elif isinstance(instruction, Receive):
                    p_src = self._physical(vnpu, instruction.src)
                    yield core.mailbox(
                        p_src, self._tag(instruction.tag, iteration)).get()
                else:  # pragma: no cover - exhaustive over the ISA
                    raise ProgramError(
                        f"unsupported instruction {instruction!r}")

        report.core_finish_cycles[p_core] = sim.now
        report.compute_cycles[p_core] = core.busy_compute_cycles
        report.dma_cycles[p_core] = core.busy_dma_cycles
        report.noc_cycles[p_core] = core.busy_noc_cycles

    @staticmethod
    def _tag(tag: str, iteration: int) -> str:
        return f"{tag}#{iteration}"

    def _compute_cycles(self, core, instruction: Compute) -> int:
        model = core.compute
        if instruction.kind == "matmul":
            return model.matmul(*instruction.params).cycles
        if instruction.kind == "conv":
            return model.conv2d(*instruction.params).cycles
        if instruction.kind == "vector":
            return model.vector_op(*instruction.params).cycles
        return model.cycles_for_macs(instruction.params[0])

    def _run_send(self, core, vnpu, vmid, v_core, instruction, iteration):
        sim = self.chip.sim
        start = sim.now
        if vnpu is not None:
            route = vnpu.noc_vrouter.resolve(v_core, instruction.dst)
            p_src, p_dst, path = route.p_src, route.p_dst, route.path
            first_delay = route.first_packet_delay
            completion = route.completion_delay
            allowed = set(route.owned)
        else:
            p_src, p_dst = v_core, instruction.dst
            path = None
            first_delay = completion = 0
            allowed = None
        if p_src == p_dst:
            # Local loopback: scratchpad copy, no NoC traversal.
            yield sim.timeout(self.chip.noc.config.transfer_setup)
        else:
            transfer = self.chip.noc.transfer(
                p_src, p_dst, instruction.nbytes,
                path=path, vmid=vmid, allowed_nodes=allowed,
                first_packet_delay=first_delay,
                completion_delay=completion,
            )
            yield transfer
        core.busy_noc_cycles += sim.now - start
        self.chip.core(p_dst).deliver(
            p_src, self._tag(instruction.tag, iteration), instruction.nbytes)
