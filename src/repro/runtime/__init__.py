"""repro.runtime subpackage (regular package so ``pip install`` ships it)."""
