"""DMA engine: bulk transfers between global memory and scratchpad.

The engine models the paper's "memory burst phenomenon" (§4.2): during
weight loading it issues a fixed-size burst every few cycles, and *every
burst's address goes through translation*. A translation miss blocks the
issue queue for the full walk, which is why page-based translation costs
Fig 14's 9-20 % and vChunk stays under ~4 %.

Weight streaming is simulated at burst granularity with a configurable
number of *interleaved streams* (weight double-buffering plus activation
in/out traffic — the scratchpad has multiple banks fed concurrently).
Interleaving is what differentiates a 4-entry TLB from a 32-entry TLB:
with fewer TLB entries than active streams, the LRU cache thrashes and
misses on nearly every stream switch rather than once per page.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch import calibration
from repro.core.vchunk import AccessCounter
from repro.errors import ConfigError
from repro.mem.address_space import Translator
from repro.mem.trace import MemoryTrace


@dataclass(frozen=True)
class TensorAccess:
    """One tensor-granularity transfer request (Pattern-1)."""

    virtual_address: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigError(f"tensor size must be positive, got {self.nbytes}")


@dataclass
class DmaStreamResult:
    """Cycle breakdown of one weight-streaming pass."""

    total_cycles: int
    payload_bytes: int
    issue_cycles: int
    bandwidth_cycles: int
    translation_stall_cycles: int
    throttle_stall_cycles: int
    lookups: int
    misses: int
    bursts: int

    @property
    def translation_overhead(self) -> float:
        """Stall cycles as a fraction of the untranslated transfer time."""
        base = self.total_cycles - self.translation_stall_cycles
        return self.translation_stall_cycles / base if base else 0.0


@dataclass
class _StreamCursor:
    """Progress of one interleaved stream through its tensor list."""

    tensors: list[TensorAccess]
    tensor_index: int = 0
    byte_offset: int = 0

    def exhausted(self) -> bool:
        return self.tensor_index >= len(self.tensors)

    def next_burst(self, burst_bytes: int) -> tuple[int, int]:
        """Return ``(va, nbytes)`` of the next burst and advance."""
        tensor = self.tensors[self.tensor_index]
        va = tensor.virtual_address + self.byte_offset
        nbytes = min(burst_bytes, tensor.nbytes - self.byte_offset)
        self.byte_offset += nbytes
        if self.byte_offset >= tensor.nbytes:
            self.tensor_index += 1
            self.byte_offset = 0
        return va, nbytes


class DmaEngine:
    """The per-core DMA engine, parameterized by a translation scheme."""

    def __init__(
        self,
        core_id: int,
        translator: Translator,
        bytes_per_cycle: float = 4.0,
        issue_interval: int = calibration.DMA_ISSUE_INTERVAL,
        burst_bytes: int = calibration.DMA_BURST_BYTES,
        access_latency: int = 60,
        access_counter: AccessCounter | None = None,
        trace: MemoryTrace | None = None,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ConfigError("bytes_per_cycle must be positive")
        if issue_interval < 1 or burst_bytes < 1:
            raise ConfigError("issue interval and burst size must be >= 1")
        self.core_id = core_id
        self.translator = translator
        self.bytes_per_cycle = bytes_per_cycle
        self.issue_interval = issue_interval
        self.burst_bytes = burst_bytes
        self.access_latency = access_latency
        self.access_counter = access_counter
        self.trace = trace

    def stream_weights(
        self,
        tensors: list[TensorAccess],
        streams: int = 6,
        interleave_run: int = 4,
        iteration: int = 0,
        vmid: int | None = None,
    ) -> DmaStreamResult:
        """Stream ``tensors`` from global memory into the scratchpad.

        ``streams`` concurrent lanes round-robin at ``interleave_run``-burst
        granularity; each lane walks its tensor list in order (Pattern-2).
        """
        if streams < 1 or interleave_run < 1:
            raise ConfigError("streams and interleave_run must be >= 1")
        if not tensors:
            return DmaStreamResult(0, 0, 0, 0, 0, 0, 0, 0, 0)
        if self.trace is not None:
            for tensor in tensors:
                self.trace.record(
                    self.core_id, iteration, tensor.virtual_address,
                    tensor.nbytes,
                )

        lanes = [_StreamCursor([]) for _ in range(min(streams, len(tensors)))]
        for index, tensor in enumerate(tensors):
            lanes[index % len(lanes)].tensors.append(tensor)

        lookups_before = self.translator.lookups
        misses_before = self.translator.misses
        bursts = 0
        payload_bytes = 0
        translation_stall = 0
        throttle_stall = 0
        issue_cycles = 0
        lane_index = 0
        active = [lane for lane in lanes if not lane.exhausted()]
        while active:
            lane = active[lane_index % len(active)]
            for _ in range(interleave_run):
                if lane.exhausted():
                    break
                va, nbytes = lane.next_burst(self.burst_bytes)
                result = self.translator.translate(va, access="R")
                if not result.hit:
                    translation_stall += result.cycles
                bursts += 1
                payload_bytes += nbytes
                issue_cycles += self.issue_interval
                if self.access_counter is not None:
                    now = issue_cycles + translation_stall + throttle_stall
                    throttle_stall += self.access_counter.charge(nbytes, now)
            if lane.exhausted():
                active = [x for x in active if not x.exhausted()]
                if not active:
                    break
            lane_index += 1

        bandwidth_cycles = math.ceil(payload_bytes / self.bytes_per_cycle)
        total = (
            self.access_latency
            + max(issue_cycles, bandwidth_cycles)
            + translation_stall
            + throttle_stall
        )
        return DmaStreamResult(
            total_cycles=total,
            payload_bytes=payload_bytes,
            issue_cycles=issue_cycles,
            bandwidth_cycles=bandwidth_cycles,
            translation_stall_cycles=translation_stall,
            throttle_stall_cycles=throttle_stall,
            lookups=self.translator.lookups - lookups_before,
            misses=self.translator.misses - misses_before,
            bursts=bursts,
        )
