"""Kernel timing models for the NPU core's compute units.

The systolic array is modelled as an ``A x A`` MAC grid sustaining
``SYSTOLIC_EFFICIENCY`` of peak on dense kernels, plus a fill/drain cost
per tile pass; the vector unit retires ``vector_lanes`` elements per cycle.
This is a first-order occupancy model — the paper's point that kernel
execution time is 2-3 orders of magnitude above instruction-routing
latency (Fig 12) and usually well above broadcast cost (Fig 13) only needs
MAC counts to be right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch import calibration
from repro.arch.config import CoreConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class KernelCost:
    """Cycles and operation counts for one kernel invocation on one core."""

    name: str
    cycles: int
    macs: int

    @property
    def flops(self) -> int:
        return 2 * self.macs


class ComputeModel:
    """Timing model bound to one core configuration."""

    def __init__(self, core: CoreConfig,
                 efficiency: float = calibration.SYSTOLIC_EFFICIENCY,
                 fill_drain: int = calibration.SYSTOLIC_FILL_DRAIN) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ConfigError(f"efficiency must be in (0, 1], got {efficiency}")
        self.core = core
        self.efficiency = efficiency
        self.fill_drain = fill_drain

    # -- dense kernels ---------------------------------------------------------
    def matmul(self, m: int, k: int, n: int) -> KernelCost:
        """C[m,n] = A[m,k] @ B[k,n] on the systolic array."""
        self._check_positive(m=m, k=k, n=n)
        dim = self.core.systolic_dim
        macs = m * k * n
        tile_passes = math.ceil(m / dim) * math.ceil(n / dim)
        steady = macs / (self.core.macs_per_cycle * self.efficiency)
        cycles = math.ceil(steady) + tile_passes * self.fill_drain
        return KernelCost(name=f"matmul_{m}m_{k}k_{n}n", cycles=cycles, macs=macs)

    def conv2d(self, h: int, w: int, cin: int, cout: int, kernel: int,
               stride: int = 1) -> KernelCost:
        """2D convolution lowered to the systolic array (im2col style)."""
        self._check_positive(h=h, w=w, cin=cin, cout=cout,
                             kernel=kernel, stride=stride)
        out_h = max(1, h // stride)
        out_w = max(1, w // stride)
        macs = out_h * out_w * cin * cout * kernel * kernel
        dim = self.core.systolic_dim
        # im2col matmul: M = out pixels, K = cin*k*k, N = cout
        tile_passes = math.ceil(out_h * out_w / dim) * math.ceil(cout / dim)
        steady = macs / (self.core.macs_per_cycle * self.efficiency)
        cycles = math.ceil(steady) + tile_passes * self.fill_drain
        return KernelCost(
            name=f"conv{h}hw{cin}c_{cout}oc{kernel}k", cycles=cycles, macs=macs,
        )

    def vector_op(self, elements: int, ops_per_element: int = 1) -> KernelCost:
        """Element-wise work on the vector unit (activations, norms...)."""
        self._check_positive(elements=elements, ops_per_element=ops_per_element)
        lanes = self.core.vector_lanes * calibration.VECTOR_LANE_THROUGHPUT
        cycles = math.ceil(elements * ops_per_element / lanes)
        return KernelCost(
            name=f"vec{elements}x{ops_per_element}", cycles=cycles,
            macs=elements * ops_per_element // 2,
        )

    def attention(self, seq_len: int, dim: int, heads: int = 1) -> KernelCost:
        """Self-attention block: QK^T, softmax, PV (per head, summed)."""
        self._check_positive(seq_len=seq_len, dim=dim, heads=heads)
        head_dim = max(1, dim // heads)
        qkt = self.matmul(seq_len, head_dim, seq_len)
        pv = self.matmul(seq_len, seq_len, head_dim)
        softmax = self.vector_op(seq_len * seq_len, ops_per_element=4)
        cycles = heads * (qkt.cycles + pv.cycles + softmax.cycles)
        macs = heads * (qkt.macs + pv.macs + softmax.macs)
        return KernelCost(
            name=f"attn_s{seq_len}_d{dim}_h{heads}", cycles=cycles, macs=macs,
        )

    def cycles_for_macs(self, macs: int) -> int:
        """Generic dense-kernel estimate when only a MAC count is known."""
        if macs < 0:
            raise ConfigError(f"negative MAC count {macs}")
        if macs == 0:
            return 0
        steady = macs / (self.core.macs_per_cycle * self.efficiency)
        return math.ceil(steady) + self.fill_drain

    @staticmethod
    def _check_positive(**values: int) -> None:
        for name, value in values.items():
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
