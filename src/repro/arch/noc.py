"""Network-on-chip model: links, packets, contention, interference.

The model is store-and-forward at *packet* granularity: a message of ``n``
bytes is split into fixed-size routing packets; each directed link is a
capacity-1 FIFO resource a packet occupies for its serialization time.
Packets of one message pipeline across hops (packet ``k+1`` can use hop
``i`` while packet ``k`` uses hop ``i+1``), which is what produces the
paper's ~140 clk/packet slope on a single hop (Table 3) while still
exposing path conflicts between messages.

Routes default to dimension-order (X then Y) over the physical mesh.
Callers (the NoC vRouter, §4.1.2) may instead supply an explicit path —
the "predefined routing direction" mechanism that confines packets to a
virtual topology.

Interference accounting: a transfer may declare the set of nodes its
virtual NPU owns; any traversed node outside that set is recorded as a
*foreign traversal* — the paper's "NoC interference" phenomenon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.config import NoCConfig
from repro.arch.topology import Topology
from repro.errors import RoutingError
from repro.sim import Process, Resource, Simulator


@dataclass
class TransferRecord:
    """Outcome of one NoC message transfer (the value of its process)."""

    src: int
    dst: int
    payload_bytes: int
    packet_count: int
    path: list[int]
    start_cycle: int
    end_cycle: int
    foreign_nodes: list[int] = field(default_factory=list)

    @property
    def latency(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def interfered(self) -> bool:
        return bool(self.foreign_nodes)


class LinkStats:
    """Aggregate occupancy statistics of one directed link."""

    __slots__ = ("busy_cycles", "packets", "vmids")

    def __init__(self) -> None:
        self.busy_cycles = 0
        self.packets = 0
        self.vmids: set = set()


class NoC:
    """The on-chip network of a chip with topology ``topology``."""

    def __init__(self, sim: Simulator, topology: Topology,
                 config: NoCConfig | None = None) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NoCConfig()
        self._links: dict[tuple[int, int], Resource] = {}
        self.link_stats: dict[tuple[int, int], LinkStats] = {}
        for u, v in topology.edges:
            for link in ((u, v), (v, u)):
                self._links[link] = Resource(sim, capacity=1, name=f"link{link}")
                self.link_stats[link] = LinkStats()
        self.total_transfers = 0
        self.total_foreign_traversals = 0

    # -- routing -----------------------------------------------------------
    def route(self, src: int, dst: int) -> list[int]:
        """Default route: dimension-order on meshes, BFS otherwise."""
        if src == dst:
            return [src]
        if self.topology.coords:
            return self.topology.dor_path(src, dst)
        return self._bfs_path(src, dst)

    def _bfs_path(self, src: int, dst: int) -> list[int]:
        from collections import deque

        parents: dict[int, int] = {src: src}
        frontier = deque([src])
        while frontier:
            current = frontier.popleft()
            if current == dst:
                break
            for nbr in self.topology.neighbors(current):
                if nbr not in parents:
                    parents[nbr] = current
                    frontier.append(nbr)
        if dst not in parents:
            raise RoutingError(f"no route {src} -> {dst}")
        path = [dst]
        while path[-1] != src:
            path.append(parents[path[-1]])
        return list(reversed(path))

    def validate_path(self, path: list[int]) -> None:
        if len(path) < 1:
            raise RoutingError("empty path")
        for u, v in zip(path, path[1:]):
            if (u, v) not in self._links:
                raise RoutingError(f"path step {u}->{v} is not a physical link")

    # -- transfers -----------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        path: list[int] | None = None,
        vmid: int | None = None,
        allowed_nodes: set[int] | None = None,
        first_packet_delay: int = 0,
        completion_delay: int = 0,
    ) -> Process:
        """Start a message transfer; returns its process.

        The process's value is a :class:`TransferRecord`.

        Parameters
        ----------
        path:
            Explicit route (vRouter direction table). Defaults to DOR.
        allowed_nodes:
            Nodes owned by the sender's virtual NPU; traversed nodes outside
            it are recorded as foreign (NoC interference).
        first_packet_delay:
            Extra cycles before the first packet enters the network (e.g.
            the vRouter's routing-table lookup).
        completion_delay:
            Extra cycles after the last packet arrives (e.g. the receive
            engine's meta-zone fetch).
        """
        if payload_bytes <= 0:
            raise RoutingError(f"payload must be positive, got {payload_bytes}")
        route = list(path) if path is not None else self.route(src, dst)
        if route[0] != src or route[-1] != dst:
            raise RoutingError(
                f"path {route} does not connect {src} -> {dst}"
            )
        self.validate_path(route)
        return self.sim.process(
            self._run_transfer(
                src, dst, payload_bytes, route, vmid, allowed_nodes,
                first_packet_delay, completion_delay,
            ),
            name=f"noc:{src}->{dst}",
        )

    def _run_transfer(self, src, dst, payload_bytes, route, vmid,
                      allowed_nodes, first_packet_delay, completion_delay):
        sim = self.sim
        start = sim.now
        self.total_transfers += 1
        packet_count = max(1, math.ceil(payload_bytes / self.config.packet_bytes))
        hops = list(zip(route, route[1:]))
        foreign = []
        if allowed_nodes is not None:
            foreign = [n for n in route if n not in allowed_nodes]
            self.total_foreign_traversals += len(foreign)

        yield sim.timeout(self.config.transfer_setup + first_packet_delay)

        if not hops:  # src == dst: local copy, serialization only
            yield sim.timeout(
                packet_count * self.config.packet_serialization()
            )
        else:
            packet_procs = [
                sim.process(self._run_packet(hops, vmid), name=f"pkt{i}")
                for i in range(packet_count)
            ]
            yield sim.all_of(packet_procs)

        if completion_delay:
            yield sim.timeout(completion_delay)
        return TransferRecord(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            packet_count=packet_count,
            path=route,
            start_cycle=start,
            end_cycle=sim.now,
            foreign_nodes=foreign,
        )

    def _run_packet(self, hops, vmid):
        sim = self.sim
        occupancy = (
            self.config.packet_serialization() + self.config.packet_handshake
        )
        for link_key in hops:
            link = self._links[link_key]
            yield link.acquire()
            yield sim.timeout(occupancy)
            link.release()
            stats = self.link_stats[link_key]
            stats.busy_cycles += occupancy
            stats.packets += 1
            if vmid is not None:
                stats.vmids.add(vmid)
            yield sim.timeout(self.config.router_latency)
        return None

    # -- diagnostics -----------------------------------------------------------
    def busiest_links(self, top: int = 5) -> list[tuple[tuple[int, int], int]]:
        ranked = sorted(
            self.link_stats.items(), key=lambda kv: kv[1].busy_cycles,
            reverse=True,
        )
        return [(link, stats.busy_cycles) for link, stats in ranked[:top]]

    def shared_links(self) -> list[tuple[int, int]]:
        """Links traversed by packets of more than one VM (contention risk)."""
        return [
            link for link, stats in self.link_stats.items()
            if len(stats.vmids) > 1
        ]
