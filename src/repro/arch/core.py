"""A single NPU core: compute units, scratchpad, NoC engine state.

Cores are passive state holders — the runtime executor drives their
instruction streams as simulation processes. Each core owns a scratchpad
(with the meta/weight-zone split), a compute timing model, and a mailbox
per message tag for blocking receives.
"""

from __future__ import annotations

from repro.arch.compute import ComputeModel
from repro.arch.config import CoreConfig
from repro.arch.scratchpad import Scratchpad
from repro.sim import Simulator, Store


class NpuCore:
    """One tile of the inter-core connected NPU."""

    def __init__(self, sim: Simulator, core_id: int, config: CoreConfig) -> None:
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.scratchpad = Scratchpad(config)
        self.compute = ComputeModel(config)
        self._mailboxes: dict[tuple[int, str], Store] = {}
        # Cycle accounting for utilization reports.
        self.busy_compute_cycles = 0
        self.busy_dma_cycles = 0
        self.busy_noc_cycles = 0

    def mailbox(self, src: int, tag: str = "") -> Store:
        """The FIFO that receives messages from physical core ``src``."""
        key = (src, tag)
        if key not in self._mailboxes:
            self._mailboxes[key] = Store(
                self.sim, name=f"mbox:{src}->{self.core_id}:{tag}"
            )
        return self._mailboxes[key]

    def deliver(self, src: int, tag: str, payload) -> None:
        """Called by the NoC completion path to wake a blocked receive."""
        self.mailbox(src, tag).put(payload)

    @property
    def total_busy_cycles(self) -> int:
        return (self.busy_compute_cycles + self.busy_dma_cycles
                + self.busy_noc_cycles)

    def reset_counters(self) -> None:
        self.busy_compute_cycles = 0
        self.busy_dma_cycles = 0
        self.busy_noc_cycles = 0
