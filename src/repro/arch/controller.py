"""The NPU controller: instruction dispatch and hyper-mode management.

§4.1.1 / §5.1: the controller receives NPU instructions from the host
(tagged with a VMID and a *virtual* core ID), translates them through the
instruction vRouter, and dispatches to the physical core — either over a
shared instruction bus (IBUS, fixed latency, poor scalability) or over a
dedicated instruction NoC (latency grows with hop distance, Fig 12).

Only the *hyper-mode* controller may install or remove meta tables
(routing tables, RTTs) — guests attempting it get
:class:`~repro.errors.HyperModeViolation`, mirroring the PF/VF MMIO split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import calibration
from repro.arch.topology import Topology
from repro.core.routing_table import RoutingTable
from repro.core.vrouter import InstructionVRouter
from repro.errors import ConfigError, HyperModeViolation


@dataclass(frozen=True)
class DispatchRecord:
    """Outcome of dispatching one instruction to a core."""

    vmid: int
    v_core: int
    p_core: int
    #: Routing-table translation cycles (0 when the last-translation cache hit).
    translate_cycles: int
    #: Transport cycles to reach the core (IBUS or instruction-NoC).
    dispatch_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.translate_cycles + self.dispatch_cycles


class NpuController:
    """Centralized controller of one inter-core connected NPU."""

    def __init__(self, topology: Topology, dispatch_mode: str = "inoc",
                 port_core: int = 0) -> None:
        if dispatch_mode not in ("inoc", "ibus"):
            raise ConfigError(f"unknown dispatch mode {dispatch_mode!r}")
        if port_core not in topology:
            raise ConfigError(f"controller port core {port_core} not on chip")
        self.topology = topology
        self.dispatch_mode = dispatch_mode
        self.port_core = port_core
        self.ivrouter = InstructionVRouter()
        self.dispatches = 0

    # -- hyper-mode meta-table management -----------------------------------
    def install_routing_table(self, table: RoutingTable,
                              hyper_mode: bool = False) -> int:
        """Install a VM's routing table; returns configuration cycles (Fig 11)."""
        if not hyper_mode:
            raise HyperModeViolation(
                "guest attempted to install a routing table"
            )
        for p_core in table.physical_cores():
            if p_core not in self.topology:
                raise ConfigError(
                    f"routing table for VM {table.vmid} maps virtual cores to "
                    f"nonexistent physical core {p_core}"
                )
        self.ivrouter.install(table)
        return self.ivrouter.configure_cycles(len(table.virtual_cores()))

    def remove_routing_table(self, vmid: int, hyper_mode: bool = False) -> None:
        if not hyper_mode:
            raise HyperModeViolation(
                "guest attempted to remove a routing table"
            )
        self.ivrouter.remove(vmid)

    # -- dispatch ----------------------------------------------------------------
    def transport_cycles(self, p_core: int) -> int:
        """IBUS: fixed. Instruction NoC: base + per-hop (Fig 12)."""
        if self.dispatch_mode == "ibus":
            return calibration.IBUS_LATENCY
        hops = self.topology.hop_distance(self.port_core, p_core)
        return (calibration.INOC_DISPATCH_BASE
                + hops * calibration.INOC_DISPATCH_PER_HOP)

    def dispatch(self, vmid: int, v_core: int) -> DispatchRecord:
        """Route one instruction from a virtual core to its physical core."""
        redirect = self.ivrouter.redirect(vmid, v_core)
        self.dispatches += 1
        return DispatchRecord(
            vmid=vmid,
            v_core=v_core,
            p_core=redirect.p_core,
            translate_cycles=redirect.cycles,
            dispatch_cycles=self.transport_cycles(redirect.p_core),
        )
