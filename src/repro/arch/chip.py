"""Whole-chip assembly: topology + NoC + memory + cores + controller.

:class:`Chip` wires one :class:`~repro.arch.config.SoCConfig` into a live
simulation: the 2D-mesh topology, the packet NoC, the HBM model, one
:class:`~repro.arch.core.NpuCore` per mesh node and the hyper-mode NPU
controller. The hypervisor (:mod:`repro.core.hypervisor`) and the runtime
executor both operate on a ``Chip``.
"""

from __future__ import annotations

from repro.arch.config import SoCConfig
from repro.arch.controller import NpuController
from repro.arch.core import NpuCore
from repro.arch.hbm import GlobalMemory
from repro.arch.noc import NoC
from repro.errors import ConfigError
from repro.sim import Simulator


class Chip:
    """A simulated inter-core connected NPU chip."""

    def __init__(self, config: SoCConfig, sim: Simulator | None = None,
                 dispatch_mode: str = "inoc") -> None:
        self.config = config
        self.sim = sim or Simulator()
        self.topology = config.topology()
        self.noc = NoC(self.sim, self.topology, config.noc)
        self.memory = GlobalMemory(self.sim, config.memory, config.frequency_hz)
        self.cores = {
            core_id: NpuCore(self.sim, core_id, config.core)
            for core_id in self.topology.nodes
        }
        self.controller = NpuController(self.topology,
                                        dispatch_mode=dispatch_mode)

    @property
    def core_count(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> NpuCore:
        try:
            return self.cores[core_id]
        except KeyError:
            raise ConfigError(f"no core {core_id} on chip "
                              f"{self.config.name!r}") from None

    def memory_interfaces_spanned(self, p_cores) -> int:
        """How many memory-interface cores a core set contains (>= 1).

        Warm-up bandwidth is proportional to this count (§6.3.4); a block
        with no interface core still reaches memory through the mesh, so
        the floor is one interface.
        """
        owned = set(p_cores)
        count = sum(
            1 for core in self.config.memory_interface_cores if core in owned
        )
        return max(1, count)

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock seconds at chip frequency."""
        return cycles / self.config.frequency_hz

    def fps(self, cycles_per_inference: int) -> float:
        """Inferences per second for a steady-state per-iteration latency."""
        if cycles_per_inference <= 0:
            raise ConfigError("cycles per inference must be positive")
        return self.config.frequency_hz / cycles_per_inference
