"""Per-core scratchpad SRAM with the vNPU meta-zone / weight-zone split.

§5.1: vNPU partitions each core's SRAM into a *meta-zone* — holding the
routing table and range-translation-table entries, writable only by the
hyper-mode NPU controller — and a *weight-zone* holding model weights and
intermediate results, managed by the guest. The scratchpad enforces that
split: guest allocations come from the weight zone; meta-table installs
require a hyper-mode token.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import CoreConfig
from repro.errors import AllocationError, HyperModeViolation


@dataclass(frozen=True)
class SpadRegion:
    """A reserved region of scratchpad, returned by allocation calls."""

    zone: str  # "weight" | "meta"
    offset: int
    nbytes: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class Scratchpad:
    """Bump-allocated SRAM for one NPU core.

    Bump allocation (with whole-zone reset) matches how inter-core NPUs
    actually use scratchpads: weights and buffers are placed once per model
    load and freed en masse when the core is reassigned.
    """

    def __init__(self, core: CoreConfig) -> None:
        self.config = core
        self._weight_cursor = 0
        self._meta_cursor = 0
        self.weight_regions: list[SpadRegion] = []
        self.meta_regions: list[SpadRegion] = []

    # -- capacity ----------------------------------------------------------
    @property
    def weight_capacity(self) -> int:
        return self.config.weight_zone_bytes

    @property
    def meta_capacity(self) -> int:
        return self.config.meta_zone_bytes

    @property
    def weight_free(self) -> int:
        return self.weight_capacity - self._weight_cursor

    @property
    def meta_free(self) -> int:
        return self.meta_capacity - self._meta_cursor

    # -- guest-visible allocation ------------------------------------------
    def alloc_weight(self, nbytes: int, label: str = "") -> SpadRegion:
        """Reserve weight-zone space (guest operation)."""
        if nbytes <= 0:
            raise AllocationError(f"allocation must be positive, got {nbytes}")
        if nbytes > self.weight_free:
            raise AllocationError(
                f"weight zone exhausted: need {nbytes}, free {self.weight_free}"
            )
        region = SpadRegion("weight", self._weight_cursor, nbytes, label)
        self._weight_cursor += nbytes
        self.weight_regions.append(region)
        return region

    def reset_weight_zone(self) -> None:
        """Free every weight-zone region (model unload / core reassigned)."""
        self._weight_cursor = 0
        self.weight_regions.clear()

    # -- hyper-mode-only meta zone --------------------------------------------
    def install_meta(self, nbytes: int, label: str = "",
                     hyper_mode: bool = False) -> SpadRegion:
        """Install a meta table (routing table / RTT). Hyper mode required."""
        if not hyper_mode:
            raise HyperModeViolation(
                "guest attempted to write the scratchpad meta-zone"
            )
        if nbytes <= 0:
            raise AllocationError(f"allocation must be positive, got {nbytes}")
        if nbytes > self.meta_free:
            raise AllocationError(
                f"meta zone exhausted: need {nbytes}, free {self.meta_free}"
            )
        region = SpadRegion("meta", self._meta_cursor, nbytes, label)
        self._meta_cursor += nbytes
        self.meta_regions.append(region)
        return region

    def reset_meta_zone(self, hyper_mode: bool = False) -> None:
        if not hyper_mode:
            raise HyperModeViolation(
                "guest attempted to clear the scratchpad meta-zone"
            )
        self._meta_cursor = 0
        self.meta_regions.clear()
