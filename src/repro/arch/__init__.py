"""Hardware substrate: chip, cores, NoC, memory system, timing models."""

from repro.arch.config import (
    CoreConfig,
    MemoryConfig,
    NoCConfig,
    SoCConfig,
    fpga_config,
    sim_config,
)
from repro.arch.topology import MeshShape, Topology

__all__ = [
    "CoreConfig",
    "MemoryConfig",
    "MeshShape",
    "NoCConfig",
    "SoCConfig",
    "Topology",
    "fpga_config",
    "sim_config",
]
