"""Latency calibration constants for the cycle-accounting models.

Every constant is fitted against a specific datum reported in the paper
(section / figure noted inline). The micro-benchmarks in ``benchmarks/``
re-measure these paths and EXPERIMENTS.md records paper-vs-measured.

Constants are module-level and intentionally plain so that experiments can
monkeypatch them for ablations; the chip model reads them once per
construction via :class:`repro.arch.config.SoCConfig`.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# NoC (Table 3: 2 packets of 2048 B -> 309 clk send; 30 packets -> 4236 clk;
# fitted slope ~140 clk/packet, intercept ~29 clk).
# --------------------------------------------------------------------------

#: Payload bytes a NoC link moves per cycle (2048-byte packet -> 128 cycles
#: of link serialization, the dominant part of the ~140 clk/packet slope).
NOC_LINK_BYTES_PER_CYCLE = 16

#: Per-hop router pipeline latency (arbitration + crossbar), cycles.
NOC_ROUTER_LATENCY = 6

#: Per-packet protocol overhead at the send/receive engines (handshake).
#: Link occupancy per packet = serialization (128) + handshake (12) = 140,
#: matching Table 3's fitted 140.3 clk/packet slope.
NOC_PACKET_HANDSHAKE = 12

#: One-time cost of initiating a send/receive transfer (descriptor setup).
#: With one router hop (6) this gives Table 3's ~29 clk intercept.
NOC_TRANSFER_SETUP = 23

#: Default routing-packet payload used by the paper's micro-test (bytes).
NOC_DEFAULT_PACKET_BYTES = 2048

# --------------------------------------------------------------------------
# vRouter (Table 3 virtualized rows: vSend ~ +33 clk once; vReceive ~ +65).
# --------------------------------------------------------------------------

#: Cycles to look up a routing-table entry in controller SRAM (first use;
#: subsequent packets to the same core hit a cached translation).
VROUTER_RT_LOOKUP = 30

#: Cycles for a core's NoC engine to fetch routing metadata from its
#: meta-zone on the receive path (once per transfer).
VROUTER_META_FETCH = 60

#: Per-packet destination-ID rewrite cost. Fully overlapped with link
#: serialization in hardware; kept non-zero so the path is exercised.
VROUTER_REWRITE = 1

# --------------------------------------------------------------------------
# Instruction dispatch (Fig 12: IBUS fixed ~10 clk; iNoC 20-60 by distance;
# Conv/Matmul execution 5e3-1e5 clk).
# --------------------------------------------------------------------------

#: Fixed instruction-bus broadcast latency (cycles).
IBUS_LATENCY = 10

#: Base latency for dispatching an instruction over the instruction NoC.
INOC_DISPATCH_BASE = 18

#: Additional latency per mesh hop on the instruction NoC.
INOC_DISPATCH_PER_HOP = 5

# --------------------------------------------------------------------------
# Routing-table configuration (Fig 11: ~300 clk total at 8 cores, linear).
# --------------------------------------------------------------------------

#: Fixed cost of a routing-table configuration command (hyper-mode entry).
RT_CONFIG_BASE = 20

#: Per-core cost: availability query + entry write into controller SRAM.
RT_CONFIG_PER_CORE = 35

# --------------------------------------------------------------------------
# Memory translation (Fig 14: IOTLB4 ~20 % slowdown, IOTLB32 ~9 %,
# vChunk (4 range entries) < 4.3 %).
# --------------------------------------------------------------------------

#: Page-table walk latency on an IOTLB miss (cycles, blocks the DMA queue).
PAGE_WALK_LATENCY = 120

#: Page size used by the page-based baseline (bytes).
PAGE_SIZE = 4096

#: Cycles to fetch + compare one RTT entry during a range-TLB miss walk.
RTT_ENTRY_SCAN = 8

#: Cycles for a range-TLB refill when the ``last_v`` loop hint is correct.
RTT_LAST_V_HIT = 12

#: Cycles for a range-TLB hit / page-TLB hit (pipelined, effectively free
#: but non-zero to keep the path honest).
TLB_HIT_LATENCY = 1

#: Interval between successive DMA burst issues during weight streaming
#: (the paper's "every few cycles" burst phenomenon, §4.2).
DMA_ISSUE_INTERVAL = 4

#: Bytes moved per DMA burst request.
DMA_BURST_BYTES = 512

# --------------------------------------------------------------------------
# UVM baseline (Fig 13: vRouter ~4.24x cheaper broadcast than global-memory
# synchronization; Fig 15: multi-instance UVM degrades ~24 %).
# --------------------------------------------------------------------------

#: Extra latency for a global-memory synchronization round trip (flush +
#: flag update) per transfer, cycles.
UVM_SYNC_LATENCY = 400

#: Effective bytes/cycle per core when staging intermediate results through
#: the shared L2 + DRAM path (much lower than the NoC's 16 B/cyc).
UVM_MEMORY_BYTES_PER_CYCLE = 4

#: Aggregate bytes/cycle the shared L2 + memory system sustains for UVM
#: staging traffic across *all* cores (bank conflicts + coherence traffic
#: make it far below raw DRAM bandwidth; fitted to Fig 15's ~24 %
#: multi-instance degradation).
UVM_AGGREGATE_BYTES_PER_CYCLE = 15

# --------------------------------------------------------------------------
# Compute (Fig 12 / Fig 13 kernel times; systolic-array occupancy model).
# --------------------------------------------------------------------------

#: Fraction of peak MACs the systolic array sustains on dense kernels.
SYSTOLIC_EFFICIENCY = 0.75

#: Pipeline fill/drain cycles per systolic-array pass.
SYSTOLIC_FILL_DRAIN = 32

#: Elements per cycle each vector-unit lane retires.
VECTOR_LANE_THROUGHPUT = 1.0
