"""Chip and virtual-NPU topologies.

A :class:`Topology` is an undirected graph over integer core IDs, optionally
annotated with 2D grid coordinates (for meshes) and per-node attributes
(for heterogeneous cores, e.g. ``"mem"`` for cores adjacent to a memory
interface). It is the common currency between the hardware model
(:mod:`repro.arch.noc`), the topology-mapping allocator
(:mod:`repro.core.topology_mapping`) and the compiler's mapper.

Core IDs are 0-based everywhere in this library (the paper's figures use
1-based labels).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass

import networkx as nx

from repro.errors import TopologyError

Coord = tuple[int, int]


@dataclass(frozen=True)
class MeshShape:
    """Rows x columns of a 2D-mesh (virtual) topology."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise TopologyError(f"invalid mesh shape {self.rows}x{self.cols}")

    @property
    def node_count(self) -> int:
        return self.rows * self.cols

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols}"


class Topology:
    """An undirected topology over integer node IDs.

    Parameters
    ----------
    nodes:
        Iterable of node IDs.
    edges:
        Iterable of ``(u, v)`` undirected edges between nodes.
    coords:
        Optional mapping ``node -> (row, col)`` grid position. Required for
        dimension-order routing.
    node_attrs:
        Optional mapping ``node -> str`` attribute tag ("abbr" in the
        paper's Algorithm 1), e.g. ``"mem"`` / ``"sa"`` / ``"vu"``.
    name:
        Human-readable label.
    """

    def __init__(
        self,
        nodes,
        edges,
        coords: dict[int, Coord] | None = None,
        node_attrs: dict[int, str] | None = None,
        name: str = "topology",
    ) -> None:
        self.name = name
        self._nodes: list[int] = sorted(set(int(n) for n in nodes))
        node_set = set(self._nodes)
        self._adj: dict[int, set[int]] = {n: set() for n in self._nodes}
        for u, v in edges:
            u, v = int(u), int(v)
            if u not in node_set or v not in node_set:
                raise TopologyError(f"edge ({u}, {v}) references unknown node")
            if u == v:
                raise TopologyError(f"self-loop on node {u}")
            self._adj[u].add(v)
            self._adj[v].add(u)
        self.coords: dict[int, Coord] = dict(coords) if coords else {}
        if self.coords and set(self.coords) != node_set:
            raise TopologyError("coords must cover every node or be absent")
        self.node_attrs: dict[int, str] = dict(node_attrs) if node_attrs else {}

    # -- constructors -----------------------------------------------------
    @classmethod
    def mesh2d(cls, rows: int, cols: int, name: str | None = None) -> "Topology":
        """A ``rows x cols`` 2D mesh; node ``r * cols + c`` sits at (r, c)."""
        shape = MeshShape(rows, cols)
        nodes = range(shape.node_count)
        coords = {r * cols + c: (r, c) for r in range(rows) for c in range(cols)}
        edges = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    edges.append((node, node + 1))
                if r + 1 < rows:
                    edges.append((node, node + cols))
        return cls(nodes, edges, coords=coords, name=name or f"mesh{shape}")

    @classmethod
    def line(cls, n: int, name: str | None = None) -> "Topology":
        return cls.mesh2d(1, n, name=name or f"line{n}")

    @classmethod
    def ring(cls, n: int, name: str | None = None) -> "Topology":
        if n < 3:
            raise TopologyError(f"ring needs >= 3 nodes, got {n}")
        edges = [(i, (i + 1) % n) for i in range(n)]
        return cls(range(n), edges, name=name or f"ring{n}")

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str = "graph") -> "Topology":
        return cls(graph.nodes, graph.edges, name=name)

    # -- basic queries ------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        return list(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u in self._nodes for v in sorted(self._adj[u]) if u < v]

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def neighbors(self, node: int) -> list[int]:
        try:
            return sorted(self._adj[node])
        except KeyError:
            raise TopologyError(f"unknown node {node} in {self.name}") from None

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def degree_sequence(self) -> tuple[int, ...]:
        return tuple(sorted(len(self._adj[n]) for n in self._nodes))

    def attr(self, node: int) -> str:
        """Node attribute tag; empty string when untagged."""
        return self.node_attrs.get(node, "")

    # -- structure ----------------------------------------------------------
    def is_connected(self, nodes: set[int] | None = None) -> bool:
        """Connectivity of the whole topology or of an induced node subset."""
        universe = set(self._nodes) if nodes is None else set(nodes)
        if not universe:
            return True
        for node in universe:
            if node not in self._adj:
                raise TopologyError(f"unknown node {node} in {self.name}")
        start = next(iter(universe))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for nbr in self._adj[current]:
                if nbr in universe and nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen == universe

    def subtopology(self, nodes, name: str | None = None) -> "Topology":
        """The induced subgraph over ``nodes`` (coords/attrs preserved)."""
        node_set = set(int(n) for n in nodes)
        for node in node_set:
            if node not in self._adj:
                raise TopologyError(f"unknown node {node} in {self.name}")
        edges = [
            (u, v)
            for u in node_set
            for v in self._adj[u]
            if v in node_set and u < v
        ]
        coords = {n: self.coords[n] for n in node_set} if self.coords else None
        attrs = {n: self.node_attrs[n] for n in node_set if n in self.node_attrs}
        return Topology(
            node_set, edges, coords=coords, node_attrs=attrs,
            name=name or f"{self.name}[{len(node_set)}]",
        )

    # -- incremental mutation (mapper free-set maintenance) ------------------
    def _discard_node(self, node: int) -> None:
        """In-place node removal (edges, coords, attrs follow).

        Internal: exists so the topology mapper can maintain its free-set
        view as O(degree) deltas instead of rebuilding the induced
        subgraph per allocation. General code should treat Topology as
        immutable and use :meth:`subtopology`.
        """
        neighbors = self._adj.pop(node, None)
        if neighbors is None:
            return
        for nbr in neighbors:
            self._adj[nbr].discard(node)
        index = bisect_left(self._nodes, node)
        if index < len(self._nodes) and self._nodes[index] == node:
            del self._nodes[index]
        self.coords.pop(node, None)
        self.node_attrs.pop(node, None)

    def _restore_node(self, parent: "Topology", node: int) -> None:
        """In-place re-insertion of ``node`` with ``parent``'s adjacency.

        The inverse of :meth:`_discard_node` for subtopologies of
        ``parent``: edges to nodes currently present, plus coords and
        attrs, are copied back from the parent.
        """
        if node in self._adj:
            return
        if node not in parent._adj:
            raise TopologyError(f"unknown node {node} in {parent.name}")
        neighbors = {n for n in parent._adj[node] if n in self._adj}
        self._adj[node] = neighbors
        for nbr in neighbors:
            self._adj[nbr].add(node)
        insort(self._nodes, node)
        if parent.coords:
            self.coords[node] = parent.coords[node]
        attr = parent.node_attrs.get(node)
        if attr is not None:
            self.node_attrs[node] = attr

    def hop_distance(self, src: int, dst: int) -> int:
        """BFS hop count between two nodes; raises if unreachable."""
        if src == dst:
            return 0
        if src not in self._adj or dst not in self._adj:
            raise TopologyError(f"unknown endpoint {src}->{dst} in {self.name}")
        seen = {src: 0}
        frontier = deque([src])
        while frontier:
            current = frontier.popleft()
            for nbr in self._adj[current]:
                if nbr not in seen:
                    seen[nbr] = seen[current] + 1
                    if nbr == dst:
                        return seen[nbr]
                    frontier.append(nbr)
        raise TopologyError(f"{dst} unreachable from {src} in {self.name}")

    def bfs_order(self, start: int) -> list[int]:
        """Nodes in BFS order from ``start`` (used by the greedy mapper)."""
        if start not in self._adj:
            raise TopologyError(f"unknown node {start} in {self.name}")
        seen = [start]
        seen_set = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for nbr in sorted(self._adj[current]):
                if nbr not in seen_set:
                    seen_set.add(nbr)
                    seen.append(nbr)
                    frontier.append(nbr)
        return seen

    # -- dimension-order routing --------------------------------------------
    def dor_path(self, src: int, dst: int) -> list[int]:
        """X-then-Y dimension-order route over grid coordinates.

        The path is computed over the *coordinate grid* (column moves first,
        then row moves, matching the paper's "first along the X-axis")
        regardless of whether intermediate nodes belong to any particular
        virtual NPU — that leakage is exactly the NoC-interference
        phenomenon of §4.1.2. Raises if a grid step lands on a coordinate
        with no node or no physical link.
        """
        if not self.coords:
            raise TopologyError(f"{self.name} has no grid coordinates for DOR")
        if src not in self._adj or dst not in self._adj:
            raise TopologyError(f"unknown endpoint {src}->{dst} in {self.name}")
        by_coord = {coord: node for node, coord in self.coords.items()}
        row, col = self.coords[src]
        dst_row, dst_col = self.coords[dst]
        path = [src]
        current = src
        while col != dst_col:
            col += 1 if dst_col > col else -1
            current = self._step(by_coord, current, (row, col))
            path.append(current)
        while row != dst_row:
            row += 1 if dst_row > row else -1
            current = self._step(by_coord, current, (row, col))
            path.append(current)
        return path

    def _step(self, by_coord: dict[Coord, int], current: int, coord: Coord) -> int:
        nxt = by_coord.get(coord)
        if nxt is None:
            raise TopologyError(
                f"DOR step to empty coordinate {coord} in {self.name}"
            )
        if nxt not in self._adj[current]:
            raise TopologyError(
                f"DOR step {current}->{nxt} has no physical link in {self.name}"
            )
        return nxt

    # -- shape recognition / canonical form ----------------------------------
    def mesh_shape(self) -> MeshShape | None:
        """Detect whether this topology is a full 2D mesh; return its shape.

        Used by the shaped routing-table optimization (§4.1.1): a shaped
        entry stores only the base IDs plus the mesh shape.
        """
        n = self.node_count
        if n == 0:
            return None
        if not self.coords:
            return self._mesh_shape_structural()
        rows = sorted({r for r, _ in self.coords.values()})
        cols = sorted({c for _, c in self.coords.values()})
        height, width = len(rows), len(cols)
        if height * width != n:
            return None
        row_base, col_base = rows[0], cols[0]
        if rows != list(range(row_base, row_base + height)):
            return None
        if cols != list(range(col_base, col_base + width)):
            return None
        expected_edges = height * (width - 1) + width * (height - 1)
        if self.edge_count != expected_edges:
            return None
        return MeshShape(height, width)

    def _mesh_shape_structural(self) -> MeshShape | None:
        """Mesh detection without coordinates, via isomorphism check."""
        n = self.node_count
        for rows in range(1, n + 1):
            if n % rows:
                continue
            cols = n // rows
            reference = Topology.mesh2d(rows, cols)
            if self.edge_count != reference.edge_count:
                continue
            if self.is_isomorphic_to(reference):
                return MeshShape(rows, cols)
        return None

    def wl_certificate(self, iterations: int = 3) -> str:
        """Weisfeiler-Lehman refinement hash.

        Equal certificates are a *necessary* condition for isomorphism;
        the topology-mapping candidate dedup uses it as a cheap first-pass
        key before an exact isomorphism check.
        """
        labels = {
            n: f"{len(self._adj[n])}|{self.node_attrs.get(n, '')}"
            for n in self._nodes
        }
        for _ in range(iterations):
            new_labels = {}
            for node in self._nodes:
                neighborhood = sorted(labels[nbr] for nbr in self._adj[node])
                signature = labels[node] + "(" + ",".join(neighborhood) + ")"
                new_labels[node] = hashlib.blake2s(
                    signature.encode(), digest_size=8
                ).hexdigest()
            labels = new_labels
        return hashlib.blake2s(
            ",".join(sorted(labels.values())).encode(), digest_size=16
        ).hexdigest()

    def is_isomorphic_to(self, other: "Topology") -> bool:
        """Exact isomorphism (attribute-aware), via networkx VF2."""
        if self.node_count != other.node_count:
            return False
        if self.edge_count != other.edge_count:
            return False
        if self.degree_sequence() != other.degree_sequence():
            return False
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            self.to_networkx(),
            other.to_networkx(),
            node_match=lambda a, b: a.get("abbr", "") == b.get("abbr", ""),
        )
        return matcher.is_isomorphic()

    def to_networkx(self) -> nx.Graph:
        graph = nx.Graph()
        for node in self._nodes:
            graph.add_node(node, abbr=self.node_attrs.get(node, ""))
        graph.add_edges_from(self.edges)
        return graph

    def relabel(self, mapping: dict[int, int], name: str | None = None) -> "Topology":
        """Return a copy with node IDs renamed through ``mapping``."""
        missing = [n for n in self._nodes if n not in mapping]
        if missing:
            raise TopologyError(f"relabel mapping misses nodes {missing}")
        nodes = [mapping[n] for n in self._nodes]
        edges = [(mapping[u], mapping[v]) for u, v in self.edges]
        coords = (
            {mapping[n]: c for n, c in self.coords.items()} if self.coords else None
        )
        attrs = {mapping[n]: a for n, a in self.node_attrs.items()}
        return Topology(
            nodes, edges, coords=coords, node_attrs=attrs, name=name or self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r}: {self.node_count} nodes, "
            f"{self.edge_count} edges>"
        )
