"""Global memory (HBM/DRAM) model.

Two usage modes:

- **Event mode** — :meth:`GlobalMemory.request` runs a read/write as a
  simulation process: it acquires a channel, pays access latency, then
  streams at the channel bandwidth. Used by the micro-benchmarks and the
  UVM baseline, where contention between requesters matters cycle by cycle.
- **Analytic mode** — :meth:`GlobalMemory.stream_cycles` returns the cycle
  cost of moving ``n`` bytes given a bandwidth share, used by the DMA fast
  path when streaming megabytes of weights (per-burst event simulation
  would be needlessly slow).

Per-VM byte counters feed the vChunk access counter / bandwidth-cap
mechanism (§4.2) and the warm-up-time model (§6.3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import MemoryConfig
from repro.errors import ConfigError
from repro.sim import Process, Resource, Simulator


@dataclass
class MemoryRequestRecord:
    """Outcome of one event-mode memory request."""

    kind: str  # "read" | "write"
    nbytes: int
    start_cycle: int
    end_cycle: int
    channel: int

    @property
    def latency(self) -> int:
        return self.end_cycle - self.start_cycle


class GlobalMemory:
    """The chip's HBM/DRAM behind the DMA engines."""

    def __init__(self, sim: Simulator, config: MemoryConfig,
                 frequency_hz: int) -> None:
        if frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        self.sim = sim
        self.config = config
        self.frequency_hz = frequency_hz
        self._channels = [
            Resource(sim, capacity=1, name=f"hbm-ch{i}")
            for i in range(config.channels)
        ]
        self._next_channel = 0
        self.bytes_by_vmid: dict[int, int] = {}
        self.total_bytes = 0

    # -- shared helpers -----------------------------------------------------
    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate bytes/cycle over all channels."""
        return self.config.bytes_per_cycle(self.frequency_hz)

    @property
    def channel_bytes_per_cycle(self) -> float:
        return self.config.channel_bytes_per_cycle(self.frequency_hz)

    def _account(self, vmid: int | None, nbytes: int) -> None:
        self.total_bytes += nbytes
        if vmid is not None:
            self.bytes_by_vmid[vmid] = self.bytes_by_vmid.get(vmid, 0) + nbytes

    # -- analytic mode --------------------------------------------------------
    def stream_cycles(self, nbytes: int, bandwidth_share: float = 1.0,
                      vmid: int | None = None) -> int:
        """Cycles to stream ``nbytes`` at ``bandwidth_share`` of aggregate BW."""
        if nbytes < 0:
            raise ConfigError(f"negative byte count {nbytes}")
        if not 0.0 < bandwidth_share <= 1.0:
            raise ConfigError(f"bandwidth share must be in (0, 1], got {bandwidth_share}")
        self._account(vmid, nbytes)
        if nbytes == 0:
            return 0
        rate = self.bytes_per_cycle * bandwidth_share
        return self.config.access_latency + math.ceil(nbytes / rate)

    def warmup_cycles(self, weight_bytes: int, interface_count: int,
                      total_interfaces: int, vmid: int | None = None) -> int:
        """Model-weight warm-up time (§6.3.4).

        Bandwidth allocated to a virtual NPU is proportional to the number
        of memory interfaces its cores span.
        """
        if total_interfaces < 1 or interface_count < 1:
            raise ConfigError("interface counts must be >= 1")
        share = min(1.0, interface_count / total_interfaces)
        return self.stream_cycles(weight_bytes, bandwidth_share=share, vmid=vmid)

    # -- event mode -------------------------------------------------------------
    def request(self, kind: str, nbytes: int, vmid: int | None = None,
                channel: int | None = None) -> Process:
        """Run a read/write as a process; value is a MemoryRequestRecord."""
        if kind not in ("read", "write"):
            raise ConfigError(f"unknown request kind {kind!r}")
        if nbytes <= 0:
            raise ConfigError(f"request size must be positive, got {nbytes}")
        if channel is None:
            channel = self._next_channel
            self._next_channel = (self._next_channel + 1) % len(self._channels)
        return self.sim.process(
            self._run_request(kind, nbytes, vmid, channel),
            name=f"hbm:{kind}:{nbytes}",
        )

    def _run_request(self, kind, nbytes, vmid, channel):
        sim = self.sim
        start = sim.now
        resource = self._channels[channel]
        yield resource.acquire()
        yield sim.timeout(self.config.access_latency)
        transfer = math.ceil(nbytes / self.channel_bytes_per_cycle)
        yield sim.timeout(transfer)
        resource.release()
        self._account(vmid, nbytes)
        return MemoryRequestRecord(
            kind=kind, nbytes=nbytes, start_cycle=start, end_cycle=sim.now,
            channel=channel,
        )
