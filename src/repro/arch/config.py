"""SoC configurations (paper Table 2) and derived hardware parameters.

Two presets mirror the paper's evaluation platforms:

- :func:`fpga_config` — the Chipyard/FireSim FPGA prototype: 8 tiles,
  16x16 systolic arrays, 512 KB scratchpad per tile, 16 GB/s DRAM, 1 GHz.
- :func:`sim_config` — the DCRA large-scale simulation: 36 tiles,
  128x128 systolic arrays, 30 MB scratchpad per tile, 360 GB/s HBM,
  500 MHz. :func:`sim_config(cores=48)` gives the 48-core variant used in
  Fig 16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.arch import calibration
from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class NoCConfig:
    """Network-on-chip parameters."""

    link_bytes_per_cycle: int = calibration.NOC_LINK_BYTES_PER_CYCLE
    router_latency: int = calibration.NOC_ROUTER_LATENCY
    packet_handshake: int = calibration.NOC_PACKET_HANDSHAKE
    transfer_setup: int = calibration.NOC_TRANSFER_SETUP
    packet_bytes: int = calibration.NOC_DEFAULT_PACKET_BYTES

    def __post_init__(self) -> None:
        if self.link_bytes_per_cycle <= 0:
            raise ConfigError("link_bytes_per_cycle must be positive")
        if self.packet_bytes <= 0:
            raise ConfigError("packet_bytes must be positive")

    def packet_serialization(self, payload_bytes: int | None = None) -> int:
        """Cycles to push one packet's payload through a single link."""
        payload = self.packet_bytes if payload_bytes is None else payload_bytes
        return math.ceil(payload / self.link_bytes_per_cycle)


@dataclass(frozen=True)
class MemoryConfig:
    """Global memory (HBM or DRAM) parameters."""

    bandwidth_bytes_per_second: int
    channels: int = 4
    access_latency: int = 60  # cycles from request to first data
    capacity_bytes: int = 16 * GB

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0:
            raise ConfigError("memory bandwidth must be positive")
        if self.channels < 1:
            raise ConfigError("memory needs at least one channel")

    def bytes_per_cycle(self, frequency_hz: int) -> float:
        """Aggregate bytes the memory system moves per NPU cycle."""
        return self.bandwidth_bytes_per_second / frequency_hz

    def channel_bytes_per_cycle(self, frequency_hz: int) -> float:
        return self.bytes_per_cycle(frequency_hz) / self.channels


@dataclass(frozen=True)
class CoreConfig:
    """Per-tile compute and memory parameters."""

    systolic_dim: int = 16
    scratchpad_bytes: int = 512 * KB
    meta_zone_bytes: int = 16 * KB
    vector_lanes: int = 16
    tops: float = 0.5

    def __post_init__(self) -> None:
        if self.systolic_dim < 1:
            raise ConfigError("systolic_dim must be >= 1")
        if self.meta_zone_bytes >= self.scratchpad_bytes:
            raise ConfigError("meta-zone cannot consume the whole scratchpad")

    @property
    def weight_zone_bytes(self) -> int:
        return self.scratchpad_bytes - self.meta_zone_bytes

    @property
    def macs_per_cycle(self) -> int:
        return self.systolic_dim * self.systolic_dim


@dataclass(frozen=True)
class SoCConfig:
    """A full chip configuration (Table 2 column)."""

    name: str
    mesh_rows: int
    mesh_cols: int
    core: CoreConfig
    noc: NoCConfig = field(default_factory=NoCConfig)
    memory: MemoryConfig = field(
        default_factory=lambda: MemoryConfig(bandwidth_bytes_per_second=16 * GB)
    )
    frequency_hz: int = 1_000_000_000
    #: Physical core IDs adjacent to a memory interface (left column by
    #: default); used by heterogeneous topology mapping penalties.
    memory_interface_cores: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.mesh_rows < 1 or self.mesh_cols < 1:
            raise ConfigError("mesh must be at least 1x1")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def core_count(self) -> int:
        return self.mesh_rows * self.mesh_cols

    @property
    def total_scratchpad_bytes(self) -> int:
        return self.core_count * self.core.scratchpad_bytes

    @property
    def total_tops(self) -> float:
        return self.core_count * self.core.tops

    def topology(self):
        """The physical chip topology (2D mesh), memory-tagged."""
        from repro.arch.topology import Topology

        mesh = Topology.mesh2d(self.mesh_rows, self.mesh_cols, name=self.name)
        for core_id in self.memory_interface_cores:
            mesh.node_attrs[core_id] = "mem"
        return mesh

    def with_cores(self, rows: int, cols: int) -> "SoCConfig":
        return replace(self, mesh_rows=rows, mesh_cols=cols,
                       name=f"{self.name}-{rows}x{cols}")


def fpga_config() -> SoCConfig:
    """Table 2, FPGA column: 8 tiles (2x4), 16-dim arrays, 4 MB SRAM total."""
    return SoCConfig(
        name="fpga",
        mesh_rows=2,
        mesh_cols=4,
        core=CoreConfig(
            systolic_dim=16,
            scratchpad_bytes=512 * KB,
            meta_zone_bytes=16 * KB,
            vector_lanes=16,
            tops=0.5,
        ),
        memory=MemoryConfig(bandwidth_bytes_per_second=16 * GB, channels=2),
        frequency_hz=1_000_000_000,
        memory_interface_cores=(0, 4),
    )


def sim_config(cores: int = 36) -> SoCConfig:
    """Table 2, SIM column: 36 tiles (6x6) by default; 48 -> 6x8 (Fig 16).

    128-dim systolic arrays, 30 MB scratchpad per tile (1080 MB total at 36
    cores, 1440 MB at 48), 360 GB/s HBM, 500 MHz, 16 TOPS per tile.
    """
    shapes = {36: (6, 6), 48: (6, 8), 16: (4, 4), 25: (5, 5), 64: (8, 8)}
    if cores not in shapes:
        raise ConfigError(
            f"unsupported SIM core count {cores}; choose from {sorted(shapes)}"
        )
    rows, cols = shapes[cores]
    return SoCConfig(
        name=f"sim{cores}",
        mesh_rows=rows,
        mesh_cols=cols,
        core=CoreConfig(
            systolic_dim=128,
            scratchpad_bytes=30 * MB,
            meta_zone_bytes=64 * KB,
            vector_lanes=128,
            tops=16.0,
        ),
        memory=MemoryConfig(
            bandwidth_bytes_per_second=360 * GB, channels=8,
            capacity_bytes=64 * GB,
        ),
        frequency_hz=500_000_000,
        memory_interface_cores=tuple(range(0, rows * cols, cols)),
    )
