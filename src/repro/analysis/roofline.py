"""Roofline FLOPS-utilization model for cloud NPUs (Fig 3).

Fig 3 measures how much of a TPU's peak FLOPS classic ML models achieve
at batch sizes 1 / 8 / 32. The effect is a roofline fact: per layer, the
achievable rate is capped both by arithmetic intensity (weight traffic
does not batch away) and by how well the layer's dimensions fill the
systolic array. We reproduce it by walking each model's layer graph on a
TPU-like device model and reporting achieved-FLOPS / peak-FLOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.compute import ComputeModel
from repro.arch.config import CoreConfig
from repro.errors import ConfigError
from repro.workloads.graph import ModelGraph


@dataclass(frozen=True)
class DeviceModel:
    """A TPU-core-like roofline device."""

    name: str = "tpu-like"
    peak_tflops: float = 123.0          # TPUv3 core pair, bf16
    memory_bandwidth_gbs: float = 900.0  # HBM
    frequency_ghz: float = 0.94
    systolic_dim: int = 128

    @property
    def macs_per_cycle(self) -> float:
        return self.peak_tflops * 1e12 / 2 / (self.frequency_ghz * 1e9)

    @property
    def bytes_per_cycle(self) -> float:
        return (self.memory_bandwidth_gbs * 1e9) / (self.frequency_ghz * 1e9)


def layer_cycles(device: DeviceModel, compute: ComputeModel,
                 macs: int, mem_bytes: int) -> float:
    """Max of compute occupancy and memory streaming for one layer."""
    compute_cycles = compute.cycles_for_macs(macs)
    # Rescale from the CoreConfig grid to the device's true peak.
    scale = compute.core.macs_per_cycle / device.macs_per_cycle
    compute_cycles = compute_cycles * scale
    memory_cycles = mem_bytes / device.bytes_per_cycle
    return max(compute_cycles, memory_cycles)


def flops_utilization(model: ModelGraph, batch: int = 1,
                      device: DeviceModel | None = None) -> float:
    """Achieved / peak FLOPS for one model at one batch size."""
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    device = device or DeviceModel()
    scaled = model.scaled(batch)
    compute = ComputeModel(CoreConfig(
        systolic_dim=device.systolic_dim,
        scratchpad_bytes=1 << 30, meta_zone_bytes=1 << 10,
    ))
    total_cycles = 0.0
    for layer in scaled.layers:
        # Weights stream once per batch; activations scale with batch.
        mem_bytes = layer.weight_bytes + layer.output_bytes
        total_cycles += layer_cycles(device, compute, layer.macs, mem_bytes)
    if total_cycles == 0:
        return 0.0
    achieved_macs_per_cycle = scaled.total_macs / total_cycles
    return min(1.0, achieved_macs_per_cycle / device.macs_per_cycle)


def utilization_table(models: dict[str, ModelGraph],
                      batches: tuple[int, ...] = (1, 8, 32),
                      device: DeviceModel | None = None
                      ) -> dict[str, dict[int, float]]:
    """Fig 3's full grid: model x batch -> utilization fraction."""
    return {
        name: {
            batch: flops_utilization(graph, batch, device)
            for batch in batches
        }
        for name, graph in models.items()
    }
