"""Mapper perf-regression harness: the mapping fast path's scoreboard.

The similarity mapper is the dominant cost of fleet serving, so its
performance needs a recorded trajectory. This module pins a **corpus**
— the exact sequence of mapper invocations a fragmentation-heavy fleet
trace produces — and replays it against both the fast path and the
retained reference implementation
(:class:`~repro.core.topology_mapping.TopologyMapper` with
``fast_path=False``):

1. :func:`record_corpus` emulates best-fit probe churn over N chips
   (every arrival probes every chip that fits; placements and departures
   become ``alloc``/``free`` events) and returns a flat, deterministic
   event list. Service time uses a fixed per-inference proxy so the
   corpus is a pure function of the trace seed — no simulator, no cost
   model, nothing but mapper calls.
2. :func:`replay` executes the events against fresh mappers (result
   cache disabled, so every call does real mapping work) and collects
   outputs, operation counters and wall time.
3. :func:`run_mapping_perf` compares the two replays and splits the
   digest the way ``BENCH_cost`` does: a **deterministic** section
   (operation counts, pruning accounting, output equality — byte-stable
   across runs and hosts, gated by CI) and a **timing** section
   (wall-clock seconds and speedup — recorded but never gated).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.core.topology_mapping import TopologyMapper
from repro.errors import AllocationError
from repro.serving.workload import generate_fleet_trace

#: Cycles one inference contributes to the corpus's departure proxy.
#: Together with the trace's inter-arrival gap this pins fleet occupancy
#: in the mid-high range where exact placements are rare and similarity
#: mapping does real work.
PROXY_CYCLES_PER_INFERENCE = 60_000

#: Fleet-wide mean inter-arrival gap fed to ``generate_fleet_trace``.
MEAN_INTERARRIVAL = 6_000_000

#: Cores pre-pinned on every chip (scattered, so chips start fragmented
#: instead of offering one big exact mesh block).
PINNED_CORES = (7, 14, 22, 27)

#: Counter keys whose fleet-wide sums make up the deterministic digest.
COUNTER_KEYS = (
    "candidates_considered",
    "candidates_pruned",
    "candidates_refined",
    "objective_evaluations",
    "free_rebuilds",
    "free_updates",
)


@dataclass(frozen=True)
class MappingCorpus:
    """A pinned, replayable sequence of mapper invocations.

    ``events`` entries are tuples: ``("map", chip, rows, cols,
    allocated)`` for an invocation, ``("alloc", chip, cores)`` /
    ``("free", chip, cores)`` for free-set transitions (``allocated`` and
    ``cores`` are sorted tuples, keeping the corpus hashable and
    JSON-stable).
    """

    chips: int
    cores_per_chip: int
    sessions: int
    seed: int
    events: tuple

    @property
    def map_calls(self) -> int:
        return sum(1 for event in self.events if event[0] == "map")

    def digest(self) -> str:
        """Content hash of the event stream (corpus identity)."""
        payload = json.dumps(
            [self.chips, self.cores_per_chip, self.sessions, self.seed,
             list(self.events)],
            separators=(",", ":"),
        )
        return hashlib.blake2s(payload.encode(), digest_size=16).hexdigest()


@dataclass
class ReplayResult:
    """One implementation's pass over a corpus."""

    outputs: list
    counters: dict
    wall_seconds: float

    def outputs_digest(self) -> str:
        payload = json.dumps(
            [[distance, list(map(list, vmap))] for distance, vmap in
             self.outputs],
            separators=(",", ":"),
        )
        return hashlib.blake2s(payload.encode(), digest_size=16).hexdigest()


def mesh_dims(cores: int) -> tuple[int, int]:
    """Squarest rows x cols factorization of a chip's core count."""
    rows = int(cores ** 0.5)
    while rows > 1 and cores % rows:
        rows -= 1
    return rows, cores // rows


def record_corpus(seed: int = 7, sessions: int = 500, chips: int = 8,
                  cores_per_chip: int = 36) -> MappingCorpus:
    """Pin the mapper-call sequence of a fragmented fleet trace.

    Every chip starts with :data:`PINNED_CORES` occupied; each arrival
    probes every chip with room (best-fit ranking by trial distance,
    ties to the lower chip index) and lands on the winner; departures
    fire at ``arrival + inferences * PROXY_CYCLES_PER_INFERENCE``. The
    event list is a pure function of the arguments.
    """
    rows, cols = mesh_dims(cores_per_chip)
    trace = generate_fleet_trace(
        seed, sessions, chips=chips, max_cores=16,
        mean_interarrival_cycles=MEAN_INTERARRIVAL,
        fragmentation_heavy=True,
    )
    chip_topology = Topology.mesh2d(rows, cols)
    pinned = tuple(core for core in PINNED_CORES
                   if core < cores_per_chip)
    mappers = [TopologyMapper(chip_topology, cache_size=0)
               for _ in range(chips)]
    allocated: list[set[int]] = [set(pinned) for _ in range(chips)]
    for mapper in mappers:
        mapper.reset_free_tracking(set(pinned))
    requests: dict[tuple[int, int], Topology] = {}
    live: list[tuple[int, int, tuple[int, ...]]] = []
    events: list[tuple] = []
    for session in trace:
        while live and live[0][0] <= session.arrival_cycle:
            _, index, cores = heapq.heappop(live)
            allocated[index] -= set(cores)
            mappers[index].notify_free(cores)
            events.append(("free", index, cores))
        shape = (session.rows, session.cols)
        request = requests.get(shape)
        if request is None:
            request = requests[shape] = Topology.mesh2d(*shape)
        best = None
        for index, mapper in enumerate(mappers):
            if session.core_count > cores_per_chip - len(allocated[index]):
                continue
            events.append(("map", index, session.rows, session.cols,
                           tuple(sorted(allocated[index]))))
            try:
                result = mapper.map_similar(request, allocated[index],
                                            require_connected=False)
            except AllocationError:
                continue
            if best is None or (result.distance, index) < best[:2]:
                best = (result.distance, index, result)
        if best is None:
            continue
        _, index, result = best
        cores = tuple(result.physical_cores)
        allocated[index] |= set(cores)
        mappers[index].notify_alloc(cores)
        events.append(("alloc", index, cores))
        heapq.heappush(live, (
            session.arrival_cycle
            + session.inferences * PROXY_CYCLES_PER_INFERENCE,
            index, cores,
        ))
    return MappingCorpus(chips=chips, cores_per_chip=cores_per_chip,
                         sessions=sessions, seed=seed,
                         events=tuple(events))


def replay(corpus: MappingCorpus, fast_path: bool) -> ReplayResult:
    """Execute a corpus against fresh mappers; collect outputs + timing.

    The per-mapper result cache is disabled so every ``map`` event pays
    for real mapping work — the replay measures the mapper, not its
    memo. ``alloc``/``free`` events drive ``notify_alloc``/``notify_free``
    so the fast path's incremental free-set maintenance is on the
    measured path.
    """
    rows, cols = mesh_dims(corpus.cores_per_chip)
    chip_topology = Topology.mesh2d(rows, cols)
    pinned = set(core for core in PINNED_CORES
                 if core < corpus.cores_per_chip)
    mappers = [TopologyMapper(chip_topology, cache_size=0,
                              fast_path=fast_path)
               for _ in range(corpus.chips)]
    for mapper in mappers:
        mapper.reset_free_tracking(set(pinned))
    requests: dict[tuple[int, int], Topology] = {}
    for event in corpus.events:
        if event[0] == "map":
            shape = (event[2], event[3])
            if shape not in requests:
                requests[shape] = Topology.mesh2d(*shape)
    outputs: list[tuple] = []
    start = time.perf_counter()
    for event in corpus.events:
        kind = event[0]
        if kind == "map":
            _, index, req_rows, req_cols, alloc = event
            try:
                result = mappers[index].map_similar(
                    requests[(req_rows, req_cols)], set(alloc),
                    require_connected=False,
                )
            except AllocationError:
                outputs.append((-1.0, ()))
                continue
            outputs.append((result.distance,
                            tuple(sorted(result.vmap.items()))))
        elif kind == "alloc":
            mappers[event[1]].notify_alloc(event[2])
        else:
            mappers[event[1]].notify_free(event[2])
    wall = time.perf_counter() - start
    counters: dict[str, int] = {key: 0 for key in COUNTER_KEYS}
    for mapper in mappers:
        stats = mapper.cache_stats()
        for key in COUNTER_KEYS:
            counters[key] += stats[key]
    return ReplayResult(outputs=outputs, counters=counters,
                        wall_seconds=wall)


def run_mapping_perf(seed: int = 7, sessions: int = 500, chips: int = 8,
                     cores_per_chip: int = 36) -> dict:
    """Record a corpus, replay it both ways, and return the two-section
    report: ``deterministic`` (CI-gated) and ``timing`` (recorded only).
    """
    corpus = record_corpus(seed=seed, sessions=sessions, chips=chips,
                           cores_per_chip=cores_per_chip)
    fast = replay(corpus, fast_path=True)
    reference = replay(corpus, fast_path=False)
    mismatches = sum(
        1 for fast_out, ref_out in zip(fast.outputs, reference.outputs)
        if fast_out != ref_out
    )
    pruning = fast.counters
    deterministic = {
        "corpus": {
            "chips": corpus.chips,
            "cores_per_chip": corpus.cores_per_chip,
            "digest": corpus.digest(),
            "events": len(corpus.events),
            "map_calls": corpus.map_calls,
            "seed": corpus.seed,
            "sessions": corpus.sessions,
        },
        "equivalence": {
            "identical": mismatches == 0,
            "map_calls": len(fast.outputs),
            "mismatches": mismatches,
            "outputs_digest": fast.outputs_digest(),
            "reference_outputs_digest": reference.outputs_digest(),
        },
        "fast": dict(sorted(fast.counters.items())),
        "pruning_accounted": (
            pruning["candidates_pruned"] + pruning["candidates_refined"]
            == pruning["candidates_considered"]
        ),
        "reference": {
            "free_rebuilds": reference.counters["free_rebuilds"],
            "objective_evaluations":
                reference.counters["objective_evaluations"],
        },
    }
    speedup = (reference.wall_seconds / fast.wall_seconds
               if fast.wall_seconds > 0 else float("inf"))
    timing = {
        "fast_seconds": round(fast.wall_seconds, 4),
        "reference_seconds": round(reference.wall_seconds, 4),
        "speedup": round(speedup, 2),
        "target_speedup": 3.0,
        "meets_target": speedup >= 3.0,
    }
    return {"deterministic": deterministic, "timing": timing}
