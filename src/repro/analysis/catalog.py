"""NPU hardware-evolution catalog (Fig 2).

Public (approximate) peak-compute and on-chip-SRAM figures for the
accelerator families the paper plots over 2017-2024. Values are the
vendor-quoted dense peak for the device's preferred inference datatype;
they reproduce Fig 2's log-scale trend — compute and SRAM growing one to
two orders of magnitude over the period, inter-core connected NPUs (IPU,
Groq, Tesla D1, Tenstorrent) holding 1-2 orders more SRAM than GPUs of
the same year.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    family: str
    name: str
    year: int
    tflops: float
    sram_mb: float
    #: Inter-core connected dataflow NPU (the paper's focus class)?
    inter_core: bool


DEVICES: tuple[Device, ...] = (
    # Graphcore IPU
    Device("IPU", "GC2", 2018, 125, 300, True),
    Device("IPU", "GC200", 2020, 250, 900, True),
    Device("IPU", "Bow", 2022, 350, 900, True),
    # Nvidia GPUs
    Device("Nvidia GPU", "V100", 2017, 125, 20, False),
    Device("Nvidia GPU", "A100", 2020, 312, 40, False),
    Device("Nvidia GPU", "H100", 2022, 990, 50, False),
    Device("Nvidia GPU", "B200", 2024, 2250, 126, False),
    # Google TPUs
    Device("TPU", "TPUv2", 2017, 45, 24, False),
    Device("TPU", "TPUv3", 2018, 123, 32, False),
    Device("TPU", "TPUv4", 2021, 275, 128, False),
    Device("TPU", "TPUv5p", 2023, 459, 128, False),
    # Tenstorrent
    Device("Tenstorrent", "Grayskull", 2020, 92, 120, True),
    Device("Tenstorrent", "Wormhole", 2021, 110, 192, True),
    Device("Tenstorrent", "Blackhole", 2024, 745, 210, True),
    # Tesla
    Device("Tesla D1", "D1", 2021, 362, 440, True),
    # Groq
    Device("Groq", "LPU", 2020, 750, 230, True),
)


def devices_by_family() -> dict[str, list[Device]]:
    families: dict[str, list[Device]] = {}
    for device in DEVICES:
        families.setdefault(device.family, []).append(device)
    for members in families.values():
        members.sort(key=lambda d: d.year)
    return families


def series(metric: str) -> dict[str, list[tuple[int, float]]]:
    """Per-family (year, value) series for ``metric`` in
    {"tflops", "sram_mb"} — the two panels of Fig 2."""
    if metric not in ("tflops", "sram_mb"):
        raise ValueError(f"unknown metric {metric!r}")
    return {
        family: [(d.year, getattr(d, metric)) for d in members]
        for family, members in devices_by_family().items()
    }


def growth_factor(metric: str) -> float:
    """Max/min value across the catalog — the orders-of-magnitude spread."""
    values = [getattr(d, metric) for d in DEVICES]
    return max(values) / min(values)


def intercore_sram_advantage(year_window: int = 2) -> float:
    """Median SRAM ratio of inter-core NPUs vs same-era GPUs/TPUs."""
    ratios = []
    for npu in (d for d in DEVICES if d.inter_core):
        peers = [
            d.sram_mb for d in DEVICES
            if not d.inter_core and abs(d.year - npu.year) <= year_window
        ]
        if peers:
            ratios.append(npu.sram_mb / (sum(peers) / len(peers)))
    ratios.sort()
    return ratios[len(ratios) // 2]
