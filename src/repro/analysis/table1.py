"""Table 1: qualitative comparison of accelerator virtualization schemes.

Structured form of the paper's mechanism-comparison table, so programs
(and the README) can query it. ``vNPU`` is the only row virtualizing all
three resource dimensions — instruction, memory *and* interconnection —
with full virtualization and unlimited instances.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Mechanism:
    accelerator: str
    method: str
    full_virtualization: bool  # False -> para-virtualization
    threat_model: str          # component responsible for isolation
    virtualizes_instruction: bool
    virtualizes_memory: bool
    virtualizes_interconnect: bool
    instance_limit: int | None  # None -> unlimited


MECHANISMS: tuple[Mechanism, ...] = (
    Mechanism("GPU", "API Forwarding", False, "API server",
              True, True, False, None),
    Mechanism("GPU", "MPS", False, "MPS server", True, True, False, None),
    Mechanism("GPU", "MIG", True, "Hypervisor", True, True, False, 7),
    Mechanism("GPU", "Time-sliced", True, "Scheduler",
              False, False, False, None),
    Mechanism("NPU", "AuRORA", False, "Runtime", True, True, False, None),
    Mechanism("NPU", "V10", False, "Hypervisor", True, True, False, None),
    Mechanism("NPU", "vNPU", True, "Hypervisor", True, True, True, None),
)


def vnpu_row() -> Mechanism:
    return next(m for m in MECHANISMS if m.method == "vNPU")


def only_interconnect_virtualizer() -> Mechanism:
    """The paper's claim: exactly one mechanism virtualizes the NoC."""
    rows = [m for m in MECHANISMS if m.virtualizes_interconnect]
    if len(rows) != 1:
        raise AssertionError(
            f"expected exactly one interconnect virtualizer, got {rows}"
        )
    return rows[0]


def hypervisor_isolated() -> list[Mechanism]:
    """Mechanisms with the strongest (hypervisor) threat model."""
    return [m for m in MECHANISMS if m.threat_model == "Hypervisor"]
