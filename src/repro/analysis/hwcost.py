"""FPGA hardware-cost model for the virtualization extensions (Fig 19).

Fig 19 synthesizes two virtualization schemes and reports the *additional*
FPGA resources relative to the baseline NPU: Kim's (AuRORA-style unified
virtual memory) and vNPU (vChunk + vRouter). We reproduce the comparison
structurally: every added hardware structure is priced from its
architectural state (register bits -> FFs, comparators/muxes -> LUTs,
small tables -> LUTRAM), then reported as a percentage of a
Gemmini-class baseline. The paper's claim to match: both schemes add on
the order of 2 % Total LUTs/FFs, and a 128-entry routing table is almost
free because it lives in (LUT)RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.routing_table import STANDARD_ENTRY_BITS
from repro.core.vchunk import RTT_ENTRY_BITS

#: Gemmini-class baseline synthesis footprint (order-of-magnitude figures
#: from the Chipyard flow; only *ratios* matter for Fig 19).
BASELINE_CONTROLLER = {"total_luts": 24_000, "logic_luts": 22_000,
                       "lutrams": 900, "ffs": 18_000}
BASELINE_CORE = {"total_luts": 65_000, "logic_luts": 60_000,
                 "lutrams": 2_600, "ffs": 48_000}

#: Conversion factors: 1 FF per state bit; 1 LUT per 2 compared bits;
#: LUTRAM stores 64 bits per LUT (distributed RAM).
LUT_PER_COMPARE_BIT = 0.5
LUTRAM_BITS_PER_LUT = 64


@dataclass
class ResourceCost:
    """Added FPGA resources of one hardware structure."""

    name: str
    total_luts: float = 0.0
    logic_luts: float = 0.0
    lutrams: float = 0.0
    ffs: float = 0.0

    def __iadd__(self, other: "ResourceCost") -> "ResourceCost":
        self.total_luts += other.total_luts
        self.logic_luts += other.logic_luts
        self.lutrams += other.lutrams
        self.ffs += other.ffs
        return self

    def percent_of(self, baseline: dict[str, float]) -> dict[str, float]:
        return {
            "total_luts": 100 * self.total_luts / baseline["total_luts"],
            "logic_luts": 100 * self.logic_luts / baseline["logic_luts"],
            "lutrams": 100 * self.lutrams / baseline["lutrams"],
            "ffs": 100 * self.ffs / baseline["ffs"],
        }


def _register_bank(name: str, bits: int, compare_bits: int = 0,
                   in_lutram: bool = False) -> ResourceCost:
    """Price a structure holding ``bits`` of state with some comparators."""
    logic = compare_bits * LUT_PER_COMPARE_BIT
    lutram = bits / LUTRAM_BITS_PER_LUT if in_lutram else 0.0
    ffs = 0.0 if in_lutram else bits
    return ResourceCost(
        name=name,
        total_luts=logic + lutram,
        logic_luts=logic,
        lutrams=lutram,
        ffs=ffs,
    )


def vnpu_controller_cost(routing_table_entries: int = 128) -> ResourceCost:
    """vRouter additions in the NPU controller."""
    cost = ResourceCost("vNPU controller")
    # Routing table in controller SRAM/LUTRAM.
    cost += _register_bank("routing table",
                           routing_table_entries * STANDARD_ENTRY_BITS,
                           compare_bits=16, in_lutram=True)
    # VMID match + v_CoreID comparators, last-translation cache, hyper-REGs.
    cost += _register_bank("lookup pipeline", bits=220, compare_bits=64)
    cost += _register_bank("hyper registers", bits=4 * 64)
    return cost


def vnpu_core_cost(range_tlb_entries: int = 4) -> ResourceCost:
    """vChunk + NoC-vRouter additions in each NPU core."""
    cost = ResourceCost("vNPU core")
    # Range TLB: 4 entries x 144 bits, fully associative comparators.
    cost += _register_bank("range TLB",
                           bits=range_tlb_entries * RTT_ENTRY_BITS,
                           compare_bits=range_tlb_entries * 48)
    # RTT walker state (RTT_BASE / RTT_CUR / RTT_END + adders).
    cost += _register_bank("rtt walker", bits=3 * 16 + 48, compare_bits=48)
    # NoC vRouter: destination rewrite + direction lookup in meta-zone.
    cost += _register_bank("noc rewrite", bits=96, compare_bits=32)
    # Access counter (bytes within window + threshold compare).
    cost += _register_bank("access counter", bits=64, compare_bits=32)
    return cost


def kims_controller_cost() -> ResourceCost:
    """AuRORA-style UVM additions in the controller (comparison system)."""
    cost = ResourceCost("Kim's controller")
    cost += _register_bank("address claim table", bits=128 * 40,
                           compare_bits=40, in_lutram=True)
    cost += _register_bank("rerouting logic", bits=180, compare_bits=80)
    return cost


def kims_core_cost(iotlb_entries: int = 32) -> ResourceCost:
    """AuRORA-style UVM additions per core: IOTLB + page walker."""
    cost = ResourceCost("Kim's core")
    entry_bits = 36 + 28 + 4  # vpn + ppn + flags
    cost += _register_bank("iotlb", bits=iotlb_entries * entry_bits,
                           compare_bits=iotlb_entries * 36)
    cost += _register_bank("page walker", bits=220, compare_bits=64)
    return cost


def figure19_table() -> dict[str, dict[str, float]]:
    """All four bars of Fig 19 plus the standalone routing table."""
    rt = _register_bank("routing table", 128 * STANDARD_ENTRY_BITS,
                        compare_bits=16, in_lutram=True)
    rt_pct = rt.percent_of(BASELINE_CONTROLLER)
    return {
        "NPU controller (Kim's)": kims_controller_cost().percent_of(
            BASELINE_CONTROLLER),
        "NPU controller (vNPU)": vnpu_controller_cost().percent_of(
            BASELINE_CONTROLLER),
        "NPU core (Kim's)": kims_core_cost().percent_of(BASELINE_CORE),
        "NPU core (vNPU)": vnpu_core_cost().percent_of(BASELINE_CORE),
        "Routing table (128 entries)": rt_pct,
    }
