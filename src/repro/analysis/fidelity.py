"""Calibration harness: analytic-tier error against the executor tier.

For a set of workload cases (model, mesh shape) x placement classes,
price each one twice — with the closed-form ``analytic`` tier and with
the event-driven ``executor`` tier on the same canonical placement —
and report the relative error per case. This is both the documentation
of the fidelity/speed trade (the numbers behind the README's tier
table and ``BENCH_cost.json``'s fidelity section) and the test oracle
for the pipeline-model-vs-executor agreement suite.

The analytic model overlaps the send/receive engines with compute and
prices DMA at the memory-interface share, while the executor serializes
each core's instruction stream and streams DMA through per-core
engines; the executor therefore runs *slower-or-equal* per iteration.
The interesting outputs are the error magnitudes per workload class and
that both tiers agree on *ordering* (more cores -> faster).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.arch.config import MB, SoCConfig
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.cost.executor_tier import ExecutorCostModel, canonical_vnpu
from repro.errors import ServingError
from repro.runtime.session import compile_model, estimate_together

#: Default per-core guest memory for calibration probes (the trace
#: generator's allotment, so calibration prices what serving serves).
MEMORY_PER_CORE = 32 * MB

#: The default calibration sweep: one workload per class of the zoo —
#: a classic CNN, a transformer encoder (prefill-shaped), a decode-
#: shaped GPT-2, and a lightweight mobile CNN.
DEFAULT_CASES = (
    ("alexnet", 2, 2),
    ("bert-base", 3, 4),
    ("gpt2-small", 3, 3),
    ("mobilenet", 2, 2),
    ("resnet18", 2, 3),
)


@dataclass(frozen=True)
class CalibrationRow:
    """Analytic vs executor pricing of one (case, placement class)."""

    model: str
    rows: int
    cols: int
    placement_class: str
    analytic_warmup: int
    analytic_iteration: int
    executor_warmup: int
    executor_iteration: int

    @property
    def iteration_error(self) -> float:
        """Relative iteration-cycle error, executor tier as truth."""
        if self.executor_iteration == 0:
            return 0.0
        return (abs(self.analytic_iteration - self.executor_iteration)
                / self.executor_iteration)

    @property
    def warmup_error(self) -> float:
        if self.executor_warmup == 0:
            return 0.0
        return (abs(self.analytic_warmup - self.executor_warmup)
                / self.executor_warmup)


def calibrate(config: SoCConfig,
              cases=DEFAULT_CASES,
              classes: tuple[str, ...] = ("exact",),
              models: dict | None = None,
              memory_per_core_bytes: int = MEMORY_PER_CORE,
              measure_iterations: int = 3) -> list[CalibrationRow]:
    """Price every case x class with both tiers on canonical placements."""
    if not cases:
        raise ServingError("calibration needs at least one workload case")
    executor = ExecutorCostModel(models=models,
                                 measure_iterations=measure_iterations)
    rows: list[CalibrationRow] = []
    for model_name, mesh_rows, mesh_cols in cases:
        memory = mesh_rows * mesh_cols * memory_per_core_bytes
        for klass in classes:
            measured = executor.measure(config, model_name, mesh_rows,
                                        mesh_cols, memory, klass)
            # Analytic pricing on the *same* canonical placement: rebuild
            # it on a fresh scratch chip so the steady-state model sees
            # identical physical routes.
            chip = Chip(config)
            hypervisor = Hypervisor(chip)
            vnpu = canonical_vnpu(
                hypervisor,
                VNpuSpec(f"calib-{model_name}",
                         MeshShape(mesh_rows, mesh_cols), memory),
                klass,
            )
            model = executor.build_model(model_name)
            placed = compile_model(model, vnpu, chip)
            report = estimate_together(chip, [placed])[placed.name]
            rows.append(CalibrationRow(
                model=model_name,
                rows=mesh_rows,
                cols=mesh_cols,
                placement_class=klass,
                analytic_warmup=report.warmup_cycles,
                analytic_iteration=report.iteration_cycles,
                executor_warmup=measured.warmup_cycles,
                executor_iteration=measured.iteration_cycles,
            ))
    return rows


def summarize(rows: list[CalibrationRow]) -> dict:
    """JSON-able digest: per-model and overall max/mean iteration error."""
    if not rows:
        raise ServingError("cannot summarize an empty calibration")
    per_model: dict[str, list[CalibrationRow]] = {}
    for row in rows:
        per_model.setdefault(row.model, []).append(row)
    models = {
        name: {
            "iteration_error_max": round(
                max(r.iteration_error for r in group), 6),
            "iteration_error_mean": round(
                sum(r.iteration_error for r in group) / len(group), 6),
            "warmup_error_max": round(
                max(r.warmup_error for r in group), 6),
        }
        for name, group in sorted(per_model.items())
    }
    return {
        "cases": len(rows),
        "iteration_error_max": round(
            max(r.iteration_error for r in rows), 6),
        "iteration_error_mean": round(
            sum(r.iteration_error for r in rows) / len(rows), 6),
        "models": models,
    }
