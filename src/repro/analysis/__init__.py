"""repro.analysis subpackage (regular package so ``pip install`` ships it)."""
