"""Table formatting shared by the benchmark harness.

Every bench prints a paper-vs-measured table through these helpers so
EXPERIMENTS.md and ``pytest benchmarks/`` output stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A printable fixed-width table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]),
                *(len(row[i]) for row in self.rows)) if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def ratio(a: float, b: float) -> str:
    """'a/b' as an 'N.NNx' string (guarding zero)."""
    if b == 0:
        return "inf"
    return f"{a / b:.2f}x"


def percent(fraction: float) -> str:
    return f"{100 * fraction:.1f}%"
