"""Unit tests for the MIG and TDM baselines."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import sim_config
from repro.arch.topology import Topology
from repro.baselines.mig import mig_partitions, place_on_mig
from repro.baselines.tdm import bind_tdm, tdm_factor
from repro.compiler.mapper import map_stages
from repro.compiler.partitioner import partition
from repro.errors import AllocationError
from repro.workloads import gpt2
from repro.workloads.graph import Layer, ModelGraph


def chain_model(loads, act=4096):
    g = ModelGraph("chain")
    for i, macs in enumerate(loads):
        g.add_layer(Layer(f"l{i}", "fc", macs, macs, act))
    return g


class TestTdmBinding:
    def test_fits_without_sharing_when_enough_cores(self):
        binding = bind_tdm({0: 10, 1: 20}, [100, 101, 102])
        assert len(set(binding.values())) == 2

    def test_lpt_pairs_heavy_with_light(self):
        loads = {0: 100, 1: 10, 2: 90, 3: 20}
        binding = bind_tdm(loads, [7, 8])
        per_core = {}
        for vcore, pcore in binding.items():
            per_core[pcore] = per_core.get(pcore, 0) + loads[vcore]
        # LPT balances: 110 / 110, not 190 / 30.
        assert max(per_core.values()) == 110

    def test_round_robin_ignores_load(self):
        loads = {0: 100, 1: 90, 2: 10, 3: 20}
        binding = bind_tdm(loads, [7, 8], load_aware=False)
        assert binding == {0: 7, 1: 8, 2: 7, 3: 8}

    def test_factor_reflects_multiplexing(self):
        loads = {0: 100, 1: 100, 2: 100}
        binding = bind_tdm(loads, [1, 2])
        assert tdm_factor(binding, loads) == pytest.approx(2.0)

    def test_factor_one_when_unshared(self):
        loads = {0: 100, 1: 100}
        binding = bind_tdm(loads, [1, 2])
        assert tdm_factor(binding, loads) == 1.0
        assert tdm_factor({}, {}) == 1.0

    def test_validation(self):
        with pytest.raises(AllocationError):
            bind_tdm({0: 1}, [])
        with pytest.raises(AllocationError):
            bind_tdm({0: 1}, [5, 5])


class TestMigPartitions:
    def test_halves_of_36(self):
        parts = mig_partitions(sim_config(36), 2)
        assert [p.core_count for p in parts] == [18, 18]
        assert set(parts[0].cores) | set(parts[1].cores) == set(range(36))

    def test_halves_of_48(self):
        parts = mig_partitions(sim_config(48), 2)
        assert [p.core_count for p in parts] == [24, 24]

    def test_thirds_of_36(self):
        parts = mig_partitions(sim_config(36), 3)
        assert [p.core_count for p in parts] == [12, 12, 12]

    def test_uneven_split_rejected(self):
        with pytest.raises(AllocationError):
            mig_partitions(sim_config(36), 5)


class TestMigPlacement:
    def test_small_task_wastes_partition_cores(self):
        """GPT2-small (12 cores) on an 18-core partition: 6 cores idle."""
        cfg = sim_config(36)
        chip = Chip(cfg)
        parts = mig_partitions(cfg, 2)
        mapped = map_stages(
            partition(gpt2("small", 128), 12,
                      weight_zone_bytes=cfg.core.weight_zone_bytes),
            Topology.mesh2d(3, 4),
        )
        placed = place_on_mig(mapped, parts[0], chip.topology)
        assert len(placed.cores) == 12
        assert len(placed.owned_cores) == 18  # 6 held but unused

    def test_oversized_task_triggers_tdm(self):
        """36 virtual cores on a 24-core partition: physical sharing."""
        cfg = sim_config(48)
        chip = Chip(cfg)
        parts = mig_partitions(cfg, 2)
        mapped = map_stages(
            partition(gpt2("large", 128), 36,
                      weight_zone_bytes=cfg.core.weight_zone_bytes),
            Topology.mesh2d(6, 6),
        )
        placed = place_on_mig(mapped, parts[1], chip.topology)
        assert len(placed.cores) == 24
        # Some physical core carries at least two virtual cores' work.
        single = max(mapped.compute_macs.values())
        assert max(placed.core_macs.values()) >= 2 * min(
            mapped.compute_macs.values())
        assert max(placed.core_macs.values()) > single

    def test_colocated_flows_collapse(self):
        cfg = sim_config(36)
        chip = Chip(cfg)
        parts = mig_partitions(cfg, 2)
        model = chain_model([100] * 36)  # TDM on 18 cores
        mapped = map_stages(partition(model, 36), Topology.mesh2d(6, 6))
        placed = place_on_mig(mapped, parts[0], chip.topology)
        # Fewer physical flows than virtual edges: co-resident pairs local.
        assert len(placed.flows) <= len(mapped.flows)

    def test_flows_stay_inside_partition(self):
        cfg = sim_config(36)
        chip = Chip(cfg)
        parts = mig_partitions(cfg, 2)
        mapped = map_stages(
            partition(chain_model([100] * 12), 12), Topology.mesh2d(3, 4))
        placed = place_on_mig(mapped, parts[1], chip.topology)
        for flow in placed.flows:
            for node in flow.path:
                assert node in parts[1].cores

    def test_no_vrouter_overhead(self):
        cfg = sim_config(36)
        chip = Chip(cfg)
        parts = mig_partitions(cfg, 2)
        mapped = map_stages(partition(chain_model([10]), 1),
                            Topology.mesh2d(1, 1))
        placed = place_on_mig(mapped, parts[0], chip.topology)
        assert placed.vrouter_overhead == 0
