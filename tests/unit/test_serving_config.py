"""The declarative config API: ServingConfig, TraceSpec, coerce unity.

Three contracts:

- ``ServingConfig.from_dict(cfg.to_dict())`` round-trips to an equal
  config for every registered policy/placement/elastic/cost-tier/
  evacuation/strategy name (the wire contract), and schedulers built
  from ``config=`` produce byte-identical results to the same knobs
  passed as kwargs (the thin-pass-through contract).
- ``TraceSpec`` names the same trace as the equivalent
  ``generate_trace`` kwargs for every arrival process, round-trips
  through JSON, and conflicts loudly with explicit kwargs.
- Every coerce helper speaks the one registry convention: unknown
  values raise :class:`ServingError` naming the offending value and
  the registered choices.
"""

import json

import pytest

from repro.core.strategies import available_strategies
from repro.cost import available_cost_models, coerce_cost_model
from repro.errors import ServingError
from repro.serving import (
    DEFAULT_SLO_MIX,
    EVACUATION_POLICIES,
    ClusterScheduler,
    DefragPolicy,
    FailureEvent,
    FailureSchedule,
    FleetScheduler,
    ServingConfig,
    TraceSpec,
    available_elastics,
    available_placements,
    available_policies,
    coerce_elastic,
    coerce_evacuation,
    coerce_placement,
    coerce_policy,
    generate_fleet_trace,
    generate_trace,
    resolve_policy,
)
from repro.serving.workload import _TRACE_DEFAULTS


def wire_roundtrip(config: ServingConfig) -> ServingConfig:
    """to_dict -> JSON bytes -> from_dict, as a socket would carry it."""
    return ServingConfig.from_dict(json.loads(json.dumps(config.to_dict())))


def summary_of(fleet) -> str:
    return json.dumps(
        fleet.metrics.summary(fleet.chips[0].chip.config.frequency_hz),
        sort_keys=True)


class TestServingConfigRoundTrip:
    def test_default_roundtrips(self):
        assert wire_roundtrip(ServingConfig()) == ServingConfig()

    def test_every_registered_name_roundtrips(self):
        # The acceptance sweep: every policy x placement pairing, and
        # every elastic/cost/evacuation/strategy name, survives the
        # wire byte-for-byte.
        for policy in available_policies():
            for placement in available_placements():
                config = ServingConfig(policy=policy, placement=placement)
                assert wire_roundtrip(config) == config
        for elastic in available_elastics():
            config = ServingConfig(elastic=elastic)
            assert wire_roundtrip(config) == config
        for cost_model in available_cost_models():
            config = ServingConfig(cost_model=cost_model)
            assert wire_roundtrip(config) == config
        for evacuation in EVACUATION_POLICIES:
            config = ServingConfig(evacuation=evacuation)
            assert wire_roundtrip(config) == config
        for strategy in available_strategies():
            config = ServingConfig(strategy=strategy)
            assert wire_roundtrip(config) == config

    def test_defrag_and_faults_roundtrip(self):
        config = ServingConfig(
            defrag=DefragPolicy(fragmentation_threshold=0.4,
                                max_migrations_per_trigger=3),
            faults=FailureSchedule((
                FailureEvent(cycle=1_000, chip_index=1, kind="chip",
                             duration_cycles=5_000),
                FailureEvent(cycle=9_000, chip_index=0, kind="link",
                             duration_cycles=2_000, link_index=7),
            )))
        assert wire_roundtrip(config) == config

    def test_instance_serializes_by_registered_name(self):
        config = ServingConfig(policy=resolve_policy("priority"))
        assert config.to_dict()["policy"] == "priority"
        # The decoded config holds the *name*; it still compares equal
        # through the wire dict (names are the canonical form).
        assert wire_roundtrip(config).to_dict() == config.to_dict()

    def test_unregistered_instance_refused_at_to_dict(self):
        model = coerce_cost_model("analytic")
        model.name = ""  # ad-hoc: no registry name to serialize under
        config = ServingConfig(cost_model=model)
        with pytest.raises(ServingError, match="cannot serialize"):
            config.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServingError, match="unknown serving config"):
            ServingConfig.from_dict({"polciy": "fcfs"})

    def test_from_dict_rejects_bad_nested_specs(self):
        with pytest.raises(ServingError, match="bad defrag spec"):
            ServingConfig.from_dict({"defrag": {"threshold": 0.3}})
        with pytest.raises(ServingError, match="bad faults spec"):
            ServingConfig.from_dict({"faults": [{"when": 5}]})

    def test_partial_dict_keeps_defaults(self):
        config = ServingConfig.from_dict({"policy": "best_fit"})
        assert config.policy == "best_fit"
        assert config.placement == "least_loaded"


class TestServingConfigFailFast:
    @pytest.mark.parametrize("kwargs", [
        {"policy": "nope"},
        {"placement": "nope"},
        {"cost_model": "nope"},
        {"elastic": "nope"},
        {"evacuation": "nope"},
    ])
    def test_unknown_names_raise_at_construction(self, kwargs):
        with pytest.raises(ServingError, match="nope"):
            ServingConfig(**kwargs)

    def test_unknown_strategy_raises_at_construction(self):
        # Strategies live in the hypervisor's registry; the config still
        # fails fast, with that family's own error type.
        from repro.errors import HypervisorError
        with pytest.raises(HypervisorError, match="nope"):
            ServingConfig(strategy="nope")

    def test_non_policy_objects_rejected(self):
        with pytest.raises(ServingError, match="must be a registered name"):
            ServingConfig(policy=42)
        with pytest.raises(ServingError, match="DefragPolicy"):
            ServingConfig(defrag=0.25)
        with pytest.raises(ServingError, match="FailureSchedule"):
            ServingConfig(faults=[("chip", 5)])


class TestConfigPassThrough:
    def test_fleet_config_equals_kwargs(self):
        trace = generate_fleet_trace(3, 30, chips=2, max_cores=16,
                                     slo_mix=DEFAULT_SLO_MIX)
        config = ServingConfig(policy="priority", placement="best_fit",
                               elastic="shrink_then_preempt")
        via_config = FleetScheduler.homogeneous(2, cores=16, config=config)
        via_config.submit(list(trace))
        via_config.run()
        via_kwargs = FleetScheduler.homogeneous(
            2, cores=16, policy="priority", placement="best_fit",
            elastic="shrink_then_preempt")
        via_kwargs.submit(list(trace))
        via_kwargs.run()
        assert summary_of(via_config) == summary_of(via_kwargs)

    def test_explicit_kwargs_override_config(self):
        config = ServingConfig(policy="priority", evacuation="kill_requeue")
        fleet = FleetScheduler.homogeneous(2, cores=16, config=config,
                                           policy="best_fit")
        assert fleet.policy.name == "best_fit"  # explicit wins
        assert fleet.evacuation == "kill_requeue"  # config fills the rest

    def test_default_valued_kwargs_defer_to_config(self):
        config = ServingConfig(policy="priority")
        fleet = FleetScheduler.homogeneous(2, cores=16, config=config,
                                           policy="fcfs")
        assert fleet.policy.name == "priority"

    def test_cluster_scheduler_uses_single_chip_subset(self):
        from repro.arch.chip import Chip
        from repro.arch.config import sim_config

        config = ServingConfig(policy="priority", placement="best_fit",
                               elastic="preempt")
        scheduler = ClusterScheduler(Chip(sim_config(16)), config=config)
        assert scheduler.policy.name == "priority"
        assert scheduler.elastic is not None
        cluster_keys = set(config.cluster_kwargs())
        assert "placement" not in cluster_keys  # fleet-only knob


class TestTraceSpec:
    @pytest.mark.parametrize("knobs", [
        {},
        {"arrival_process": "bursty"},
        {"arrival_process": "diurnal", "diurnal_amplitude": 0.5},
        {"slo_mix": DEFAULT_SLO_MIX, "sticky_fraction": 0.2},
    ])
    def test_spec_names_the_same_trace(self, knobs):
        assert (TraceSpec(**knobs).generate(9, 40)
                == generate_trace(9, 40, **knobs))

    def test_spec_overload_forwards(self):
        spec = TraceSpec(arrival_process="bursty", max_cores=16)
        assert (generate_trace(5, 25, spec=spec)
                == generate_trace(5, 25, arrival_process="bursty",
                                  max_cores=16))

    def test_spec_conflicts_with_explicit_kwargs(self):
        with pytest.raises(ServingError, match="conflicts with explicit"):
            generate_trace(5, 25, max_cores=16, spec=TraceSpec())

    def test_dict_roundtrip(self):
        spec = TraceSpec(arrival_process="diurnal", max_cores=16,
                         slo_mix=DEFAULT_SLO_MIX, sticky_fraction=0.25)
        decoded = TraceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert decoded == spec
        assert decoded.generate(3, 20) == spec.generate(3, 20)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServingError, match="unknown trace spec"):
            TraceSpec.from_dict({"arrivals": "bursty"})

    def test_spec_validates_at_construction(self):
        with pytest.raises(ServingError, match="unknown arrival process"):
            TraceSpec(arrival_process="nope")
        with pytest.raises(ServingError, match="sticky_fraction"):
            TraceSpec(sticky_fraction=1.5)

    def test_defaults_locked_to_generator_signature(self):
        # The lockstep assert in workload.py is the real guard; this
        # pins the visible behavior: a default spec = default kwargs.
        assert TraceSpec().kwargs() == dict(_TRACE_DEFAULTS)


class TestCoerceConvention:
    @pytest.mark.parametrize("coerce,family", [
        (coerce_policy, "admission policy"),
        (coerce_placement, "placement policy"),
        (coerce_elastic, "elastic policy"),
        (coerce_cost_model, "cost model tier"),
        (coerce_evacuation, "evacuation policy"),
    ])
    def test_unknown_name_error_names_value_and_choices(self, coerce,
                                                        family):
        with pytest.raises(ServingError, match="choose from") as excinfo:
            coerce("definitely-not-registered")
        assert "definitely-not-registered" in str(excinfo.value)

    @pytest.mark.parametrize("coerce", [
        coerce_policy, coerce_placement, coerce_elastic,
        coerce_cost_model, coerce_evacuation,
    ])
    def test_wrong_type_error_names_value_and_choices(self, coerce):
        with pytest.raises(ServingError, match="choose from") as excinfo:
            coerce(3.14)
        assert "3.14" in str(excinfo.value)

    def test_none_allowed_only_where_optional(self):
        assert coerce_elastic(None) is None
        with pytest.raises(ServingError):
            coerce_policy(None)
