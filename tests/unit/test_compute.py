"""Unit tests for the kernel timing model."""

import pytest

from repro.arch.compute import ComputeModel
from repro.arch.config import CoreConfig
from repro.errors import ConfigError


@pytest.fixture
def model():
    return ComputeModel(CoreConfig(systolic_dim=16, vector_lanes=16))


class TestMatmul:
    def test_mac_count(self, model):
        cost = model.matmul(128, 128, 128)
        assert cost.macs == 128 ** 3
        assert cost.flops == 2 * 128 ** 3

    def test_cycles_lower_bounded_by_peak(self, model):
        cost = model.matmul(128, 128, 128)
        ideal = 128 ** 3 / 256
        assert cost.cycles >= ideal

    def test_cycles_scale_with_k(self, model):
        small = model.matmul(64, 64, 64)
        tall = model.matmul(64, 256, 64)
        assert tall.cycles > 3 * small.cycles

    def test_bad_dims_rejected(self, model):
        with pytest.raises(ConfigError):
            model.matmul(0, 4, 4)


class TestConv(object):
    def test_conv_mac_count(self, model):
        cost = model.conv2d(h=32, w=32, cin=16, cout=16, kernel=3)
        assert cost.macs == 32 * 32 * 16 * 16 * 9

    def test_stride_reduces_work(self, model):
        dense = model.conv2d(32, 32, 16, 16, 3, stride=1)
        strided = model.conv2d(32, 32, 16, 16, 3, stride=2)
        assert strided.macs == dense.macs // 4

    def test_kernel_name_matches_paper_notation(self, model):
        cost = model.conv2d(32, 32, 16, 16, 3)
        assert cost.name == "conv32hw16c_16oc3k"


class TestOtherKernels:
    def test_vector_op_uses_lanes(self, model):
        cost = model.vector_op(1600)
        assert cost.cycles == 100

    def test_attention_combines_matmuls_and_softmax(self, model):
        cost = model.attention(seq_len=16, dim=128, heads=4)
        assert cost.cycles > 0
        assert cost.macs > 16 * 32 * 16 * 2  # at least QK^T + PV per head

    def test_cycles_for_macs_generic(self, model):
        assert model.cycles_for_macs(0) == 0
        assert model.cycles_for_macs(256_000) >= 1000

    def test_negative_macs_rejected(self, model):
        with pytest.raises(ConfigError):
            model.cycles_for_macs(-1)


class TestFig12Claim:
    def test_kernels_orders_of_magnitude_above_dispatch(self, model):
        """Fig 12: conv/matmul run 2-3 orders above instruction routing."""
        from repro.arch import calibration

        dispatch = calibration.INOC_DISPATCH_BASE + 8 * calibration.INOC_DISPATCH_PER_HOP
        conv = model.conv2d(32, 32, 16, 16, 3).cycles
        matmul = model.matmul(128, 128, 128).cycles
        assert conv > 100 * dispatch
        assert matmul > 50 * dispatch

    def test_efficiency_bounds(self):
        with pytest.raises(ConfigError):
            ComputeModel(CoreConfig(), efficiency=0.0)
        with pytest.raises(ConfigError):
            ComputeModel(CoreConfig(), efficiency=1.5)
