"""Unit tests for memory-trace pattern analysis (Fig 6)."""

import pytest

from repro.mem.trace import MemoryTrace


def record_iterations(trace, core, sequences, nbytes=4096):
    for iteration, addresses in enumerate(sequences):
        for va in addresses:
            trace.record(core, iteration, va, nbytes)


class TestPatterns:
    def test_monotonic_sequences_score_one(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 100, 200], [0, 100, 200]])
        stats = trace.analyze_core(0)
        assert stats.monotonic_fraction == 1.0
        assert stats.repeat_fraction == 1.0

    def test_non_monotonic_detected(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[200, 100, 0]])
        assert trace.analyze_core(0).monotonic_fraction == 0.0

    def test_changed_iteration_breaks_repeat(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 100], [0, 999]])
        assert trace.analyze_core(0).repeat_fraction == 0.0

    def test_mean_access_bytes(self):
        trace = MemoryTrace()
        trace.record(0, 0, 0, 1000)
        trace.record(0, 0, 8, 3000)
        assert trace.analyze_core(0).mean_access_bytes == 2000

    def test_unknown_core_raises(self):
        with pytest.raises(ValueError):
            MemoryTrace().analyze_core(5)

    def test_summary_averages_cores(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 1, 2]])
        record_iterations(trace, 1, [[2, 1, 0]])
        report = trace.summary()
        assert report.monotonic_fraction == pytest.approx(0.5)
        assert len(report.per_core) == 2

    def test_sequence_accessor(self):
        trace = MemoryTrace()
        record_iterations(trace, 2, [[5, 10]])
        assert trace.sequence(2, 0) == [5, 10]
        assert trace.sequence(2, 9) == []

    def test_tensor_granular_flag(self):
        trace = MemoryTrace()
        trace.record(0, 0, 0, 16)  # word-level accesses
        assert not trace.summary().tensor_granular
