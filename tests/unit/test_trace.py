"""Unit tests for memory-trace pattern analysis (Fig 6)."""

import pytest

from repro.mem.trace import MemoryTrace


def record_iterations(trace, core, sequences, nbytes=4096):
    for iteration, addresses in enumerate(sequences):
        for va in addresses:
            trace.record(core, iteration, va, nbytes)


class TestPatterns:
    def test_monotonic_sequences_score_one(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 100, 200], [0, 100, 200]])
        stats = trace.analyze_core(0)
        assert stats.monotonic_fraction == 1.0
        assert stats.repeat_fraction == 1.0

    def test_non_monotonic_detected(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[200, 100, 0]])
        assert trace.analyze_core(0).monotonic_fraction == 0.0

    def test_changed_iteration_breaks_repeat(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 100], [0, 999]])
        assert trace.analyze_core(0).repeat_fraction == 0.0

    def test_mean_access_bytes(self):
        trace = MemoryTrace()
        trace.record(0, 0, 0, 1000)
        trace.record(0, 0, 8, 3000)
        assert trace.analyze_core(0).mean_access_bytes == 2000

    def test_unknown_core_raises(self):
        with pytest.raises(ValueError):
            MemoryTrace().analyze_core(5)

    def test_summary_averages_cores(self):
        trace = MemoryTrace()
        record_iterations(trace, 0, [[0, 1, 2]])
        record_iterations(trace, 1, [[2, 1, 0]])
        report = trace.summary()
        assert report.monotonic_fraction == pytest.approx(0.5)
        assert len(report.per_core) == 2

    def test_sequence_accessor(self):
        trace = MemoryTrace()
        record_iterations(trace, 2, [[5, 10]])
        assert trace.sequence(2, 0) == [5, 10]
        assert trace.sequence(2, 9) == []

    def test_tensor_granular_flag(self):
        trace = MemoryTrace()
        trace.record(0, 0, 0, 16)  # word-level accesses
        assert not trace.summary().tensor_granular


class TestTruncationAndFlush:
    def test_max_events_keeps_newest_window(self):
        trace = MemoryTrace(max_events=3)
        for va in (10, 20, 30, 40, 50):
            trace.record(0, 0, va, 4096)
        assert len(trace) == 3
        assert [e.virtual_address for e in trace.events] == [30, 40, 50]

    def test_dropped_counter_tracks_evictions(self):
        trace = MemoryTrace(max_events=2)
        for va in range(5):
            trace.record(0, 0, va, 64)
        assert trace.dropped == 3

    def test_unbounded_by_default(self):
        trace = MemoryTrace()
        for va in range(1000):
            trace.record(0, 0, va, 64)
        assert len(trace) == 1000
        assert trace.dropped == 0

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace(max_events=0)

    def test_flush_returns_window_and_resets(self):
        trace = MemoryTrace(max_events=2)
        for va in (1, 2, 3):
            trace.record(0, 0, va, 64)
        flushed = trace.flush()
        assert [e.virtual_address for e in flushed] == [2, 3]
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_recording_resumes_after_flush(self):
        trace = MemoryTrace(max_events=4)
        trace.record(0, 0, 1, 64)
        trace.flush()
        trace.record(0, 0, 2, 64)
        assert trace.sequence(0, 0) == [2]
        with pytest.raises(ValueError):
            trace.analyze_core(9)  # only core 0 survived the flush

    def test_truncation_analyzes_surviving_window_only(self):
        trace = MemoryTrace(max_events=3)
        record_iterations(trace, 0, [[100, 200, 300], [0, 1, 2]])
        stats = trace.analyze_core(0)
        # Only the second iteration's three events remain; monotonic.
        assert stats.accesses_per_iteration == 3
        assert stats.monotonic_fraction == 1.0

    def test_empty_trace_summary_is_empty_report(self):
        report = MemoryTrace().summary()
        assert report.per_core == []
        assert report.monotonic_fraction == 0.0
        assert not report.tensor_granular
