"""Unit tests for the DMA engine and its translation-stall accounting."""

import pytest

from repro.arch.dma import DmaEngine, TensorAccess
from repro.core.vchunk import AccessCounter, RangeTranslator
from repro.errors import ConfigError
from repro.mem.address_space import PhysicalTranslator
from repro.mem.page_table import PageTableTranslator
from repro.mem.trace import MemoryTrace

MB = 1 << 20


def mapped_range_translator(tensors):
    translator = RangeTranslator()
    for tensor in tensors:
        translator.map_range(tensor.virtual_address, tensor.virtual_address,
                             tensor.nbytes)
    return translator


def mapped_page_translator(tensors, entries):
    translator = PageTableTranslator(tlb_entries=entries)
    for tensor in tensors:
        base = tensor.virtual_address & ~0xFFF
        span = tensor.nbytes + (tensor.virtual_address - base) + 0xFFF
        translator.map_range(base, base, span & ~0xFFF or 0x1000)
    return translator


def weight_tensors(count=8, size=256 * 1024):
    return [TensorAccess(i * (size + 0x1000), size) for i in range(count)]


class TestBasics:
    def test_empty_stream_is_free(self):
        engine = DmaEngine(0, PhysicalTranslator())
        result = engine.stream_weights([])
        assert result.total_cycles == 0

    def test_payload_accounted_exactly(self):
        tensors = weight_tensors(count=3, size=10_000)
        engine = DmaEngine(0, PhysicalTranslator())
        result = engine.stream_weights(tensors)
        assert result.payload_bytes == 30_000

    def test_physical_has_no_translation_stall(self):
        engine = DmaEngine(0, PhysicalTranslator())
        result = engine.stream_weights(weight_tensors())
        assert result.translation_stall_cycles == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            DmaEngine(0, PhysicalTranslator(), bytes_per_cycle=0)
        with pytest.raises(ConfigError):
            DmaEngine(0, PhysicalTranslator(), issue_interval=0)
        engine = DmaEngine(0, PhysicalTranslator())
        with pytest.raises(ConfigError):
            engine.stream_weights(weight_tensors(), streams=0)
        with pytest.raises(ConfigError):
            TensorAccess(0, 0)

    def test_bandwidth_bound_when_issue_is_fast(self):
        engine = DmaEngine(0, PhysicalTranslator(), bytes_per_cycle=1.0,
                           issue_interval=1)
        result = engine.stream_weights(weight_tensors(count=2, size=4096))
        assert result.bandwidth_cycles > result.issue_cycles
        assert result.total_cycles >= result.bandwidth_cycles


class TestTranslationStalls:
    def test_small_tlb_stalls_more_than_large(self):
        """IOTLB4 vs IOTLB32 under 6 interleaved streams (Fig 14 mechanism)."""
        tensors = weight_tensors(count=12, size=128 * 1024)
        small = DmaEngine(0, mapped_page_translator(tensors, 4))
        large = DmaEngine(0, mapped_page_translator(tensors, 32))
        stall_small = small.stream_weights(tensors, streams=6).translation_stall_cycles
        stall_large = large.stream_weights(tensors, streams=6).translation_stall_cycles
        assert stall_small > 1.5 * stall_large

    def test_range_translation_cheaper_than_pages(self):
        tensors = weight_tensors(count=12, size=128 * 1024)
        rtt = DmaEngine(0, mapped_range_translator(tensors))
        pages = DmaEngine(0, mapped_page_translator(tensors, 4))
        rtt_result = rtt.stream_weights(tensors, streams=6)
        page_result = pages.stream_weights(tensors, streams=6)
        assert rtt_result.translation_stall_cycles < (
            page_result.translation_stall_cycles / 3
        )

    def test_overhead_metric(self):
        tensors = weight_tensors(count=6, size=64 * 1024)
        engine = DmaEngine(0, mapped_page_translator(tensors, 4))
        result = engine.stream_weights(tensors, streams=6)
        assert 0.0 < result.translation_overhead < 1.0


class TestThrottlingAndTrace:
    def test_access_counter_throttles(self):
        tensors = weight_tensors(count=4, size=64 * 1024)
        counter = AccessCounter(window_cycles=1000, max_bytes_per_window=8192)
        engine = DmaEngine(0, PhysicalTranslator(), access_counter=counter)
        result = engine.stream_weights(tensors)
        assert result.throttle_stall_cycles > 0
        uncapped = DmaEngine(0, PhysicalTranslator())
        assert (uncapped.stream_weights(tensors).total_cycles
                < result.total_cycles)

    def test_trace_records_tensor_granularity(self):
        trace = MemoryTrace()
        tensors = weight_tensors(count=5, size=32 * 1024)
        engine = DmaEngine(3, PhysicalTranslator(), trace=trace)
        engine.stream_weights(tensors, iteration=0)
        engine.stream_weights(tensors, iteration=1)
        assert len(trace) == 10
        report = trace.summary()
        assert report.monotonic_fraction == 1.0  # Pattern-2
        assert report.repeat_fraction == 1.0     # Pattern-3
        assert report.tensor_granular             # Pattern-1
