"""Unit tests for the instruction vRouter and NoC vRouter."""

import pytest

from repro.arch import calibration
from repro.arch.topology import MeshShape, Topology
from repro.core.routing_table import ShapedRoutingTable, StandardRoutingTable
from repro.core.vrouter import InstructionVRouter, NocVRouter
from repro.errors import IsolationViolation, RoutingError


class TestInstructionVRouter:
    def test_redirect_uses_table(self):
        router = InstructionVRouter()
        router.install(StandardRoutingTable(1, {0: 4, 1: 5}))
        redirect = router.redirect(1, 0)
        assert redirect.p_core == 4
        assert redirect.cycles == calibration.VROUTER_RT_LOOKUP

    def test_consecutive_same_core_cached(self):
        """§6.2.1: repeated instructions to one core skip the lookup."""
        router = InstructionVRouter()
        router.install(StandardRoutingTable(1, {0: 4, 1: 5}))
        router.redirect(1, 0)
        second = router.redirect(1, 0)
        assert second.cached
        assert second.cycles == 0
        third = router.redirect(1, 1)  # different core: lookup again
        assert not third.cached

    def test_isolation_between_vms(self):
        router = InstructionVRouter()
        router.install(StandardRoutingTable(1, {0: 4}))
        router.install(StandardRoutingTable(2, {0: 9}))
        assert router.redirect(1, 0).p_core == 4
        assert router.redirect(2, 0).p_core == 9

    def test_missing_table(self):
        router = InstructionVRouter()
        with pytest.raises(IsolationViolation):
            router.redirect(7, 0)

    def test_remove_table(self):
        router = InstructionVRouter()
        router.install(StandardRoutingTable(1, {0: 4}))
        router.remove(1)
        with pytest.raises(IsolationViolation):
            router.redirect(1, 0)

    def test_configure_cycles_linear_in_cores(self):
        """Fig 11: a few hundred cycles, linear in table size."""
        one = InstructionVRouter.configure_cycles(1)
        eight = InstructionVRouter.configure_cycles(8)
        assert eight - one == 7 * calibration.RT_CONFIG_PER_CORE
        assert eight < 500

    def test_configure_rejects_zero_cores(self):
        with pytest.raises(RoutingError):
            InstructionVRouter.configure_cycles(0)


class TestNocVRouter:
    def setup_method(self):
        self.chip = Topology.mesh2d(3, 4)

    def test_confined_path_stays_inside_vm(self):
        """Fig 5's vNPU2 scenario: irregular topology, confined route."""
        # L-shaped VM: physical cores 3, 7, 11, 10 (right column + bottom).
        table = StandardRoutingTable(2, {0: 3, 1: 7, 2: 11, 3: 10})
        router = NocVRouter(self.chip, table, mode="confined")
        route = router.resolve(0, 3)  # v0 (p3) -> v3 (p10)
        assert route.path == [3, 7, 11, 10]
        assert all(node in router.owned for node in route.path)

    def test_dor_mode_no_explicit_path(self):
        table = StandardRoutingTable(2, {0: 3, 1: 10})
        router = NocVRouter(self.chip, table, mode="dor")
        route = router.resolve(0, 1)
        assert route.path is None

    def test_would_interfere_detects_dor_leakage(self):
        # p3 -> p10: DOR goes 3-2-10? coords: 3=(0,3), 10=(2,2):
        # x first: 3->2 (=(0,2)), then down 2->6->10. Nodes 2 and 6 foreign.
        table = StandardRoutingTable(2, {0: 3, 1: 7, 2: 11, 3: 10})
        router = NocVRouter(self.chip, table, mode="dor")
        assert router.would_interfere(0, 3)
        # Adjacent pair: no interference.
        assert not router.would_interfere(0, 1)

    def test_disconnected_vm_has_no_confined_path(self):
        table = StandardRoutingTable(2, {0: 0, 1: 11})  # opposite corners
        router = NocVRouter(self.chip, table, mode="confined")
        with pytest.raises(RoutingError, match="R-3"):
            router.resolve(0, 1)

    def test_unknown_mode_rejected(self):
        table = StandardRoutingTable(1, {0: 0})
        with pytest.raises(RoutingError):
            NocVRouter(self.chip, table, mode="magic")

    def test_resolve_carries_vrouter_latencies(self):
        table = StandardRoutingTable(1, {0: 0, 1: 1})
        router = NocVRouter(self.chip, table)
        route = router.resolve(0, 1)
        assert route.first_packet_delay == (
            calibration.VROUTER_RT_LOOKUP + calibration.VROUTER_REWRITE
        )
        assert route.completion_delay == calibration.VROUTER_META_FETCH

    def test_same_core_resolve(self):
        table = StandardRoutingTable(1, {0: 5})
        router = NocVRouter(self.chip, table)
        route = router.resolve(0, 0)
        assert route.p_src == route.p_dst == 5
        assert route.path is None

    def test_shaped_table_with_vrouter(self):
        table = ShapedRoutingTable(3, MeshShape(2, 2), p_base=5, chip_cols=4)
        router = NocVRouter(self.chip, table, mode="confined")
        route = router.resolve(0, 3)  # p5 -> p10
        assert set(route.path) <= {5, 6, 9, 10}

    def test_table_mapping_outside_chip_rejected(self):
        table = StandardRoutingTable(1, {0: 99})
        with pytest.raises(RoutingError):
            NocVRouter(self.chip, table)
