"""Churn-invariant property tests: no leaks under create/destroy/migrate.

Seeded random operation sequences against one :class:`Hypervisor`: after
everything is destroyed, the chip must be byte-for-byte back to its
initial hyper-mode state — buddy allocator fully coalesced, no routing
table installed for any VM, every core's scratchpad meta-zone empty.
PR 1's rollback test covered one failure path; this covers arbitrary
interleavings of the whole lifecycle, including live migration.
"""

import random

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import AllocationError
from repro.sim import Simulator

SHAPES = [(1, 2), (1, 3), (2, 2), (2, 3), (3, 3), (3, 4)]


def random_spec(rng, tag):
    rows, cols = rng.choice(SHAPES)
    return VNpuSpec(
        name=f"churn-{tag}",
        topology=MeshShape(rows, cols),
        memory_bytes=rows * cols * rng.choice([8, 16, 32]) * MB,
    )


def assert_pristine(hypervisor):
    """The no-leak invariant: hyper-mode state is back to the seed state."""
    chip = hypervisor.chip
    assert hypervisor.vnpus == []
    assert hypervisor.allocated_cores == set()
    assert hypervisor.buddy.fully_coalesced, \
        "buddy allocator did not coalesce back to its initial free state"
    assert hypervisor.buddy.free_bytes == hypervisor.buddy.capacity
    assert chip.controller.ivrouter.vmids == [], \
        "routing tables remain installed after all vNPUs were destroyed"
    for core_id in chip.cores:
        spad = chip.core(core_id).scratchpad
        assert spad.meta_regions == [], \
            f"core {core_id} scratchpad meta-zone is not empty"
        assert spad.meta_free == spad.meta_capacity


def churn(seed, steps=60, migrate_every=0.15):
    rng = random.Random(seed)
    hypervisor = Hypervisor(Chip(sim_config(16)))
    live = []
    for step in range(steps):
        roll = rng.random()
        if live and roll < migrate_every:
            vmid = rng.choice(live)
            try:
                migrated, cost = hypervisor.migrate_vnpu(vmid)
            except AllocationError:
                continue
            assert cost > 0
            assert migrated.vmid == vmid  # in-place keeps the VMID
        elif live and roll < 0.45:
            vmid = live.pop(rng.randrange(len(live)))
            hypervisor.destroy_vnpu(vmid)
        else:
            try:
                vnpu = hypervisor.create_vnpu(random_spec(rng, step))
            except AllocationError:
                continue
            live.append(vnpu.vmid)
    for vmid in live:
        hypervisor.destroy_vnpu(vmid)
    return hypervisor


@pytest.mark.parametrize("seed", [1, 7, 13, 42, 97, 2025])
def test_churn_leaves_no_trace(seed):
    assert_pristine(churn(seed))


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_cross_chip_churn_leaves_both_chips_clean(seed):
    """Random create/migrate-across/destroy over two hypervisors."""
    rng = random.Random(seed)
    sim = Simulator()
    fleet = [Hypervisor(Chip(sim_config(16), sim=sim)) for _ in range(2)]
    live = []  # (hypervisor index, vmid)
    for step in range(50):
        roll = rng.random()
        if live and roll < 0.2:
            index, vmid = live.pop(rng.randrange(len(live)))
            source, target = fleet[index], fleet[1 - index]
            try:
                migrated, cost = source.migrate_vnpu(vmid, destination=target)
            except AllocationError:
                live.append((index, vmid))
                continue
            assert cost > 0
            assert all(v.vmid != vmid for v in source.vnpus)
            live.append((1 - index, migrated.vmid))
        elif live and roll < 0.5:
            index, vmid = live.pop(rng.randrange(len(live)))
            fleet[index].destroy_vnpu(vmid)
        else:
            index = rng.randrange(2)
            try:
                vnpu = fleet[index].create_vnpu(random_spec(rng, step))
            except AllocationError:
                continue
            live.append((index, vnpu.vmid))
    for index, vmid in live:
        fleet[index].destroy_vnpu(vmid)
    for hypervisor in fleet:
        assert_pristine(hypervisor)


def test_migration_moves_all_resources_cross_chip():
    """After a cross-chip migration the source is pristine, the target owns
    the memory and routing state, and the spec is preserved."""
    sim = Simulator()
    source = Hypervisor(Chip(sim_config(16), sim=sim))
    target = Hypervisor(Chip(sim_config(16), sim=sim))
    vnpu = source.create_vnpu(VNpuSpec("mover", MeshShape(2, 3), 96 * MB))
    resident = vnpu.memory_bytes
    migrated, cost = source.migrate_vnpu(vnpu.vmid, destination=target)
    assert_pristine(source)
    assert migrated.memory_bytes == resident
    assert migrated.spec is vnpu.spec
    assert target.chip.controller.ivrouter.vmids == [migrated.vmid]
    assert cost > migrated.setup_cycles  # data movement is charged too
    target.destroy_vnpu(migrated.vmid)
    assert_pristine(target)


def churn_with_resize(seed, steps=70):
    """Arbitrary grow-shrink-migrate-create-destroy interleavings."""
    rng = random.Random(seed)
    hypervisor = Hypervisor(Chip(sim_config(16)))
    live = []
    for step in range(steps):
        roll = rng.random()
        if live and roll < 0.25:
            # Resize a live tenant to a fresh random shape (grow or
            # shrink, relocating when the adjacent cores refuse).
            vmid = rng.choice(live)
            try:
                resized, cost = hypervisor.resize_vnpu(
                    vmid, random_spec(rng, f"resize-{step}"))
            except AllocationError:
                continue
            assert cost >= resized.setup_cycles
            assert resized.vmid == vmid  # resize keeps the VMID
        elif live and roll < 0.4:
            vmid = rng.choice(live)
            try:
                migrated, cost = hypervisor.migrate_vnpu(vmid)
            except AllocationError:
                continue
            assert migrated.vmid == vmid
        elif live and roll < 0.6:
            vmid = live.pop(rng.randrange(len(live)))
            hypervisor.destroy_vnpu(vmid)
        else:
            try:
                vnpu = hypervisor.create_vnpu(random_spec(rng, step))
            except AllocationError:
                continue
            live.append(vnpu.vmid)
    for vmid in live:
        hypervisor.destroy_vnpu(vmid)
    return hypervisor


@pytest.mark.parametrize("seed", [2, 5, 17, 23, 61, 101])
def test_resize_churn_leaves_no_trace(seed):
    """Grow-shrink-migrate interleavings leak nothing over >= 6 seeds."""
    assert_pristine(churn_with_resize(seed))


@pytest.mark.parametrize("seed", [4, 9, 31, 47, 73, 2026])
def test_elastic_serving_churn_leaves_no_trace(seed):
    """A full elastic serving run (shrink + preempt + grow-back) tears
    everything down: the scheduler-driven resize path leaks nothing."""
    from repro.arch.config import sim_config as cfg
    from repro.serving import (
        ClusterScheduler,
        DEFAULT_SLO_MIX,
        generate_trace,
    )
    chip = Chip(cfg(16))
    hypervisor = Hypervisor(chip)
    scheduler = ClusterScheduler(chip, hypervisor, policy="priority",
                                 elastic="shrink_then_preempt")
    trace = generate_trace(seed, 30, max_cores=16,
                           mean_interarrival_cycles=2_000_000,
                           arrival_process="bursty",
                           slo_mix=DEFAULT_SLO_MIX)
    metrics = scheduler.serve(trace)
    assert len(metrics.records) + metrics.rejected == len(trace)
    assert_pristine(hypervisor)


def test_resize_mapper_free_sets_stay_synced():
    """notify_alloc/notify_free deltas survive resize churn: the mapper's
    incremental free topology must equal a from-scratch rebuild."""
    hypervisor = churn_with_resize(13, steps=40)
    mapper = hypervisor.mapper
    stats = mapper.cache_stats()
    assert stats["free_updates"] > 0  # resizes actually used the deltas
    # After total teardown the tracked free set must be the whole chip:
    # any mapping request must see all 16 cores free.
    vnpu = hypervisor.create_vnpu(
        VNpuSpec("post-churn", MeshShape(4, 4), 64 * MB))
    assert len(vnpu.physical_cores) == 16
    hypervisor.destroy_vnpu(vnpu.vmid)
    assert_pristine(hypervisor)


class TestResizeSemantics:
    def test_shrink_within_own_block_charges_reconfig_only(self):
        """A shrink that fits the tenant's own cores is in place: the
        data stays put, only the Fig-11 reconfiguration is charged."""
        hv = Hypervisor(Chip(sim_config(16)))
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 3), 96 * MB))
        old_cores = set(vnpu.physical_cores)
        resized, cost = hv.resize_vnpu(
            vnpu.vmid, VNpuSpec("t", MeshShape(1, 2), 32 * MB))
        assert set(resized.physical_cores) <= old_cores
        assert cost == resized.setup_cycles
        assert resized.memory_bytes == 32 * MB
        hv.destroy_vnpu(resized.vmid)
        assert_pristine(hv)

    def test_grow_keeps_vmid_and_updates_resources(self):
        hv = Hypervisor(Chip(sim_config(16)))
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 64 * MB))
        resized, cost = hv.resize_vnpu(
            vnpu.vmid, VNpuSpec("t", MeshShape(3, 3), 144 * MB))
        assert resized.vmid == vnpu.vmid
        assert resized.core_count == 9
        assert resized.memory_bytes == 144 * MB
        assert cost >= resized.setup_cycles
        assert hv.vnpu(vnpu.vmid) is resized
        hv.destroy_vnpu(resized.vmid)
        assert_pristine(hv)

    def test_relocated_resize_charges_data_movement(self):
        """When the adjacent cores cannot host the grow, the fallback
        re-place additionally pays the retained-memory copy."""
        from repro.cost.charges import resize_cycles
        config = sim_config(16)
        in_place = resize_cycles(config, 64 * MB, 100, relocated=False)
        relocated = resize_cycles(config, 64 * MB, 100, relocated=True)
        assert in_place == 100
        assert relocated > in_place

    def test_failed_grow_leaves_vnpu_untouched(self):
        """No room to grow -> AllocationError and zero mutation."""
        hv = Hypervisor(Chip(sim_config(16)))
        squatter = hv.create_vnpu(VNpuSpec("sq", MeshShape(3, 4), 32 * MB))
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(1, 2), 16 * MB))
        before_cores = list(vnpu.physical_cores)
        before_free = hv.buddy.free_bytes
        with pytest.raises(AllocationError):
            hv.resize_vnpu(vnpu.vmid, VNpuSpec("t", MeshShape(3, 3), 48 * MB))
        assert hv.vnpu(vnpu.vmid) is vnpu
        assert vnpu.physical_cores == before_cores
        assert hv.buddy.free_bytes == before_free
        assert sorted(v.vmid for v in hv.vnpus) == sorted(
            [squatter.vmid, vnpu.vmid])

    def test_failed_memory_grow_restores_placement(self):
        """Cores fit but memory does not: the teardown/provision cycle
        must restore the original placement."""
        hv = Hypervisor(Chip(sim_config(16)))
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 64 * MB))
        before_cores = list(vnpu.physical_cores)
        too_much = hv.buddy.capacity * 2
        with pytest.raises(AllocationError):
            hv.resize_vnpu(vnpu.vmid, VNpuSpec("t", MeshShape(2, 3),
                                               too_much))
        restored = hv.vnpu(vnpu.vmid)
        assert restored.physical_cores == before_cores
        assert restored.memory_bytes == 64 * MB
        hv.destroy_vnpu(restored.vmid)
        assert_pristine(hv)

    def test_resize_unknown_vmid_raises(self):
        from repro.errors import HypervisorError
        hv = Hypervisor(Chip(sim_config(16)))
        with pytest.raises(HypervisorError):
            hv.resize_vnpu(99, VNpuSpec("t", MeshShape(1, 2), 16 * MB))


def test_failed_migration_leaves_source_untouched():
    """No destination room -> AllocationError and zero source mutation."""
    sim = Simulator()
    source = Hypervisor(Chip(sim_config(16), sim=sim))
    target = Hypervisor(Chip(sim_config(16), sim=sim))
    target.create_vnpu(VNpuSpec("squatter", MeshShape(4, 4), 32 * MB))
    vnpu = source.create_vnpu(VNpuSpec("mover", MeshShape(2, 2), 64 * MB))
    before_cores = list(vnpu.physical_cores)
    before_free = source.buddy.free_bytes
    with pytest.raises(AllocationError):
        source.migrate_vnpu(vnpu.vmid, destination=target)
    assert source.vnpu(vnpu.vmid) is vnpu
    assert vnpu.physical_cores == before_cores
    assert source.buddy.free_bytes == before_free
    assert source.chip.controller.ivrouter.vmids == [vnpu.vmid]


def fault_churn(seed, evacuation):
    """A full fleet serving run under injected chip/link/HBM failures."""
    from repro.serving import (
        DEFAULT_SLO_MIX,
        FleetScheduler,
        generate_failure_schedule,
        generate_fleet_trace,
    )
    faults = generate_failure_schedule(seed, chips=3,
                                       horizon_cycles=300_000_000,
                                       failures=5,
                                       mean_outage_cycles=30_000_000)
    fleet = FleetScheduler.homogeneous(3, cores=16, policy="priority",
                                       elastic="shrink_then_preempt",
                                       faults=faults, evacuation=evacuation)
    trace = generate_fleet_trace(seed, 36, chips=3, max_cores=16,
                                 mean_interarrival_cycles=3_000_000,
                                 arrival_process="bursty",
                                 slo_mix=DEFAULT_SLO_MIX)
    metrics = fleet.serve(trace)
    return fleet, metrics, trace


@pytest.mark.parametrize("seed,evacuation", [
    (6, "shrink_to_fit"), (19, "evacuate"), (37, "kill_requeue"),
    (53, "shrink_to_fit"), (71, "evacuate"), (89, "kill_requeue"),
    (2027, "shrink_to_fit"),
])
def test_failure_evacuate_recover_churn_leaves_no_trace(seed, evacuation):
    """Arbitrary failure-evacuate-recover interleavings under load leak
    nothing: every chip ends healthy and byte-identical to its seed
    state, and every session is accounted for."""
    fleet, metrics, trace = fault_churn(seed, evacuation)
    assert len(metrics.records) + metrics.rejected == len(trace)
    assert metrics.chip_failures > 0          # the run actually saw faults
    assert metrics.killed_sessions > 0        # ... that hit live sessions
    assert metrics.chip_failures == metrics.chip_recoveries
    for fleet_chip in fleet.chips:
        assert fleet_chip.healthy
        assert_pristine(fleet_chip.hypervisor)


@pytest.mark.parametrize("seed", [6, 53])
def test_fault_churn_lost_work_accounting_balances(seed):
    """Per-record fault counters sum to the fleet-level counters."""
    _, metrics, _ = fault_churn(seed, "shrink_to_fit")
    assert sum(r.kills for r in metrics.records) == metrics.killed_sessions
    assert sum(r.lost_service_cycles for r in metrics.records) == \
        metrics.lost_service_cycles
    assert sum(r.evacuations for r in metrics.records) == metrics.evacuations
