"""Churn-invariant property tests: no leaks under create/destroy/migrate.

Seeded random operation sequences against one :class:`Hypervisor`: after
everything is destroyed, the chip must be byte-for-byte back to its
initial hyper-mode state — buddy allocator fully coalesced, no routing
table installed for any VM, every core's scratchpad meta-zone empty.
PR 1's rollback test covered one failure path; this covers arbitrary
interleavings of the whole lifecycle, including live migration.
"""

import random

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import AllocationError
from repro.sim import Simulator

SHAPES = [(1, 2), (1, 3), (2, 2), (2, 3), (3, 3), (3, 4)]


def random_spec(rng, tag):
    rows, cols = rng.choice(SHAPES)
    return VNpuSpec(
        name=f"churn-{tag}",
        topology=MeshShape(rows, cols),
        memory_bytes=rows * cols * rng.choice([8, 16, 32]) * MB,
    )


def assert_pristine(hypervisor):
    """The no-leak invariant: hyper-mode state is back to the seed state."""
    chip = hypervisor.chip
    assert hypervisor.vnpus == []
    assert hypervisor.allocated_cores == set()
    assert hypervisor.buddy.fully_coalesced, \
        "buddy allocator did not coalesce back to its initial free state"
    assert hypervisor.buddy.free_bytes == hypervisor.buddy.capacity
    assert chip.controller.ivrouter.vmids == [], \
        "routing tables remain installed after all vNPUs were destroyed"
    for core_id in chip.cores:
        spad = chip.core(core_id).scratchpad
        assert spad.meta_regions == [], \
            f"core {core_id} scratchpad meta-zone is not empty"
        assert spad.meta_free == spad.meta_capacity


def churn(seed, steps=60, migrate_every=0.15):
    rng = random.Random(seed)
    hypervisor = Hypervisor(Chip(sim_config(16)))
    live = []
    for step in range(steps):
        roll = rng.random()
        if live and roll < migrate_every:
            vmid = rng.choice(live)
            try:
                migrated, cost = hypervisor.migrate_vnpu(vmid)
            except AllocationError:
                continue
            assert cost > 0
            assert migrated.vmid == vmid  # in-place keeps the VMID
        elif live and roll < 0.45:
            vmid = live.pop(rng.randrange(len(live)))
            hypervisor.destroy_vnpu(vmid)
        else:
            try:
                vnpu = hypervisor.create_vnpu(random_spec(rng, step))
            except AllocationError:
                continue
            live.append(vnpu.vmid)
    for vmid in live:
        hypervisor.destroy_vnpu(vmid)
    return hypervisor


@pytest.mark.parametrize("seed", [1, 7, 13, 42, 97, 2025])
def test_churn_leaves_no_trace(seed):
    assert_pristine(churn(seed))


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_cross_chip_churn_leaves_both_chips_clean(seed):
    """Random create/migrate-across/destroy over two hypervisors."""
    rng = random.Random(seed)
    sim = Simulator()
    fleet = [Hypervisor(Chip(sim_config(16), sim=sim)) for _ in range(2)]
    live = []  # (hypervisor index, vmid)
    for step in range(50):
        roll = rng.random()
        if live and roll < 0.2:
            index, vmid = live.pop(rng.randrange(len(live)))
            source, target = fleet[index], fleet[1 - index]
            try:
                migrated, cost = source.migrate_vnpu(vmid, destination=target)
            except AllocationError:
                live.append((index, vmid))
                continue
            assert cost > 0
            assert all(v.vmid != vmid for v in source.vnpus)
            live.append((1 - index, migrated.vmid))
        elif live and roll < 0.5:
            index, vmid = live.pop(rng.randrange(len(live)))
            fleet[index].destroy_vnpu(vmid)
        else:
            index = rng.randrange(2)
            try:
                vnpu = fleet[index].create_vnpu(random_spec(rng, step))
            except AllocationError:
                continue
            live.append((index, vnpu.vmid))
    for index, vmid in live:
        fleet[index].destroy_vnpu(vmid)
    for hypervisor in fleet:
        assert_pristine(hypervisor)


def test_migration_moves_all_resources_cross_chip():
    """After a cross-chip migration the source is pristine, the target owns
    the memory and routing state, and the spec is preserved."""
    sim = Simulator()
    source = Hypervisor(Chip(sim_config(16), sim=sim))
    target = Hypervisor(Chip(sim_config(16), sim=sim))
    vnpu = source.create_vnpu(VNpuSpec("mover", MeshShape(2, 3), 96 * MB))
    resident = vnpu.memory_bytes
    migrated, cost = source.migrate_vnpu(vnpu.vmid, destination=target)
    assert_pristine(source)
    assert migrated.memory_bytes == resident
    assert migrated.spec is vnpu.spec
    assert target.chip.controller.ivrouter.vmids == [migrated.vmid]
    assert cost > migrated.setup_cycles  # data movement is charged too
    target.destroy_vnpu(migrated.vmid)
    assert_pristine(target)


def test_failed_migration_leaves_source_untouched():
    """No destination room -> AllocationError and zero source mutation."""
    sim = Simulator()
    source = Hypervisor(Chip(sim_config(16), sim=sim))
    target = Hypervisor(Chip(sim_config(16), sim=sim))
    target.create_vnpu(VNpuSpec("squatter", MeshShape(4, 4), 32 * MB))
    vnpu = source.create_vnpu(VNpuSpec("mover", MeshShape(2, 2), 64 * MB))
    before_cores = list(vnpu.physical_cores)
    before_free = source.buddy.free_bytes
    with pytest.raises(AllocationError):
        source.migrate_vnpu(vnpu.vmid, destination=target)
    assert source.vnpu(vnpu.vmid) is vnpu
    assert vnpu.physical_cores == before_cores
    assert source.buddy.free_bytes == before_free
    assert source.chip.controller.ivrouter.vmids == [vnpu.vmid]
