"""Golden-hash regression pins for the trace generators' RNG draw order.

Every bench and serving test replays a seeded trace; the determinism of
those artifacts rests on the generator drawing (inter-arrival, shape,
model, inferences, sticky, priority) in exactly this order from
``random.Random(seed)``, and on the sorted model-zoo names feeding
``rng.choice``. A refactor that reorders draws, adds a draw, or edits
the ``SERVING_MODEL_BUILDERS`` table would silently re-deal every
historical seed; these hashes make that a loud failure instead.

If a change here is *intentional* (a new draw, a new zoo entry),
regenerate the hashes with the helper below and say so in the commit —
every checked-in BENCH_*.json regenerates with it.
"""

import hashlib

from repro.serving import generate_fleet_trace, generate_trace
from repro.workloads.zoo import SERVING_MODEL_BUILDERS


def trace_digest(trace, n=25) -> str:
    """SHA-256 over a canonical rendering of the first ``n`` sessions."""
    lines = [
        f"{s.session_id}|{s.tenant}|{s.arrival_cycle}|{s.rows}x{s.cols}|"
        f"{s.memory_bytes}|{s.model}|{s.inferences}|{s.priority}"
        for s in trace[:n]
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


GOLDEN_TRACE = {
    0: "5fdc9d920eee4a74540fcc1544cccb9801c7976e3d89c6b1259d42e85f16fe47",
    7: "40b9257d772d727142a9810914021c8ad565ac48360424ca94a6973c277a1691",
    42: "eed7716344521674106011b69f8935b1de2a4827ddfcc456e41796018b6c9f7c",
}

GOLDEN_FLEET_TRACE = {
    0: "6e0600d573889cc03a5ed04e5d9c2bfbe27bbb24ed54a03c0fcc987d6abe3aeb",
    7: "b543af7ef8fd485036a9110cbe2de2de32a9030cf3d3582c779263f7160b1d09",
    42: "9d9aa2ab377be6afebef2dc452d7f5ce95a60b7c712e50558ed681b578f6ebe9",
}

GOLDEN_STICKY = (
    "c54327096dda46ac5cdb9765391246cb2111823b80cda855873f55de46710a97"
)


class TestGoldenTraces:
    def test_generate_trace_draw_order_pinned(self):
        for seed, expected in GOLDEN_TRACE.items():
            assert trace_digest(generate_trace(seed, 40)) == expected, (
                f"seed {seed}: generate_trace's RNG draw order changed — "
                f"every historical bench/test trace just re-dealt"
            )

    def test_fleet_trace_draw_order_pinned(self):
        for seed, expected in GOLDEN_FLEET_TRACE.items():
            trace = generate_fleet_trace(seed, 40, chips=3, max_cores=16,
                                         fragmentation_heavy=True)
            assert trace_digest(trace) == expected, (
                f"seed {seed}: generate_fleet_trace's draw order changed"
            )

    def test_sticky_path_draw_order_pinned(self):
        trace = generate_trace(11, 40, sticky_fraction=0.25)
        assert trace_digest(trace) == GOLDEN_STICKY, (
            "sticky-tenant branch changed the RNG draw order"
        )

    def test_zoo_names_pinned(self):
        """The sorted zoo names feed rng.choice — content is contractual."""
        assert sorted(SERVING_MODEL_BUILDERS) == [
            "alexnet", "bert-base", "gpt2-small", "mobilenet",
            "resnet18", "resnet34", "yolo-lite",
        ]
