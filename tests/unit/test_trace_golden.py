"""Golden-hash regression pins for the trace generators' RNG draw order.

Every bench and serving test replays a seeded trace; the determinism of
those artifacts rests on the generator drawing (inter-arrival, shape,
model, inferences, sticky, priority) in exactly this order from
``random.Random(seed)``, and on the sorted model-zoo names feeding
``rng.choice``. A refactor that reorders draws, adds a draw, or edits
the ``SERVING_MODEL_BUILDERS`` table would silently re-deal every
historical seed; these hashes make that a loud failure instead.

If a change here is *intentional* (a new draw, a new zoo entry),
regenerate the hashes with the helper below and say so in the commit —
every checked-in BENCH_*.json regenerates with it.
"""

import hashlib

from repro.serving import generate_fleet_trace, generate_trace
from repro.workloads.zoo import SERVING_MODEL_BUILDERS


def trace_digest(trace, n=25) -> str:
    """SHA-256 over a canonical rendering of the first ``n`` sessions."""
    lines = [
        f"{s.session_id}|{s.tenant}|{s.arrival_cycle}|{s.rows}x{s.cols}|"
        f"{s.memory_bytes}|{s.model}|{s.inferences}|{s.priority}"
        for s in trace[:n]
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


GOLDEN_TRACE = {
    0: "5fdc9d920eee4a74540fcc1544cccb9801c7976e3d89c6b1259d42e85f16fe47",
    7: "40b9257d772d727142a9810914021c8ad565ac48360424ca94a6973c277a1691",
    42: "eed7716344521674106011b69f8935b1de2a4827ddfcc456e41796018b6c9f7c",
}

GOLDEN_FLEET_TRACE = {
    0: "6e0600d573889cc03a5ed04e5d9c2bfbe27bbb24ed54a03c0fcc987d6abe3aeb",
    7: "b543af7ef8fd485036a9110cbe2de2de32a9030cf3d3582c779263f7160b1d09",
    42: "9d9aa2ab377be6afebef2dc452d7f5ce95a60b7c712e50558ed681b578f6ebe9",
}

GOLDEN_STICKY = (
    "c54327096dda46ac5cdb9765391246cb2111823b80cda855873f55de46710a97"
)

# -- elastic-era pins (PR 5): the appended draws get their own hashes ------

GOLDEN_BURSTY_SLO = {
    0: "b1c0042ee35870d3b00403ac2c1f9668e63c507c2bfd59cb8a753bfabbb26634",
    7: "6110dc6975b4b5c137c371e15adf2e4472a43f2cf721b836817e75f052a17a77",
    42: "f487f35327ac828140696f88808985d3c58e663640c7995bef64d92c7fb0cfee",
}

GOLDEN_DIURNAL = {
    0: "2c4885b81e27d1f6583cc2299948c4e9997371c4d31ed7fcf777183b4bfba16b",
    7: "172e526a3f04786ea29a2caf8831dfce72b30a68f1440d1d6b63ea26a6e08064",
    42: "7dc4912e36396c1581497f1c073a39e7e72aa617443704600ea163a7fbba58f0",
}

GOLDEN_SLO_ONLY = (
    "aea4e88ab91b3f0e900687c51f869b341c1a803e70dc586727b06c6c3ca01276"
)

GOLDEN_ELASTIC_FLEET = (
    "21988a2fa3d268b42b579016bf2546f262b375a290fc8c39d3c148e92227e9f2"
)


def slo_trace_digest(trace, n=25) -> str:
    """The original digest extended with the drawn SLO class."""
    lines = [
        f"{s.session_id}|{s.tenant}|{s.arrival_cycle}|{s.rows}x{s.cols}|"
        f"{s.memory_bytes}|{s.model}|{s.inferences}|{s.priority}|{s.slo}"
        for s in trace[:n]
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestGoldenTraces:
    def test_generate_trace_draw_order_pinned(self):
        for seed, expected in GOLDEN_TRACE.items():
            assert trace_digest(generate_trace(seed, 40)) == expected, (
                f"seed {seed}: generate_trace's RNG draw order changed — "
                f"every historical bench/test trace just re-dealt"
            )

    def test_fleet_trace_draw_order_pinned(self):
        for seed, expected in GOLDEN_FLEET_TRACE.items():
            trace = generate_fleet_trace(seed, 40, chips=3, max_cores=16,
                                         fragmentation_heavy=True)
            assert trace_digest(trace) == expected, (
                f"seed {seed}: generate_fleet_trace's draw order changed"
            )

    def test_sticky_path_draw_order_pinned(self):
        trace = generate_trace(11, 40, sticky_fraction=0.25)
        assert trace_digest(trace) == GOLDEN_STICKY, (
            "sticky-tenant branch changed the RNG draw order"
        )

    def test_zoo_names_pinned(self):
        """The sorted zoo names feed rng.choice — content is contractual."""
        assert sorted(SERVING_MODEL_BUILDERS) == [
            "alexnet", "bert-base", "gpt2-small", "mobilenet",
            "resnet18", "resnet34", "yolo-lite",
        ]


class TestElasticEraGoldenTraces:
    """Pins for the PR-5 additions: bursty/diurnal arrivals + SLO mixes.

    Two guarantees: (1) the *default* path re-deals identically (the
    original ``GOLDEN_TRACE`` pins above stay untouched); (2) with the
    new knobs on, each session's original ``(gap, shape, model,
    inferences, priority)`` draws still come first — the appended SLO /
    burst draws only shift *later* sessions' gaps, never reorder a
    session's own deal.
    """

    def test_bursty_slo_draw_order_pinned(self):
        from repro.serving import DEFAULT_SLO_MIX, generate_trace
        for seed, expected in GOLDEN_BURSTY_SLO.items():
            trace = generate_trace(seed, 40, arrival_process="bursty",
                                   slo_mix=DEFAULT_SLO_MIX)
            assert slo_trace_digest(trace) == expected, (
                f"seed {seed}: bursty/slo draw order changed"
            )

    def test_diurnal_draw_order_pinned(self):
        from repro.serving import generate_trace
        for seed, expected in GOLDEN_DIURNAL.items():
            trace = generate_trace(seed, 40, arrival_process="diurnal")
            assert slo_trace_digest(trace) == expected, (
                f"seed {seed}: diurnal gap modulation changed"
            )

    def test_slo_mix_draw_order_pinned(self):
        from repro.serving import DEFAULT_SLO_MIX, generate_trace
        trace = generate_trace(11, 40, slo_mix=DEFAULT_SLO_MIX)
        assert slo_trace_digest(trace) == GOLDEN_SLO_ONLY

    def test_elastic_fleet_trace_pinned(self):
        from repro.serving import DEFAULT_SLO_MIX
        trace = generate_fleet_trace(7, 40, chips=8, max_cores=16,
                                     arrival_process="bursty",
                                     slo_mix=DEFAULT_SLO_MIX)
        assert slo_trace_digest(trace) == GOLDEN_ELASTIC_FLEET

    def test_new_draws_appended_not_interleaved(self):
        """Session 0's full original deal precedes any appended draw, and
        the non-gap draws survive per-session for every session when no
        *extra* draw shifts the stream (diurnal)."""
        from repro.serving import DEFAULT_SLO_MIX, generate_trace
        base = generate_trace(7, 40)
        with_slo = generate_trace(7, 40, slo_mix=DEFAULT_SLO_MIX)
        bursty = generate_trace(7, 40, arrival_process="bursty",
                                slo_mix=DEFAULT_SLO_MIX)
        diurnal = generate_trace(7, 40, arrival_process="diurnal")

        def deal(s):
            return (s.arrival_cycle, s.rows, s.cols, s.model,
                    s.inferences, s.priority)

        assert deal(base[0]) == deal(with_slo[0]) == deal(bursty[0])
        # Diurnal adds zero draws: every session's deal is identical,
        # only the (deterministically rescaled) arrival cycles move.
        assert ([(s.rows, s.cols, s.model, s.inferences, s.priority)
                 for s in diurnal]
                == [(s.rows, s.cols, s.model, s.inferences, s.priority)
                    for s in base])

    def test_default_path_has_no_slo(self):
        """Pre-SLO call signatures produce pre-SLO sessions."""
        from repro.serving import generate_trace
        assert all(s.slo == "" for s in generate_trace(3, 20))
