"""Unit tests for the analysis modules (Figs 2, 3, 19 + reporting)."""

import pytest

from repro.analysis.catalog import (
    DEVICES,
    devices_by_family,
    growth_factor,
    intercore_sram_advantage,
    series,
)
from repro.analysis.hwcost import (
    figure19_table,
    kims_core_cost,
    vnpu_controller_cost,
    vnpu_core_cost,
)
from repro.analysis.reporting import Table, percent, ratio
from repro.analysis.roofline import (
    DeviceModel,
    flops_utilization,
    utilization_table,
)
from repro.errors import ConfigError
from repro.workloads import alexnet, bert_base, dlrm, resnet


class TestCatalog:
    def test_families_cover_fig2_legend(self):
        families = devices_by_family()
        for family in ("IPU", "Nvidia GPU", "TPU", "Tenstorrent",
                       "Tesla D1", "Groq"):
            assert family in families

    def test_series_sorted_by_year(self):
        for points in series("tflops").values():
            years = [year for year, _ in points]
            assert years == sorted(years)

    def test_growth_spans_orders_of_magnitude(self):
        assert growth_factor("tflops") > 10
        assert growth_factor("sram_mb") > 10

    def test_intercore_npus_hold_more_sram(self):
        assert intercore_sram_advantage() > 2.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            series("teraflops")

    def test_year_range(self):
        years = [d.year for d in DEVICES]
        assert min(years) == 2017 and max(years) == 2024


class TestRoofline:
    def test_utilization_in_unit_interval(self):
        for model in (alexnet(), resnet(50), bert_base()):
            util = flops_utilization(model, batch=8)
            assert 0.0 < util <= 1.0

    def test_batching_increases_utilization(self):
        model = resnet(50)
        u1 = flops_utilization(model, 1)
        u32 = flops_utilization(model, 32)
        assert u32 >= u1

    def test_most_cnns_under_half_peak(self):
        """Fig 3's headline: traditional models < 50 % even batched."""
        utils = utilization_table({
            "alexnet": alexnet(), "resnet": resnet(50), "dlrm": dlrm(),
        })
        under_half = sum(
            1 for per_batch in utils.values()
            if per_batch[1] < 0.5
        )
        assert under_half >= 2

    def test_dlrm_is_memory_bound(self):
        assert flops_utilization(dlrm(), 8) < 0.05

    def test_invalid_batch(self):
        with pytest.raises(ConfigError):
            flops_utilization(alexnet(), 0)

    def test_custom_device(self):
        slow_memory = DeviceModel(memory_bandwidth_gbs=50)
        fast_memory = DeviceModel(memory_bandwidth_gbs=2000)
        model = resnet(50)
        assert (flops_utilization(model, 8, slow_memory)
                < flops_utilization(model, 8, fast_memory))


class TestHwCost:
    def test_all_overheads_small(self):
        """Fig 19: every scheme adds only a few percent."""
        for name, row in figure19_table().items():
            assert row["total_luts"] < 10, name
            assert row["ffs"] < 10, name

    def test_routing_table_nearly_free(self):
        table = figure19_table()["Routing table (128 entries)"]
        assert table["ffs"] == 0.0  # lives in LUTRAM, no flip-flops
        assert table["logic_luts"] < 0.1

    def test_vnpu_comparable_to_kims(self):
        table = figure19_table()
        vnpu = table["NPU core (vNPU)"]["total_luts"]
        kims = table["NPU core (Kim's)"]["total_luts"]
        assert 0.2 < vnpu / kims < 5.0

    def test_cost_composition(self):
        cost = vnpu_core_cost()
        assert cost.ffs > 0 and cost.logic_luts > 0
        assert vnpu_controller_cost().lutrams > 0
        assert kims_core_cost(64).ffs > kims_core_cost(16).ffs


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("demo", ["name", "value"])
        table.add("alpha", 1.5)
        table.add("beta", 123456.0)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "123,456" in text

    def test_ratio_and_percent(self):
        assert ratio(3.0, 1.5) == "2.00x"
        assert ratio(1.0, 0.0) == "inf"
        assert percent(0.254) == "25.4%"

    def test_empty_table_renders(self):
        assert Table("empty", ["a"]).render()
