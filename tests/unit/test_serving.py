"""Unit tests for the serving layer: traces, cache, registries, scheduler."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape, Topology
from repro.core.hypervisor import Hypervisor
from repro.core.strategies import (
    available_strategies,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)
from repro.core.topology_mapping import TopologyMapper
from repro.core.vnpu import VNpuSpec
from repro.errors import ConfigError, HypervisorError, ServingError
from repro.serving import (
    ClusterScheduler,
    PendingSession,
    TenantSession,
    generate_trace,
    register_policy,
    resolve_policy,
)
from repro.serving.metrics import fragmentation_ratio, percentile
from repro.serving.policies import BestFitPolicy, FCFSPolicy, PriorityPolicy


def session(session_id=0, arrival=0, rows=2, cols=2, priority=0,
            model="alexnet", inferences=10):
    return TenantSession(
        session_id=session_id, tenant=f"t{session_id}",
        arrival_cycle=arrival, rows=rows, cols=cols,
        memory_bytes=rows * cols * 8 * MB, model=model,
        inferences=inferences, priority=priority,
    )


class TestTraceGenerator:
    def test_same_seed_identical(self):
        assert generate_trace(42, 50) == generate_trace(42, 50)

    def test_different_seed_differs(self):
        assert generate_trace(1, 50) != generate_trace(2, 50)

    def test_arrivals_strictly_increase(self):
        trace = generate_trace(3, 80)
        arrivals = [s.arrival_cycle for s in trace]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)

    def test_shapes_respect_chip_size(self):
        trace = generate_trace(5, 100, max_cores=16)
        assert all(s.core_count <= 16 for s in trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ServingError):
            generate_trace(0, 0)


class TestMappingCache:
    CASES = [
        (Topology.mesh2d(2, 2), set()),
        (Topology.mesh2d(2, 2), {0, 1, 2, 7, 8}),
        (Topology.mesh2d(2, 3), {0, 5, 10, 15, 20}),
        (Topology.line(3), {1, 3, 5, 7, 9, 11}),
    ]

    def test_cached_results_match_uncached(self):
        chip = Topology.mesh2d(5, 5)
        cached = TopologyMapper(chip)
        uncached = TopologyMapper(chip, cache_size=0)
        for request, allocated in self.CASES:
            for _ in range(2):  # second pass hits the cache
                a = cached.map_similar(request, set(allocated))
                b = uncached.map_similar(request, set(allocated))
                assert a.vmap == b.vmap
                assert a.distance == b.distance
                assert a.connected == b.connected
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0

    def test_hit_returns_fresh_vmap(self):
        mapper = TopologyMapper(Topology.mesh2d(4, 4))
        request = Topology.mesh2d(2, 2)
        first = mapper.map_similar(request)
        first.vmap[99] = 99  # corrupting the result must not poison the cache
        second = mapper.map_similar(request)
        assert 99 not in second.vmap
        assert mapper.cache_hits == 1

    def test_name_does_not_split_cache_entries(self):
        """Tenants name their request meshes differently; structure decides."""
        mapper = TopologyMapper(Topology.mesh2d(4, 4))
        mapper.map_similar(Topology.mesh2d(2, 2, name="tenant-a-req"))
        mapper.map_similar(Topology.mesh2d(2, 2, name="tenant-b-req"))
        assert mapper.cache_stats()["hits"] == 1

    def test_eviction_bounds_entries(self):
        mapper = TopologyMapper(Topology.mesh2d(4, 4), cache_size=1)
        mapper.map_similar(Topology.mesh2d(2, 2))
        mapper.map_similar(Topology.mesh2d(1, 3))
        assert mapper.cache_stats()["entries"] == 1

    def test_clear_cache(self):
        mapper = TopologyMapper(Topology.mesh2d(4, 4))
        mapper.map_similar(Topology.mesh2d(2, 2))
        mapper.clear_mapping_cache()
        assert mapper.cache_stats()["entries"] == 0


class TestStrategyRegistry:
    def test_builtins_registered(self):
        for name in ("exact", "similar", "straightforward", "fragmented"):
            assert name in available_strategies()

    def test_unknown_name_raises(self):
        with pytest.raises(HypervisorError):
            resolve_strategy("vibes")

    def test_duplicate_registration_rejected(self):
        class Dupe:
            name = "similar"

            def map(self, mapper, spec, allocated):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ConfigError):
            register_strategy(Dupe())

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigError):
            unregister_strategy("never-registered")

    def test_custom_strategy_flows_through_hypervisor(self):
        class ReverseZigzag:
            """Toy strategy: straightforward mapping, custom name."""

            name = "test-reverse-zigzag"

            def map(self, mapper, spec, allocated):
                return mapper.map_straightforward(spec.topology, allocated)

        register_strategy(ReverseZigzag())
        try:
            hv = Hypervisor(Chip(sim_config(16)))
            vnpu = hv.create_vnpu(
                VNpuSpec("t", MeshShape(2, 2), 16 * MB),
                strategy="test-reverse-zigzag",
            )
            assert vnpu.mapping.strategy == "straightforward"
        finally:
            unregister_strategy("test-reverse-zigzag")


class TestPolicyRegistry:
    def test_unknown_policy_raises(self):
        with pytest.raises(ServingError):
            resolve_policy("round-robin")

    def test_duplicate_policy_rejected(self):
        with pytest.raises(ServingError):
            register_policy(FCFSPolicy())


class TestPolicies:
    def test_fcfs_head_of_line_blocks(self):
        pending = [PendingSession(session(0, rows=3, cols=3)),
                   PendingSession(session(1, rows=1, cols=2))]
        assert FCFSPolicy().select(pending, free_cores=4) is None

    def test_fcfs_skips_blocked_head(self):
        head = PendingSession(session(0, rows=2, cols=2), blocked=True)
        follower = PendingSession(session(1, rows=1, cols=2))
        assert FCFSPolicy().select([head, follower], free_cores=4) is follower

    def test_best_fit_prefers_tightest_packing(self):
        small = PendingSession(session(0, rows=1, cols=2))
        big = PendingSession(session(1, rows=2, cols=3))
        assert BestFitPolicy().select([small, big], free_cores=6) is big
        assert BestFitPolicy().select([small, big], free_cores=5) is small

    def test_priority_orders_by_priority_then_arrival(self):
        low = PendingSession(session(0, arrival=0, priority=0))
        high = PendingSession(session(1, arrival=5, priority=2))
        assert PriorityPolicy().select([low, high], free_cores=8) is high


class TestMetricsHelpers:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile([], 95) == 0.0

    def test_fragmentation_ratio(self):
        mesh = Topology.mesh2d(2, 2)
        assert fragmentation_ratio(mesh, set()) == 0.0
        assert fragmentation_ratio(mesh, {0, 1, 2, 3}) == 0.0
        # Free cores 0 and 3 are opposite corners: two 1-core fragments.
        assert fragmentation_ratio(mesh, {1, 2}) == pytest.approx(0.5)


class TestClusterScheduler:
    def make(self, policy="fcfs", cores=16):
        chip = Chip(sim_config(cores))
        hv = Hypervisor(chip)
        return ClusterScheduler(chip, hv, policy=policy), hv

    def test_serves_whole_trace_and_frees_everything(self):
        scheduler, hv = self.make()
        trace = generate_trace(11, 25, max_cores=16)
        metrics = scheduler.serve(trace)
        assert len(metrics.records) + metrics.rejected == len(trace)
        assert metrics.rejected == 0
        assert hv.core_utilization() == 0.0
        assert hv.vnpus == []
        assert hv.buddy.free_bytes == hv.buddy.capacity
        for record in metrics.records:
            assert record.admit_cycle >= record.arrival_cycle
            assert record.depart_cycle > record.admit_cycle

    @pytest.mark.parametrize("policy", ["fcfs", "best_fit", "priority"])
    def test_deterministic_across_runs(self, policy):
        def run():
            scheduler, _ = self.make(policy=policy)
            metrics = scheduler.serve(generate_trace(23, 20, max_cores=16))
            return metrics.summary(500_000_000)

        assert run() == run()

    def test_policies_share_completion_but_differ_in_order(self):
        def admit_order(policy):
            scheduler, _ = self.make(policy=policy)
            # Tight arrivals force queueing so the policy actually chooses.
            trace = generate_trace(31, 20, max_cores=16,
                                   mean_interarrival_cycles=10_000)
            metrics = scheduler.serve(trace)
            return [r.session_id
                    for r in sorted(metrics.records,
                                    key=lambda r: (r.admit_cycle,
                                                   r.session_id))]

        orders = {policy: admit_order(policy)
                  for policy in ("fcfs", "best_fit", "priority")}
        assert all(len(order) == 20 for order in orders.values())
        assert len({tuple(order) for order in orders.values()}) > 1

    def test_mapping_cache_hit_under_churn(self):
        scheduler, hv = self.make()
        scheduler.serve(generate_trace(7, 40, max_cores=16))
        assert hv.mapper.cache_hits > 0

    def test_bad_strategy_fails_at_construction(self):
        chip = Chip(sim_config(16))
        with pytest.raises(HypervisorError):
            ClusterScheduler(chip, strategy="similiar")

    def test_bad_policy_name_fails_at_construction(self):
        chip = Chip(sim_config(16))
        with pytest.raises(ServingError):
            ClusterScheduler(chip, policy="round-robin")

    def test_policy_instance_validated_at_construction(self):
        """Instances get the same fail-fast treatment as names: anything
        that is not an AdmissionPolicy is rejected, naming the value."""
        chip = Chip(sim_config(16))
        with pytest.raises(ServingError, match="42"):
            ClusterScheduler(chip, policy=42)
        with pytest.raises(ServingError):
            # A policy *class* (not an instance) must be rejected too.
            ClusterScheduler(chip, policy=FCFSPolicy)

    def test_valid_policy_instance_accepted(self):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip, policy=BestFitPolicy())
        assert scheduler.policy.name == "best_fit"

    def test_run_before_submit_raises(self):
        scheduler, _ = self.make()
        with pytest.raises(ServingError):
            scheduler.run()

    def test_double_submit_raises(self):
        scheduler, _ = self.make()
        scheduler.submit(generate_trace(1, 3, max_cores=16))
        with pytest.raises(ServingError):
            scheduler.submit(generate_trace(2, 3, max_cores=16))

    def test_unknown_model_rejected_at_submit(self):
        scheduler, _ = self.make()
        with pytest.raises(ServingError):
            scheduler.submit([session(model="skynet")])

    def test_oversized_session_rejected_at_submit(self):
        scheduler, _ = self.make()
        with pytest.raises(ServingError):
            scheduler.submit([session(rows=6, cols=6)])

    def test_queue_delay_zero_on_idle_chip(self):
        scheduler, _ = self.make()
        # One tiny tenant on an empty chip: admitted the cycle it arrives.
        metrics = scheduler.serve([session(0, arrival=10)])
        assert metrics.records[0].queue_delay_cycles == 0
