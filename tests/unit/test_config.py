"""Unit tests for SoC configuration presets (Table 2)."""

import pytest

from repro.arch.config import (
    GB,
    KB,
    MB,
    CoreConfig,
    MemoryConfig,
    NoCConfig,
    fpga_config,
    sim_config,
)
from repro.errors import ConfigError


class TestTable2Presets:
    def test_fpga_column(self):
        cfg = fpga_config()
        assert cfg.core_count == 8
        assert cfg.core.systolic_dim == 16
        assert cfg.core.scratchpad_bytes == 512 * KB
        assert cfg.total_scratchpad_bytes == 4 * MB
        assert cfg.memory.bandwidth_bytes_per_second == 16 * GB
        assert cfg.frequency_hz == 1_000_000_000
        assert cfg.total_tops == pytest.approx(4.0)

    def test_sim_column_36(self):
        cfg = sim_config(36)
        assert cfg.core_count == 36
        assert cfg.core.systolic_dim == 128
        assert cfg.total_scratchpad_bytes == 1080 * MB
        assert cfg.memory.bandwidth_bytes_per_second == 360 * GB
        assert cfg.frequency_hz == 500_000_000
        assert cfg.total_tops == pytest.approx(576.0)

    def test_sim_column_48(self):
        cfg = sim_config(48)
        assert cfg.core_count == 48
        assert cfg.total_scratchpad_bytes == 1440 * MB

    def test_sim_unknown_core_count(self):
        with pytest.raises(ConfigError):
            sim_config(7)

    def test_topology_matches_mesh_and_tags_memory_cores(self):
        cfg = sim_config(36)
        topo = cfg.topology()
        assert topo.node_count == 36
        assert topo.mesh_shape().rows == 6
        for core in cfg.memory_interface_cores:
            assert topo.attr(core) == "mem"

    def test_with_cores_resizes(self):
        cfg = fpga_config().with_cores(4, 4)
        assert cfg.core_count == 16


class TestValidation:
    def test_zero_frequency_rejected_by_memory_model(self):
        from repro.arch.hbm import GlobalMemory
        from repro.sim import Simulator

        with pytest.raises(ConfigError):
            GlobalMemory(
                Simulator(), MemoryConfig(bandwidth_bytes_per_second=GB),
                frequency_hz=0,
            )

    def test_meta_zone_must_fit(self):
        with pytest.raises(ConfigError):
            CoreConfig(scratchpad_bytes=KB, meta_zone_bytes=KB)

    def test_memory_bandwidth_positive(self):
        with pytest.raises(ConfigError):
            MemoryConfig(bandwidth_bytes_per_second=0)

    def test_noc_packet_serialization(self):
        noc = NoCConfig(link_bytes_per_cycle=16, packet_bytes=2048)
        assert noc.packet_serialization() == 128
        assert noc.packet_serialization(100) == 7

    def test_core_macs_per_cycle(self):
        core = CoreConfig(systolic_dim=16)
        assert core.macs_per_cycle == 256

    def test_weight_zone_is_remainder(self):
        core = CoreConfig(scratchpad_bytes=512 * KB, meta_zone_bytes=16 * KB)
        assert core.weight_zone_bytes == 496 * KB
