"""Cooperative stepping: Simulator.peek()/step()/finish_processes().

The contract the control plane leans on: a ``while sim.step()`` loop
dispatches the exact event order ``run()`` does (including re-entrant
same-cycle scheduling), ``peek`` never advances the clock, and
``finish_processes`` is ``run_until_processes_done``'s deadlock-check
tail, callable after any drive style.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def traced_workload(sim, log, tag, delays):
    for delay in delays:
        yield sim.timeout(delay)
        log.append((sim.now, tag))


def build(log):
    """Three interleaved processes with shared cycles (bucket order
    matters) and a zero-timeout re-entrant tail."""
    sim = Simulator()
    sim.process(traced_workload(sim, log, "a", [5, 0, 5, 10]))
    sim.process(traced_workload(sim, log, "b", [5, 5, 5]))
    sim.process(traced_workload(sim, log, "c", [10, 0, 0]))
    return sim


class TestStepEquivalence:
    def test_step_loop_matches_run(self):
        run_log, step_log = [], []
        reference = build(run_log)
        reference.run()
        sim = build(step_log)
        while sim.step() is not None:
            pass
        assert step_log == run_log
        assert sim.now == reference.now

    def test_bounded_step_loop_matches_bounded_run(self):
        run_log, step_log = [], []
        reference = build(run_log)
        reference.run(until=10)
        sim = build(step_log)
        while (upcoming := sim.peek()) is not None and upcoming <= 10:
            sim.step()
        assert step_log == run_log
        # run(until=) parks the clock on the deadline; a driver doing
        # the same after the loop reproduces its semantics exactly.
        assert reference.now == 10

    def test_step_returns_dispatched_cycle(self):
        sim = Simulator()
        sim.timeout(7)
        assert sim.step() == 7
        assert sim.now == 7
        assert sim.step() is None

    def test_peek_never_advances(self):
        sim = Simulator()
        sim.timeout(3)
        assert sim.peek() == 3
        assert sim.now == 0
        assert sim.peek() == 3  # still there

    def test_peek_empty_queue(self):
        assert Simulator().peek() is None


class TestFinishProcesses:
    def test_clears_finished_processes(self):
        log = []
        sim = build(log)
        while sim.step() is not None:
            pass
        sim.finish_processes()
        assert sim._processes == []

    def test_raises_on_deadlock_naming_the_stuck_process(self):
        sim = Simulator()

        def waiter(sim):
            yield sim.event()  # nobody will ever succeed this

        sim.process(waiter(sim), name="stuck-waiter")
        while sim.step() is not None:
            pass
        with pytest.raises(SimulationError, match="stuck-waiter"):
            sim.finish_processes()

    def test_run_until_processes_done_still_detects_deadlock(self):
        # The refactor: run_until_processes_done = _drain + the shared
        # finish_processes tail. Behavior is unchanged.
        sim = Simulator()

        def waiter(sim):
            yield sim.event()

        sim.process(waiter(sim), name="orphan")
        with pytest.raises(SimulationError, match="orphan"):
            sim.run_until_processes_done()
