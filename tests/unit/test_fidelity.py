"""Analytic-pipeline vs event-driven-executor agreement (calibration).

The calibration harness doubles as the oracle: for each workload class
the analytic tier's iteration estimate must stay within a factor of two
of the executor tier's measured cycles (the executor serializes engine
work the analytic model overlaps, so it runs slower-or-equal), and both
tiers must agree on scaling direction.
"""

import pytest

from repro.analysis.fidelity import (
    CalibrationRow,
    calibrate,
    summarize,
)
from repro.arch.config import sim_config
from repro.errors import ServingError

#: >= 3 workload classes: classic CNN, transformer-encoder prefill,
#: decode-shaped GPT-2, lightweight mobile CNN.
CASES = (
    ("alexnet", 2, 2),
    ("bert-base", 3, 4),
    ("gpt2-small", 3, 3),
    ("mobilenet", 2, 2),
)


@pytest.fixture(scope="module")
def rows():
    return calibrate(sim_config(16), cases=CASES)


class TestAgreement:
    def test_covers_all_cases(self, rows):
        assert {(r.model, r.rows, r.cols) for r in rows} == set(CASES)

    def test_iteration_within_factor_two(self, rows):
        for row in rows:
            assert row.iteration_error < 1.0, (
                f"{row.model}: analytic {row.analytic_iteration} vs "
                f"executor {row.executor_iteration}"
            )

    def test_executor_never_faster_than_analytic(self, rows):
        """Serialized instruction streams cannot beat the overlap model."""
        for row in rows:
            assert row.executor_iteration >= row.analytic_iteration

    def test_warmup_same_order_of_magnitude(self, rows):
        for row in rows:
            if row.executor_warmup == 0:
                continue
            ratio = row.analytic_warmup / row.executor_warmup
            assert 0.05 < ratio <= 1.5, (
                f"{row.model}: warm-up analytic {row.analytic_warmup} vs "
                f"executor {row.executor_warmup}"
            )

    def test_both_tiers_rank_models_identically(self, rows):
        analytic_order = sorted(rows, key=lambda r: r.analytic_iteration)
        executor_order = sorted(rows, key=lambda r: r.executor_iteration)
        assert ([r.model for r in analytic_order]
                == [r.model for r in executor_order])


class TestHarness:
    def test_summarize_reports_per_model(self, rows):
        digest = summarize(rows)
        assert digest["cases"] == len(rows)
        assert set(digest["models"]) == {case[0] for case in CASES}
        assert 0.0 <= digest["iteration_error_mean"] \
            <= digest["iteration_error_max"] < 1.0

    def test_empty_cases_rejected(self):
        with pytest.raises(ServingError):
            calibrate(sim_config(16), cases=())

    def test_empty_summary_rejected(self):
        with pytest.raises(ServingError):
            summarize([])

    def test_error_properties_guard_zero_division(self):
        row = CalibrationRow("m", 1, 1, "exact", 5, 7, 0, 0)
        assert row.iteration_error == 0.0
        assert row.warmup_error == 0.0

    def test_placement_classes_calibrate(self):
        rows = calibrate(sim_config(16), cases=(("mobilenet", 2, 2),),
                         classes=("exact", "stretched", "fragmented"))
        assert [r.placement_class for r in rows] \
            == ["exact", "stretched", "fragmented"]
