"""Unit tests for the global-memory model."""

import pytest

from repro.arch.config import GB, MemoryConfig
from repro.arch.hbm import GlobalMemory
from repro.errors import ConfigError
from repro.sim import Simulator


def make_memory(bw=16 * GB, channels=2, freq=1_000_000_000, latency=60):
    sim = Simulator()
    cfg = MemoryConfig(
        bandwidth_bytes_per_second=bw, channels=channels,
        access_latency=latency,
    )
    return sim, GlobalMemory(sim, cfg, frequency_hz=freq)


class TestAnalytic:
    def test_bytes_per_cycle(self):
        _, mem = make_memory(bw=16 * GB, freq=1_000_000_000)
        assert mem.bytes_per_cycle == pytest.approx(16 * GB / 1e9)

    def test_stream_cycles_scale_with_bytes(self):
        _, mem = make_memory()
        short = mem.stream_cycles(1 << 20)
        long = mem.stream_cycles(4 << 20)
        assert long > short
        # Quadruple payload ~ quadruple transfer time (latency amortized).
        assert (long - 60) == pytest.approx(4 * (short - 60), rel=0.01)

    def test_stream_share_slows_down(self):
        _, mem = make_memory()
        full = mem.stream_cycles(1 << 20, bandwidth_share=1.0)
        half = mem.stream_cycles(1 << 20, bandwidth_share=0.5)
        assert (half - 60) == pytest.approx(2 * (full - 60), rel=0.01)

    def test_invalid_share_rejected(self):
        _, mem = make_memory()
        with pytest.raises(ConfigError):
            mem.stream_cycles(100, bandwidth_share=0.0)
        with pytest.raises(ConfigError):
            mem.stream_cycles(100, bandwidth_share=1.5)

    def test_zero_bytes_is_free(self):
        _, mem = make_memory()
        assert mem.stream_cycles(0) == 0

    def test_vmid_accounting(self):
        _, mem = make_memory()
        mem.stream_cycles(1000, vmid=1)
        mem.stream_cycles(500, vmid=1)
        mem.stream_cycles(200, vmid=2)
        assert mem.bytes_by_vmid == {1: 1500, 2: 200}
        assert mem.total_bytes == 1700

    def test_warmup_proportional_to_interfaces(self):
        _, mem = make_memory()
        quarter = mem.warmup_cycles(8 << 20, interface_count=1, total_interfaces=4)
        half = mem.warmup_cycles(8 << 20, interface_count=2, total_interfaces=4)
        assert (quarter - 60) == pytest.approx(2 * (half - 60), rel=0.01)

    def test_warmup_requires_interfaces(self):
        _, mem = make_memory()
        with pytest.raises(ConfigError):
            mem.warmup_cycles(100, interface_count=0, total_interfaces=4)


class TestEventMode:
    def test_request_latency_includes_access_and_transfer(self):
        sim, mem = make_memory(bw=16 * GB, channels=2, latency=60)
        proc = mem.request("read", 1600)
        sim.run_until_processes_done()
        record = proc.value
        import math
        expected = 60 + math.ceil(1600 / mem.channel_bytes_per_cycle)
        assert record.latency == expected

    def test_same_channel_requests_serialize(self):
        sim, mem = make_memory(channels=1)
        proc_a = mem.request("read", 1600)
        proc_b = mem.request("read", 1600)
        sim.run_until_processes_done()
        assert proc_b.value.end_cycle >= proc_a.value.end_cycle + proc_a.value.latency

    def test_distinct_channels_overlap(self):
        sim, mem = make_memory(channels=2)
        proc_a = mem.request("read", 1600)
        proc_b = mem.request("read", 1600)
        sim.run_until_processes_done()
        assert proc_a.value.end_cycle == proc_b.value.end_cycle

    def test_invalid_kind_rejected(self):
        sim, mem = make_memory()
        with pytest.raises(ConfigError):
            mem.request("fetch", 100)

    def test_invalid_size_rejected(self):
        sim, mem = make_memory()
        with pytest.raises(ConfigError):
            mem.request("read", 0)
