"""Fault injection, chip health and vNPU evacuation.

Covers the :mod:`repro.serving.faults` schedule mechanics, the
hypervisor's kerf-style health gate (fail-fast creates, drain-only
failed chips, fail-stop kills), and the fleet scheduler's evacuation
semantics per failure kind and policy — including degraded-mode serving
under link faults and honest lost-work accounting.
"""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.strategies import register_strategy, unregister_strategy
from repro.core.vnpu import VNpuSpec
from repro.errors import AllocationError, HypervisorError, ServingError
from repro.serving import (
    EVACUATION_POLICIES,
    ClusterScheduler,
    FailureEvent,
    FailureSchedule,
    FleetScheduler,
    TenantSession,
    coerce_evacuation,
    generate_failure_schedule,
)
from repro.serving.fleet import ActiveFleetSession
from repro.serving.slo import BEST_EFFORT
from repro.sim import Simulator


def session(session_id=0, arrival=0, rows=2, cols=2, model="alexnet",
            inferences=10, slo="", memory_bytes=None):
    return TenantSession(
        session_id=session_id, tenant=f"t{session_id}",
        arrival_cycle=arrival, rows=rows, cols=cols,
        memory_bytes=memory_bytes or rows * cols * 8 * MB, model=model,
        inferences=inferences, slo=slo,
    )


def record_of(metrics, session_id):
    matches = [r for r in metrics.records if r.session_id == session_id]
    assert len(matches) == 1, f"session {session_id} departed {len(matches)}x"
    return matches[0]


# -- schedule mechanics ------------------------------------------------------

class TestFailureEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServingError):
            FailureEvent(cycle=0, chip_index=0, kind="meteor",
                         duration_cycles=10)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ServingError):
            FailureEvent(cycle=-1, chip_index=0, kind="chip",
                         duration_cycles=10)

    def test_zero_duration_rejected(self):
        with pytest.raises(ServingError):
            FailureEvent(cycle=0, chip_index=0, kind="hbm",
                         duration_cycles=0)

    def test_recovery_cycle(self):
        event = FailureEvent(cycle=100, chip_index=0, kind="link",
                             duration_cycles=40)
        assert event.recovery_cycle == 140


class TestFailureSchedule:
    def test_overlapping_same_chip_fault_dropped(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=100, chip_index=0, kind="chip",
                         duration_cycles=1000),
            FailureEvent(cycle=500, chip_index=0, kind="hbm",
                         duration_cycles=10),
        ))
        assert len(schedule) == 1
        assert schedule.events[0].kind == "chip"

    def test_same_cycle_different_chips_both_kept(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=100, chip_index=1, kind="chip",
                         duration_cycles=10),
            FailureEvent(cycle=100, chip_index=0, kind="hbm",
                         duration_cycles=10),
        ))
        assert len(schedule) == 2
        # Normalized order: by (cycle, chip_index).
        assert [e.chip_index for e in schedule.events] == [0, 1]

    def test_back_to_back_outage_kept(self):
        """A fault landing exactly at the previous recovery instant is a
        new outage, not an overlap."""
        schedule = FailureSchedule((
            FailureEvent(cycle=100, chip_index=0, kind="chip",
                         duration_cycles=400),
            FailureEvent(cycle=500, chip_index=0, kind="link",
                         duration_cycles=10),
        ))
        assert len(schedule) == 2

    def test_timeline_orders_recovery_before_same_cycle_failure(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=100, chip_index=0, kind="chip",
                         duration_cycles=400),
            FailureEvent(cycle=500, chip_index=0, kind="link",
                         duration_cycles=10),
        ))
        at_500 = [(action, e.kind) for cycle, action, e
                  in schedule.timeline() if cycle == 500]
        assert at_500 == [("recover", "chip"), ("fail", "link")]

    def test_validate_rejects_out_of_range_chip(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=0, chip_index=3, kind="chip",
                         duration_cycles=10),
        ))
        with pytest.raises(ServingError):
            schedule.validate(chip_count=3)
        schedule.validate(chip_count=4)


class TestGenerateFailureSchedule:
    def test_same_seed_same_schedule(self):
        one = generate_failure_schedule(7, chips=4, horizon_cycles=10**9)
        two = generate_failure_schedule(7, chips=4, horizon_cycles=10**9)
        assert one.events == two.events
        assert 0 < len(one) <= 4

    def test_seeds_differ(self):
        seeds = {generate_failure_schedule(s, chips=4,
                                           horizon_cycles=10**9).events
                 for s in range(5)}
        assert len(seeds) > 1

    def test_kind_mix_restricts_kinds(self):
        schedule = generate_failure_schedule(
            3, chips=2, horizon_cycles=10**9, failures=8,
            kind_mix=(("hbm", 1),))
        assert {e.kind for e in schedule.events} == {"hbm"}

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ServingError):
            generate_failure_schedule(0, chips=0, horizon_cycles=10)
        with pytest.raises(ServingError):
            generate_failure_schedule(0, chips=1, horizon_cycles=0)
        with pytest.raises(ServingError):
            generate_failure_schedule(0, chips=1, horizon_cycles=10,
                                      failures=-1)
        with pytest.raises(ServingError):
            generate_failure_schedule(0, chips=1, horizon_cycles=10,
                                      kind_mix=(("meteor", 1),))

    def test_coerce_evacuation(self):
        for name in EVACUATION_POLICIES:
            assert coerce_evacuation(name) == name
        with pytest.raises(ServingError):
            coerce_evacuation("pray")


# -- hypervisor health gate --------------------------------------------------

class TestHypervisorHealth:
    def test_create_on_failed_chip_refused_until_recovery(self):
        hv = Hypervisor(Chip(sim_config(16)))
        assert hv.healthy
        hv.mark_failed()
        with pytest.raises(HypervisorError):
            hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 32 * MB))
        hv.mark_recovered()
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 32 * MB))
        assert vnpu.core_count == 4

    def test_migrate_onto_failed_destination_refused(self):
        sim = Simulator()
        source = Hypervisor(Chip(sim_config(16), sim=sim))
        target = Hypervisor(Chip(sim_config(16), sim=sim))
        vnpu = source.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 32 * MB))
        target.mark_failed()
        with pytest.raises(HypervisorError):
            source.migrate_vnpu(vnpu.vmid, destination=target)
        assert source.vnpu(vnpu.vmid) is vnpu  # untouched

    def test_drains_off_failed_chip_still_work(self):
        """Kerf semantics: a failed chip refuses new placements but can
        be drained — migrate-off, shrink in place, destroy."""
        sim = Simulator()
        source = Hypervisor(Chip(sim_config(16), sim=sim))
        target = Hypervisor(Chip(sim_config(16), sim=sim))
        mover = source.create_vnpu(VNpuSpec("m", MeshShape(2, 2), 32 * MB))
        shrinker = source.create_vnpu(VNpuSpec("s", MeshShape(2, 2), 32 * MB))
        goner = source.create_vnpu(VNpuSpec("g", MeshShape(1, 2), 16 * MB))
        source.mark_failed()
        migrated, cost = source.migrate_vnpu(mover.vmid, destination=target)
        assert cost > 0
        resized, _ = source.resize_vnpu(
            shrinker.vmid, VNpuSpec("s", MeshShape(1, 2), 16 * MB))
        assert resized.core_count == 2
        source.destroy_vnpu(goner.vmid)
        assert len(source.vnpus) == 1

    def test_kill_returns_lost_bytes_and_frees_everything(self):
        hv = Hypervisor(Chip(sim_config(16)))
        vnpu = hv.create_vnpu(VNpuSpec("t", MeshShape(2, 2), 32 * MB))
        lost = hv.kill_vnpu(vnpu.vmid)
        assert lost == 32 * MB
        assert hv.vnpus == []
        assert hv.allocated_cores == set()
        assert hv.buddy.fully_coalesced

    def test_kill_unknown_vmid_raises(self):
        hv = Hypervisor(Chip(sim_config(16)))
        with pytest.raises(HypervisorError):
            hv.kill_vnpu(404)


# -- fleet-level fault injection --------------------------------------------

def fleet_with(chips, faults, evacuation="shrink_to_fit", **kwargs):
    return FleetScheduler.homogeneous(
        chips, cores=16, faults=FailureSchedule(tuple(faults)),
        evacuation=evacuation, **kwargs)


class TestFleetFaultInjection:
    def test_unknown_evacuation_policy_rejected(self):
        with pytest.raises(ServingError):
            FleetScheduler.homogeneous(2, cores=16, evacuation="pray")

    def test_schedule_validated_against_fleet_size(self):
        with pytest.raises(ServingError):
            fleet_with(2, [FailureEvent(cycle=0, chip_index=5, kind="chip",
                                        duration_cycles=10)])

    def test_chip_crash_kills_requeues_and_recovers_elsewhere(self):
        fleet = fleet_with(2, [
            FailureEvent(cycle=1000, chip_index=0, kind="chip",
                         duration_cycles=50_000),
        ], evacuation="evacuate")
        metrics = fleet.serve([session(session_id=1)])
        record = record_of(metrics, 1)
        # Fail-stop: killed regardless of the evacuation policy, the
        # 1000 cycles served since admission discarded, then re-admitted
        # on the healthy survivor.
        assert record.kills == 1
        assert record.lost_service_cycles == 1000
        assert record.evacuations == 0
        assert record.chip == 1
        assert metrics.killed_sessions == 1
        assert metrics.lost_service_cycles == 1000
        assert metrics.chip_failures == 1
        assert metrics.chip_recoveries == 1
        assert [e["action"] for e in metrics.fault_log] == \
            ["fail", "recover"]

    def test_hbm_fault_evacuates_live(self):
        fleet = fleet_with(2, [
            FailureEvent(cycle=1000, chip_index=0, kind="hbm",
                         duration_cycles=50_000),
        ], evacuation="evacuate")
        metrics = fleet.serve([session(session_id=1)])
        record = record_of(metrics, 1)
        # Drained, not killed: the session live-migrates to chip 1 and
        # keeps its accrued service.
        assert record.evacuations == 1
        assert record.kills == 0
        assert record.lost_service_cycles == 0
        assert record.migrations == 1
        assert record.chip == 1
        assert metrics.evacuations == 1
        assert metrics.evacuation_cycles > 0
        assert metrics.killed_sessions == 0

    def test_kill_requeue_policy_never_migrates(self):
        fleet = fleet_with(2, [
            FailureEvent(cycle=1000, chip_index=0, kind="hbm",
                         duration_cycles=50_000),
        ], evacuation="kill_requeue")
        metrics = fleet.serve([session(session_id=1)])
        record = record_of(metrics, 1)
        assert record.kills == 1
        assert record.lost_service_cycles == 1000
        assert metrics.evacuations == 0
        assert metrics.migrations == 0

    def test_summary_grows_faults_block_only_when_enabled(self):
        faulted = fleet_with(2, [
            FailureEvent(cycle=1000, chip_index=0, kind="chip",
                         duration_cycles=50_000),
        ])
        faulted_summary = faulted.serve([session(session_id=1)]).summary(
            500_000_000)
        assert faulted_summary["faults"]["chip_failures"] == 1
        clean = FleetScheduler.homogeneous(2, cores=16)
        clean_summary = clean.serve([session(session_id=1)]).summary(
            500_000_000)
        assert "faults" not in clean_summary

    def test_failed_chip_refuses_new_placements_until_recovery(self):
        """An arrival during the outage parks (or lands elsewhere);
        nothing is ever placed on the down chip."""
        fleet = fleet_with(1, [
            FailureEvent(cycle=1000, chip_index=0, kind="hbm",
                         duration_cycles=80_000),
        ])
        metrics = fleet.serve([
            session(session_id=1, arrival=2000),
        ])
        record = record_of(metrics, 1)
        # Arrived mid-outage on a single-chip fleet: admitted only at
        # the recovery instant.
        assert record.admit_cycle == 81_000
        assert metrics.chip_recoveries == 1


class TestLinkFailureDegradedMode:
    def placement_of(self, shape, memory_bytes):
        """The cores the fleet's first placement lands on (same config,
        same default strategy, fresh chip — placements are pure)."""
        hv = Hypervisor(Chip(sim_config(16)))
        vnpu = hv.create_vnpu(VNpuSpec("probe", shape, memory_bytes))
        return set(vnpu.physical_cores)

    def edges_of(self):
        return sorted(Chip(sim_config(16)).topology.edges)

    def test_resident_on_failed_link_loses_placement(self):
        cores = self.placement_of(MeshShape(1, 2), 16 * MB)
        edges = self.edges_of()
        near = next(i for i, (u, v) in enumerate(edges)
                    if u in cores or v in cores)
        fleet = fleet_with(1, [
            FailureEvent(cycle=1000, chip_index=0, kind="link",
                         duration_cycles=50_000, link_index=near),
        ])
        metrics = fleet.serve(
            [session(session_id=1, rows=1, cols=2, memory_bytes=16 * MB)])
        record = record_of(metrics, 1)
        # Single-chip fleet: nowhere to evacuate to, so the affected
        # resident is killed and re-admitted after recovery.
        assert record.kills == 1
        assert record.lost_service_cycles == 1000

    def test_resident_off_failed_link_keeps_serving(self):
        cores = self.placement_of(MeshShape(1, 2), 16 * MB)
        edges = self.edges_of()
        far = next(i for i, (u, v) in enumerate(edges)
                   if u not in cores and v not in cores)
        fleet = fleet_with(1, [
            FailureEvent(cycle=1000, chip_index=0, kind="link",
                         duration_cycles=50_000, link_index=far),
        ])
        metrics = fleet.serve(
            [session(session_id=1, rows=1, cols=2, memory_bytes=16 * MB)])
        record = record_of(metrics, 1)
        # Degraded mode: the fault is recorded, but a resident whose
        # placement does not touch the failed link serves through it.
        assert record.kills == 0
        assert record.evacuations == 0
        assert record.migrations == 0
        assert metrics.chip_failures == 1
        assert metrics.killed_sessions == 0


class TestEvacuationPolicies:
    def crunch(self, evacuation):
        """Chip 0 fully loaded with a 3x4 tenant; chip 1 squatter leaves
        7 free cores — too few for a full-size 3x4 evacuation."""
        fleet = fleet_with(2, [
            FailureEvent(cycle=10_000, chip_index=0, kind="hbm",
                         duration_cycles=400_000),
        ], evacuation=evacuation)
        trace = [
            session(session_id=1, rows=3, cols=4),   # -> chip 0 (emptiest)
            session(session_id=2, rows=3, cols=3),   # -> chip 1
        ]
        return fleet.serve(trace)

    def test_shrink_to_fit_saves_the_session(self):
        metrics = self.crunch("shrink_to_fit")
        record = record_of(metrics, 1)
        assert record.evacuations == 1
        assert record.kills == 0
        assert record.resizes >= 1      # shrunk on the way out
        assert record.migrations == 1
        assert metrics.killed_sessions == 0

    def test_plain_evacuate_cannot_fit_and_kills(self):
        metrics = self.crunch("evacuate")
        record = record_of(metrics, 1)
        assert record.kills == 1
        assert record.evacuations == 0
        assert metrics.killed_sessions == 1

    def test_bystander_is_untouched_either_way(self):
        for policy in ("shrink_to_fit", "evacuate", "kill_requeue"):
            record = record_of(self.crunch(policy), 2)
            assert record.kills == 0
            assert record.evacuations == 0
            assert record.preemptions == 0

    def test_gold_evacuates_first(self):
        """Drain order is gold-first: with survivor capacity for exactly
        one of two residents, the gold session gets it."""
        fleet = fleet_with(2, [
            FailureEvent(cycle=10_000, chip_index=1, kind="hbm",
                         duration_cycles=800_000),
        ], evacuation="shrink_to_fit")
        trace = [
            # Squatter pins chip 0 down to a 4-core free row.
            session(session_id=1, rows=3, cols=4),            # -> chip 0
            session(session_id=2, rows=1, cols=4, slo="gold"),  # -> chip 1
            session(session_id=3, rows=2, cols=2),            # -> chip 1
        ]
        metrics = fleet.serve(trace)
        gold = record_of(metrics, 2)
        effort = record_of(metrics, 3)
        assert gold.kills == 0
        assert gold.evacuations == 1
        assert gold.resizes == 0        # gold is never shrunk
        assert effort.kills == 1        # capacity went to gold first


# -- preempt-at-departure race (same-cycle preempt + lifetime timeout) -------

class TestPreemptAtDepartureRace:
    """A preemption landing at the session's exact departure cycle must
    make the sleeping lifetime process vanish via the ``preempted``
    guard — not double-depart an already-destroyed vNPU."""

    def test_cluster_scheduler(self):
        probe_chip = Chip(sim_config(16))
        probe = ClusterScheduler(probe_chip)
        depart = probe.serve([session(session_id=1)]).records[0].depart_cycle

        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip)

        def racer():
            yield scheduler.sim.timeout(depart)
            active = next(iter(scheduler._active.values()))
            scheduler._preempt(active)
            scheduler._admit_loop()

        # Registered before submit: at the shared departure cycle the
        # racer's event was scheduled first, so it fires first.
        scheduler.sim.process(racer(), name="racer")
        metrics = scheduler.serve([session(session_id=1)])
        assert len(metrics.records) == 1      # exactly one departure
        record = metrics.records[0]
        assert record.preemptions == 1
        assert record.depart_cycle > depart   # service restarted

    def test_fleet_scheduler(self):
        probe = FleetScheduler.homogeneous(1, cores=16)
        depart = probe.serve([session(session_id=1)]).records[0].depart_cycle

        fleet = FleetScheduler.homogeneous(1, cores=16)

        def racer():
            yield fleet.sim.timeout(depart)
            active = next(iter(fleet._active.values()))
            fleet._preempt(fleet.chips[active.chip_index], active)
            fleet._admit_loop()

        fleet.sim.process(racer(), name="racer")
        metrics = fleet.serve([session(session_id=1)])
        assert len(metrics.records) == 1
        record = metrics.records[0]
        assert record.preemptions == 1
        assert record.depart_cycle > depart


# -- satellite regressions ---------------------------------------------------

class TestSubmitMemoryValidation:
    def test_cluster_scheduler_refuses_unmappable_memory(self):
        chip = Chip(sim_config(16))
        scheduler = ClusterScheduler(chip)
        too_much = scheduler.hypervisor.guest_memory_capacity + 1
        with pytest.raises(ServingError):
            scheduler.submit([session(session_id=1, memory_bytes=too_much)])

    def test_fleet_scheduler_refuses_unmappable_memory(self):
        fleet = FleetScheduler.homogeneous(2, cores=16)
        largest = max(fc.hypervisor.guest_memory_capacity
                      for fc in fleet.chips)
        with pytest.raises(ServingError):
            fleet.submit([session(session_id=1, memory_bytes=largest + 1)])
        FleetScheduler.homogeneous(2, cores=16).submit(
            [session(session_id=1, memory_bytes=largest)])  # boundary OK


class TestIdleChipDropRule:
    def test_hopeless_request_dropped_even_with_busy_fleet(self):
        """The old rule dropped only when the *entire fleet* was empty;
        a request no strategy can ever map parked forever behind one
        busy chip. The tightened rule probes the largest healthy empty
        chip and drops when even it refuses."""
        class Picky:
            name = "test-picky"

            def map(self, mapper, spec, allocated):
                if spec.topology.node_count > 4:
                    raise AllocationError("picky refuses big tenants")
                return mapper.map_similar(spec.topology, allocated)

        register_strategy(Picky())
        try:
            fleet = FleetScheduler.homogeneous(2, cores=16,
                                               strategy="test-picky")
            fleet.chips[1].hypervisor.create_vnpu(
                VNpuSpec("squatter", MeshShape(2, 2), 32 * MB))
            metrics = fleet.serve([session(session_id=1, rows=2, cols=3)])
            assert metrics.rejected == 1
            assert metrics.records == []
        finally:
            unregister_strategy("test-picky")


class TestNoOpInPlaceMigration:
    def make_active(self, fleet, vnpu):
        active = ActiveFleetSession(
            session=session(session_id=1), chip_index=0, vmid=vnpu.vmid,
            admit_cycle=0, strategy=vnpu.mapping.strategy,
            mapping_distance=vnpu.mapping.distance,
            mapping_connected=vnpu.mapping.connected, slo=BEST_EFFORT,
            rows=2, cols=2, service_total=1000, expected_depart=1000,
        )
        fleet._active[(0, vnpu.vmid)] = active
        return active

    def test_identical_compaction_skips_teardown(self):
        """An in-place migration whose trial mapping lands on the same
        cores must not tear the tenant down at all: same vNPU object,
        no charge, no migration recorded."""
        fleet = FleetScheduler.homogeneous(1, cores=16)
        source = fleet.chips[0]
        vnpu = source.hypervisor.create_vnpu(
            VNpuSpec("t1", MeshShape(2, 2), 32 * MB))
        active = self.make_active(fleet, vnpu)
        assert fleet._migrate(source, vnpu.vmid) is False
        assert source.hypervisor.vnpu(vnpu.vmid) is vnpu  # never rebuilt
        assert active.migrations == 0
        assert active.expected_depart == 1000             # not charged
        assert fleet.metrics.migrations == 0

    def test_evacuating_migration_never_falls_back_in_place(self):
        fleet = FleetScheduler.homogeneous(1, cores=16)
        source = fleet.chips[0]
        vnpu = source.hypervisor.create_vnpu(
            VNpuSpec("t1", MeshShape(2, 2), 32 * MB))
        self.make_active(fleet, vnpu)
        assert fleet._migrate(source, vnpu.vmid, evacuating=True) is False
        assert source.hypervisor.vnpu(vnpu.vmid) is vnpu
