"""Unit tests for the model zoo and graph IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompilationError
from repro.workloads import (
    alexnet,
    bert_base,
    dlrm,
    efficientnet_b0,
    googlenet,
    gpt2,
    gpt2_block_count,
    mobilenet,
    resnet,
    resnet_block,
    retinanet,
    transformer_block,
    yolo_lite,
)
from repro.workloads.graph import (
    DTYPE_BYTES,
    Layer,
    ModelGraph,
    attention_layer,
    conv_layer,
    fc_layer,
)


class TestGraphIr:
    def test_chain_edges_default_to_previous(self):
        g = ModelGraph("m")
        g.add_layer(Layer("a", "fc", 1, 1, 1))
        g.add_layer(Layer("b", "fc", 1, 1, 1))
        assert g.edges == [(0, 1)]

    def test_explicit_multi_input(self):
        g = ModelGraph("m")
        a = g.add_layer(Layer("a", "fc", 1, 1, 1))
        b = g.add_layer(Layer("b", "fc", 1, 1, 1), inputs=[a])
        c = g.add_layer(Layer("c", "fc", 1, 1, 1), inputs=[a, b])
        assert g.predecessors(c) == [a, b]
        assert g.successors(a) == [b, c]

    def test_backward_edge_rejected(self):
        g = ModelGraph("m")
        g.add_layer(Layer("a", "fc", 1, 1, 1))
        g.add_layer(Layer("b", "fc", 1, 1, 1))
        with pytest.raises(CompilationError):
            g.add_edge(1, 0)

    def test_unknown_edge_rejected(self):
        g = ModelGraph("m")
        g.add_layer(Layer("a", "fc", 1, 1, 1))
        with pytest.raises(CompilationError):
            g.add_edge(0, 5)

    def test_negative_layer_volumes_rejected(self):
        with pytest.raises(CompilationError):
            Layer("bad", "fc", -1, 0, 0)

    def test_scaled_batch(self):
        g = ModelGraph("m")
        g.add_layer(Layer("a", "fc", 100, 50, 10))
        g.add_layer(Layer("b", "fc", 100, 50, 10))
        scaled = g.scaled(8)
        assert scaled.total_macs == 8 * g.total_macs
        assert scaled.total_weight_bytes == g.total_weight_bytes
        assert scaled.total_activation_bytes == 8 * g.total_activation_bytes
        assert scaled.edges == g.edges

    def test_scaled_invalid_batch(self):
        with pytest.raises(CompilationError):
            ModelGraph("m").scaled(0)

    def test_activation_bytes_counts_edges(self):
        g = ModelGraph("m")
        a = g.add_layer(Layer("a", "fc", 1, 1, 100))
        g.add_layer(Layer("b", "fc", 1, 1, 1), inputs=[a])
        g.add_layer(Layer("c", "fc", 1, 1, 1), inputs=[a])
        assert g.total_activation_bytes == 200  # a's output crosses twice


class TestLayerFactories:
    def test_conv_macs(self):
        layer = conv_layer("c", 8, 8, 4, 16, 3)
        assert layer.macs == 8 * 8 * 4 * 16 * 9
        assert layer.weight_bytes == 4 * 16 * 9 * DTYPE_BYTES

    def test_conv_stride_shrinks_output(self):
        dense = conv_layer("c", 8, 8, 4, 4, 3)
        strided = conv_layer("c", 8, 8, 4, 4, 3, stride=2)
        assert strided.output_bytes == dense.output_bytes // 4

    def test_fc_is_square_matmul(self):
        layer = fc_layer("f", 128, 256)
        assert layer.macs == 128 * 256

    def test_attention_includes_projections_and_scores(self):
        layer = attention_layer("a", seq_len=16, dim=64, heads=4)
        assert layer.macs == 4 * 64 * 64 * 16 + 2 * 16 * 16 * 64
        assert layer.weight_bytes == 4 * 64 * 64 * DTYPE_BYTES


class TestZooParameterCounts:
    """Parameter counts should land near the published values."""

    @pytest.mark.parametrize("build,expected_m,tolerance", [
        (lambda: resnet(50), 25.5, 0.15),
        (lambda: resnet(18), 11.7, 0.15),
        (lambda: resnet(34), 21.8, 0.15),
        (googlenet, 7.0, 0.25),
        (mobilenet, 4.2, 0.15),
        (bert_base, 110, 0.15),
        (alexnet, 61, 0.30),
    ])
    def test_parameters_near_published(self, build, expected_m, tolerance):
        model = build()
        measured = model.parameter_count / 1e6
        assert abs(measured - expected_m) / expected_m < tolerance

    def test_unknown_resnet_depth(self):
        with pytest.raises(CompilationError):
            resnet(99)

    def test_resnet_has_skip_edges(self):
        """More edges than a pure chain: the residual signature."""
        model = resnet(18)
        assert len(model.edges) > model.layer_count - 1

    def test_googlenet_has_branches(self):
        model = googlenet()
        branching = [i for i in range(model.layer_count)
                     if len(model.successors(i)) > 1]
        assert len(branching) >= 9  # one fan-out per inception module

    def test_small_models_exist(self):
        assert yolo_lite().parameter_count < 1e6
        assert dlrm().total_macs < 1e7  # embedding-dominated
        assert efficientnet_b0().parameter_count < 10e6
        assert retinanet().parameter_count > resnet(50).parameter_count


class TestTransformers:
    def test_gpt2_block_counts_match_paper_core_requests(self):
        assert gpt2_block_count("small") == 12
        assert gpt2_block_count("medium") == 24
        assert gpt2_block_count("large") == 36

    def test_gpt2_layers_without_embeddings(self):
        model = gpt2("small", 128)
        assert model.layer_count == 24  # attn + mlp per block

    def test_gpt2_with_embeddings(self):
        model = gpt2("small", 128, include_embeddings=True)
        assert model.layer_count == 26
        assert model.total_weight_bytes > gpt2("small", 128).total_weight_bytes

    def test_gpt2_unknown_size(self):
        with pytest.raises(CompilationError):
            gpt2("xxl")
        with pytest.raises(CompilationError):
            gpt2_block_count("xxl")

    def test_gpt2_sizes_ordered(self):
        small = gpt2("small", 128).total_macs
        medium = gpt2("medium", 128).total_macs
        large = gpt2("large", 128).total_macs
        assert small < medium < large

    def test_transformer_block_naming(self):
        block = transformer_block(128, 16)
        assert block.name == "transformer_128dim_16slen"

    def test_transformer_block_dim_heads_divisibility(self):
        with pytest.raises(CompilationError):
            transformer_block(130, 16, heads=4)

    def test_resnet_block_naming(self):
        assert resnet_block(16, 64).name == "resnet_block_16wh_64c"


@settings(max_examples=30, deadline=None)
@given(batch=st.integers(1, 64))
def test_property_batch_scaling_is_linear(batch):
    model = resnet(18)
    scaled = model.scaled(batch)
    assert scaled.total_macs == batch * model.total_macs
    assert scaled.parameter_count == model.parameter_count
