"""Cross-cutting property-based tests on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import NoCConfig
from repro.arch.noc import NoC
from repro.arch.topology import Topology
from repro.compiler.partitioner import partition
from repro.sim import Simulator
from repro.workloads.graph import Layer, ModelGraph


def chain_model(loads):
    g = ModelGraph("chain")
    for index, macs in enumerate(loads):
        g.add_layer(Layer(f"l{index}", "fc", macs, max(1, macs), 64))
    return g


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 5), cols=st.integers(1, 5),
       src=st.integers(0, 24), dst=st.integers(0, 24))
def test_property_dor_paths_valid_and_minimal(rows, cols, src, dst):
    """DOR paths use only physical links and have Manhattan length."""
    mesh = Topology.mesh2d(rows, cols)
    n = mesh.node_count
    src, dst = src % n, dst % n
    path = mesh.dor_path(src, dst)
    assert path[0] == src and path[-1] == dst
    for u, v in zip(path, path[1:]):
        assert mesh.has_edge(u, v)
    assert len(path) - 1 == mesh.hop_distance(src, dst)
    assert len(set(path)) == len(path)  # no loops -> deadlock-free order


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.integers(1, 5 * 2048), min_size=1, max_size=5))
def test_property_noc_conservation(payloads):
    """Every transfer completes; latency grows with payload; stats add up."""
    sim = Simulator()
    noc = NoC(sim, Topology.mesh2d(2, 3), NoCConfig())
    procs = [noc.transfer(0, 5, payload) for payload in payloads]
    sim.run_until_processes_done()
    total_packets = 0
    for proc, payload in zip(procs, payloads):
        record = proc.value
        assert record.end_cycle > record.start_cycle
        assert record.payload_bytes == payload
        total_packets += record.packet_count
    first_hop = noc.link_stats[(0, 1)]
    assert first_hop.packets == total_packets


@settings(max_examples=25, deadline=None)
@given(
    loads=st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
    cores=st.integers(1, 12),
)
def test_property_partition_covers_all_layers_once(loads, cores):
    plan = partition(chain_model(loads), cores)
    covered = [i for stage in plan.stages for i in stage.layer_indices]
    assert covered == list(range(len(loads)))
    assert sum(stage.parallelism for stage in plan.stages) <= cores
    # Bottleneck is at least the mean and at least the max single layer.
    if any(loads):
        assert plan.bottleneck_macs() * cores >= sum(loads) / 2


@settings(max_examples=25, deadline=None)
@given(
    loads=st.lists(st.integers(1, 10_000), min_size=2, max_size=20),
    cores=st.integers(2, 8),
)
def test_property_more_cores_never_raise_bottleneck(loads, cores):
    model = chain_model(loads)
    few = partition(model, cores).bottleneck_macs()
    many = partition(model, cores + 2).bottleneck_macs()
    assert many <= few


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_mapping_bijection_is_valid(seed):
    """Similar mapping always returns a proper bijection onto free cores."""
    from repro.core.topology_mapping import TopologyMapper

    chip = Topology.mesh2d(4, 4)
    rng_allocated = {(seed + i * 7) % 16 for i in range(seed % 5)}
    request_size = 2 + seed % 4
    request = Topology.line(request_size)
    free = 16 - len(rng_allocated)
    if free < request_size:
        return
    mapper = TopologyMapper(chip)
    try:
        result = mapper.map_similar(request, rng_allocated)
    except Exception:
        return  # disconnected free sets may legitimately fail
    values = list(result.vmap.values())
    assert len(set(values)) == len(values)
    assert not set(values) & rng_allocated
    assert set(result.vmap) == set(request.nodes)


class TestFailureInjection:
    def test_dma_fault_on_unmapped_address(self):
        from repro.arch.dma import DmaEngine, TensorAccess
        from repro.core.vchunk import RangeTranslator
        from repro.errors import TranslationFault

        translator = RangeTranslator()
        translator.map_range(0, 0, 0x1000)
        engine = DmaEngine(0, translator)
        with pytest.raises(TranslationFault):
            engine.stream_weights([TensorAccess(0x9000, 256)])

    def test_dma_fault_on_permission(self):
        from repro.arch.dma import DmaEngine, TensorAccess
        from repro.core.vchunk import RangeTranslator
        from repro.errors import PermissionFault

        translator = RangeTranslator()
        translator.map_range(0, 0, 0x1000, permissions="W")
        engine = DmaEngine(0, translator)
        with pytest.raises(PermissionFault):
            engine.stream_weights([TensorAccess(0, 256)])

    def test_executor_guest_cannot_escape_vnpu(self):
        """Send to a virtual core outside the vNPU is caught up front."""
        from repro.arch.chip import Chip
        from repro.arch.config import fpga_config
        from repro.core.hypervisor import Hypervisor
        from repro.core.vnpu import VNpuSpec
        from repro.arch.topology import MeshShape
        from repro.errors import ProgramError
        from repro.isa.program import TaskProgram
        from repro.runtime.executor import Executor

        chip = Chip(fpga_config())
        hv = Hypervisor(chip, min_block=1 << 16)
        vnpu = hv.create_vnpu(VNpuSpec("v", MeshShape(1, 2), 1 << 20))
        program = TaskProgram("escape")
        v0 = vnpu.virtual_cores[0]
        program.core(v0).send(99, 128, "x")
        with pytest.raises(ProgramError):
            Executor(chip).run(program, vnpu=vnpu)

    def test_mismatched_receive_deadlocks_detectably(self):
        """A receive with no matching send fails validation, not a hang."""
        from repro.arch.chip import Chip
        from repro.arch.config import fpga_config
        from repro.errors import ProgramError
        from repro.isa.program import TaskProgram
        from repro.runtime.executor import Executor

        chip = Chip(fpga_config())
        program = TaskProgram("orphan")
        program.core(0).receive(1, "never")
        program.core(1)
        with pytest.raises(ProgramError, match="unpaired"):
            Executor(chip).run(program)

    def test_hypervisor_core_exhaustion_is_clean(self):
        from repro.arch.chip import Chip
        from repro.arch.config import sim_config
        from repro.arch.topology import MeshShape
        from repro.core.hypervisor import Hypervisor
        from repro.core.vnpu import VNpuSpec
        from repro.errors import AllocationError

        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        hv.create_vnpu(VNpuSpec("big", MeshShape(6, 6), 1 << 26))
        before = hv.buddy.free_bytes
        with pytest.raises(AllocationError):
            hv.create_vnpu(VNpuSpec("late", MeshShape(1, 1), 1 << 20))
        assert hv.buddy.free_bytes == before  # no leak on failure
