"""Dispatch-order identity: calendar queue vs the seed binary heap.

The calendar-queue engine claims the *exact* ``(cycle, sequence)`` total
order of the original heap-based engine — all events at cycle ``c`` fire
before any at ``c' > c``, and same-cycle events fire in scheduling
order. This suite proves it by replaying randomized adversarial
schedules on both engines and comparing the full dispatch logs:

- far-future timeouts (sparse singleton buckets),
- same-cycle bursts (zero timeouts, broadcast events),
- re-entrant scheduling from callbacks (processes spawning processes,
  firing events and creating zero timeouts mid-dispatch),
- joins of running and already-finished processes.

``HeapSimulator`` below is a faithful copy of the seed engine (PR 3
state): a priority queue of ``(cycle, sequence, event)`` tuples. It
exists only as the ordering oracle for these tests.
"""

import heapq
import itertools
import random

from repro.sim.engine import Simulator
from repro.errors import SimulationError


# ---------------------------------------------------------------------------
# The ordering oracle: the seed heap engine, verbatim semantics.
# ---------------------------------------------------------------------------

class HeapEvent:
    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self._callbacks = []
        self.triggered = False
        self._dispatched = False
        self.value = None

    def succeed(self, value=None):
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        self.sim._schedule(self.sim.now, self)
        return self

    def add_callback(self, callback):
        if self._dispatched:
            proxy = HeapEvent(self.sim, name=f"late:{self.name}")
            proxy._callbacks.append(callback)
            proxy.succeed(self.value)
        else:
            self._callbacks.append(callback)


class HeapTimeout(HeapEvent):
    def __init__(self, sim, delay):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim, name="timeout")
        self.triggered = True
        self.delay = int(delay)
        sim._schedule(sim.now + self.delay, self)


class HeapProcess(HeapEvent):
    def __init__(self, sim, generator, name=""):
        super().__init__(sim, name=name or "process")
        self.generator = generator
        self.alive = True
        bootstrap = HeapEvent(sim, name=f"start:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    def _resume(self, event):
        try:
            target = self.generator.send(event.value)
        except StopIteration as stop:
            self.alive = False
            self.succeed(stop.value)
            return
        target.add_callback(self._resume)


class HeapSimulator:
    """The seed engine: heapq of (cycle, sequence, event)."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._sequence = itertools.count()

    def event(self, name=""):
        return HeapEvent(self, name=name)

    def timeout(self, delay):
        return HeapTimeout(self, delay)

    def process(self, generator, name=""):
        return HeapProcess(self, generator, name=name)

    def _schedule(self, cycle, event):
        heapq.heappush(self._queue, (cycle, next(self._sequence), event))

    def run(self, until=None):
        queue = self._queue
        while queue:
            cycle = queue[0][0]
            if until is not None and cycle > until:
                self.now = until
                return self.now
            _, _seq, event = heapq.heappop(queue)
            self.now = cycle
            callbacks = event._callbacks
            event._callbacks = []
            event._dispatched = True
            for callback in callbacks:
                callback(event)
        return self.now


# ---------------------------------------------------------------------------
# Adversarial schedule programs, engine-agnostic.
# ---------------------------------------------------------------------------

def adversarial_program(sim, log, rng_seed, workers=8, steps=12):
    """Spawn a randomized process mix; every resume appends to ``log``.

    The draw sequence depends only on ``rng_seed``, so both engines
    replay exactly the same program. Actions per step: near-future
    timeouts (0-3 cycles, heavy on 0 and 1 to force same-cycle bursts),
    far-future timeouts, waiting on shared broadcast events, firing
    them, and re-entrantly spawning child processes mid-dispatch.
    """
    rng = random.Random(rng_seed)
    shared = [sim.event(name=f"shared:{i}") for i in range(4)]
    plans = [
        [
            (rng.choice(["t0", "t1", "t1", "t3", "far", "wait", "fire",
                         "spawn"]),
             rng.randrange(1000, 5000), rng.randrange(4))
            for _ in range(steps)
        ]
        for _ in range(workers)
    ]

    def child(sim, tag):
        log.append(("child-start", tag, sim.now))
        yield sim.timeout(tag % 3)
        log.append(("child-end", tag, sim.now))
        return tag

    def worker(sim, wid, plan):
        for step, (action, far, which) in enumerate(plan):
            log.append(("step", wid, step, action, sim.now))
            if action == "t0":
                yield sim.timeout(0)
            elif action == "t1":
                yield sim.timeout(1)
            elif action == "t3":
                yield sim.timeout(3)
            elif action == "far":
                yield sim.timeout(far)
            elif action == "wait":
                gate = shared[which]
                if not gate.triggered:
                    value = yield gate
                    log.append(("woke", wid, step, value, sim.now))
                else:
                    yield sim.timeout(1)
            elif action == "fire":
                gate = shared[which]
                if not gate.triggered:
                    gate.succeed((wid, step))
                yield sim.timeout(0)
            elif action == "spawn":
                value = yield sim.process(child(sim, wid * 100 + step))
                log.append(("joined", wid, step, value, sim.now))
        log.append(("done", wid, sim.now))

    for wid, plan in enumerate(plans):
        sim.process(worker(sim, wid, plan), name=f"w{wid}")
    # Un-fired shared gates would deadlock run_until_processes_done;
    # plain run() just drains, so fire stragglers from a sweeper.

    def sweeper(sim):
        yield sim.timeout(10_000)
        for gate in shared:
            if not gate.triggered:
                gate.succeed("sweeper")

    sim.process(sweeper(sim), name="sweeper")


def replay(engine_cls, rng_seed, until=None):
    sim = engine_cls()
    log = []
    adversarial_program(sim, log, rng_seed)
    final = sim.run(until=until)
    return log, final


class TestDispatchOrderIdentity:
    def test_adversarial_schedules_match_heap_engine(self):
        for rng_seed in range(25):
            heap_log, heap_final = replay(HeapSimulator, rng_seed)
            cal_log, cal_final = replay(Simulator, rng_seed)
            assert cal_log == heap_log, f"dispatch order diverged @ seed {rng_seed}"
            assert cal_final == heap_final

    def test_bounded_runs_match_heap_engine(self):
        # Clip mid-schedule: the bucket engine must stop on exactly the
        # same event boundary the heap engine stops on.
        for rng_seed in range(10):
            for until in (0, 1, 2, 5, 17, 4999):
                heap_log, _ = replay(HeapSimulator, rng_seed, until=until)
                cal_log, _ = replay(Simulator, rng_seed, until=until)
                assert cal_log == heap_log, (
                    f"bounded dispatch diverged @ seed {rng_seed}, "
                    f"until {until}")

    def test_same_cycle_burst_preserves_scheduling_order(self):
        # 100 processes all waking at the same cycles for 50 rounds: the
        # wake order each round must be exactly the scheduling order.
        def run(engine_cls):
            sim = engine_cls()
            log = []

            def worker(sim, tag):
                for _ in range(50):
                    yield sim.timeout(1)
                    log.append((tag, sim.now))

            for tag in range(100):
                sim.process(worker(sim, tag))
            sim.run()
            return log

        assert run(Simulator) == run(HeapSimulator)

    def test_reentrant_zero_timeout_cascade(self):
        # A callback chain that keeps extending the *current* bucket:
        # the sweep must pick up events appended mid-sweep, in order.
        def run(engine_cls):
            sim = engine_cls()
            log = []

            def chain(sim, depth):
                if depth:
                    sim.process(chain_proc(sim, depth))

            def chain_proc(sim, depth):
                yield sim.timeout(0)
                log.append((depth, sim.now))
                chain(sim, depth - 1)

            sim.process(chain_proc(sim, 30))
            sim.run()
            return log

        expected = [(depth, 0) for depth in range(30, 0, -1)]
        assert run(Simulator) == expected
        assert run(HeapSimulator) == expected

    def test_far_future_singleton_buckets(self):
        # Sparse far-future timeouts: every bucket holds one event; the
        # calendar queue degenerates to a plain heap and must still
        # dispatch in cycle order.
        def run(engine_cls):
            sim = engine_cls()
            log = []
            rng = random.Random(99)
            delays = [rng.randrange(1, 1_000_000) for _ in range(200)]

            def one_shot(sim, delay, tag):
                yield sim.timeout(delay)
                log.append((tag, sim.now))

            for tag, delay in enumerate(delays):
                sim.process(one_shot(sim, delay, tag))
            sim.run()
            return log

        assert run(Simulator) == run(HeapSimulator)
