"""Sharded multi-process fleet simulation.

Covers :mod:`repro.serving.shard`: the chip partition and trace deal,
fault-schedule sharding, the epoch-fence coordinator's determinism
contract (sharded-vs-single-process equivalence across seeds, worker
counts and fault/elastic variants), the deferral and spill paths, and
the worker-crash recovery mode (supervised respawn, summary equal to
the oracle — the full crash matrix lives in ``test_recovery.py``).
"""

import json

import pytest

from repro.errors import ServingError
from repro.serving import (
    DEFAULT_SLO_MIX,
    AdmitOrder,
    CrashEvent,
    CrashSchedule,
    FailureEvent,
    FailureSchedule,
    FleetScheduler,
    ShardedFleetScheduler,
    deal_sessions,
    generate_failure_schedule,
    generate_fleet_trace,
    partition_chips,
    partition_schedule,
)

#: Equivalence-matrix shape (ISSUE 8's property suite floor).
SEEDS = (3, 11, 23, 42)
WORKER_COUNTS = (2, 4, 8)


def fleet_trace(seed, sessions=32, chips=8, **kwargs):
    kwargs.setdefault("arrival_process", "bursty")
    kwargs.setdefault("slo_mix", DEFAULT_SLO_MIX)
    return generate_fleet_trace(seed, sessions, chips=chips,
                                max_cores=16, **kwargs)


def sharded_summary(trace, workers, faults=None, **kwargs):
    kwargs.setdefault("shards", 4)
    fleet = ShardedFleetScheduler.homogeneous(
        8, cores=16, workers=workers, faults=faults, **kwargs)
    return fleet.serve(trace)


def canonical(summary):
    return json.dumps(summary, sort_keys=True)


# -- partition / deal units --------------------------------------------------

class TestPartitionChips:
    def test_even_split(self):
        assert partition_chips(8, 4) == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_remainder_goes_to_leading_shards(self):
        groups = partition_chips(10, 4)
        assert groups == [(0, 1, 2), (3, 4, 5), (6, 7), (8, 9)]
        assert sorted(c for g in groups for c in g) == list(range(10))

    def test_one_chip_per_shard(self):
        assert partition_chips(3, 3) == [(0,), (1,), (2,)]

    def test_more_shards_than_chips_rejected(self):
        with pytest.raises(ServingError, match="cannot cut"):
            partition_chips(2, 3)

    def test_zero_shards_rejected(self):
        with pytest.raises(ServingError, match="at least one shard"):
            partition_chips(4, 0)


class TestDealSessions:
    def test_round_robin_by_arrival_rank(self):
        trace = fleet_trace(3, sessions=9)
        dealt = deal_sessions(trace, 3)
        ordered = sorted(trace, key=lambda s: (s.arrival_cycle, s.session_id))
        for rank, session in enumerate(ordered):
            assert session in dealt[rank % 3]

    def test_deal_partitions_the_trace(self):
        trace = fleet_trace(11, sessions=10)
        dealt = deal_sessions(trace, 4)
        ids = sorted(s.session_id for part in dealt for s in part)
        assert ids == sorted(s.session_id for s in trace)

    def test_zero_shards_rejected(self):
        with pytest.raises(ServingError, match="at least one shard"):
            deal_sessions(fleet_trace(3, sessions=2), 0)


class TestPartitionSchedule:
    def test_events_land_in_owning_shard_with_local_index(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=10, chip_index=0, kind="chip",
                         duration_cycles=5),
            FailureEvent(cycle=20, chip_index=3, kind="hbm",
                         duration_cycles=5),
        ))
        parts = partition_schedule(schedule, [(0, 1), (2, 3)])
        assert [e.chip_index for e in parts[0].events] == [0]
        assert [e.chip_index for e in parts[1].events] == [1]
        assert parts[1].events[0].kind == "hbm"

    def test_quiet_shard_gets_none_not_empty_schedule(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=10, chip_index=0, kind="chip",
                         duration_cycles=5),
        ))
        parts = partition_schedule(schedule, [(0,), (1,)])
        assert parts[1] is None

    def test_none_schedule_passes_through(self):
        assert partition_schedule(None, [(0,), (1,)]) == [None, None]

    def test_unowned_chip_rejected(self):
        schedule = FailureSchedule((
            FailureEvent(cycle=10, chip_index=5, kind="chip",
                         duration_cycles=5),
        ))
        with pytest.raises(ServingError, match="no shard group owns"):
            partition_schedule(schedule, [(0,), (1,)])

    def test_duplicate_chip_rejected(self):
        schedule = FailureSchedule(())
        with pytest.raises(ServingError, match="two shard groups"):
            partition_schedule(schedule, [(0, 1), (1, 2)])

    def test_union_of_parts_is_the_original_schedule(self):
        schedule = generate_failure_schedule(7, chips=8,
                                             horizon_cycles=10_000_000,
                                             failures=6)
        groups = partition_chips(8, 3)
        parts = partition_schedule(schedule, groups)
        rebuilt = []
        for shard_id, part in enumerate(parts):
            if part is None:
                continue
            for event in part.events:
                rebuilt.append((event.cycle,
                                groups[shard_id][event.chip_index],
                                event.kind, event.duration_cycles))
        original = [(e.cycle, e.chip_index, e.kind, e.duration_cycles)
                    for e in schedule.events]
        assert sorted(rebuilt) == sorted(original)


# -- coordinator validation --------------------------------------------------

class TestCoordinatorValidation:
    def test_bad_dealing_mode(self):
        with pytest.raises(ServingError, match="unknown dealing mode"):
            ShardedFleetScheduler.homogeneous(4, cores=16, dealing="hash")

    def test_bad_epoch(self):
        with pytest.raises(ServingError, match="epoch_cycles"):
            ShardedFleetScheduler.homogeneous(4, cores=16, epoch_cycles=0)

    def test_bad_policy_fails_before_any_worker_starts(self):
        with pytest.raises(ServingError, match="unknown admission policy"):
            ShardedFleetScheduler.homogeneous(4, cores=16, policy="lifo")

    def test_crash_schedule_requires_workers(self):
        crashes = CrashSchedule((CrashEvent("crash", shard=0),))
        with pytest.raises(ServingError, match="workers > 1"):
            ShardedFleetScheduler.homogeneous(4, cores=16, crashes=crashes)

    def test_workers_clamped_to_shards(self):
        fleet = ShardedFleetScheduler.homogeneous(4, cores=16, shards=2,
                                                  workers=16)
        assert fleet.workers == 2

    def test_default_shards_cap_at_eight(self):
        assert ShardedFleetScheduler.homogeneous(64, cores=16).shards == 8
        assert ShardedFleetScheduler.homogeneous(3, cores=16).shards == 3

    def test_oversized_session_rejected_at_submit(self):
        fleet = ShardedFleetScheduler.homogeneous(4, cores=16, shards=2)
        # A 36-core-chip trace holds shapes a 16-core fleet cannot host.
        trace = generate_fleet_trace(3, 24, chips=4, max_cores=36)
        assert any(s.core_count > 16 for s in trace)
        with pytest.raises(ServingError, match="largest fleet chip"):
            fleet.submit(trace)

    def test_summary_before_run_rejected(self):
        fleet = ShardedFleetScheduler.homogeneous(4, cores=16)
        with pytest.raises(ServingError, match="run\\(\\)"):
            fleet.summary()


# -- the determinism contract ------------------------------------------------

class TestShardedEquivalence:
    """Aggregate summaries are byte-identical for every worker count."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_plain_matches_single_process_oracle(self, seed, workers):
        trace = fleet_trace(seed)
        oracle = canonical(sharded_summary(trace, workers=1,
                                           elastic="shrink_then_preempt"))
        assert canonical(sharded_summary(
            trace, workers=workers,
            elastic="shrink_then_preempt")) == oracle

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_faults_match_single_process_oracle(self, seed, workers):
        trace = fleet_trace(seed)
        faults = generate_failure_schedule(seed, chips=8,
                                           horizon_cycles=60_000_000,
                                           failures=3)
        oracle = canonical(sharded_summary(trace, workers=1, faults=faults))
        summary = sharded_summary(trace, workers=workers, faults=faults)
        assert canonical(summary) == oracle
        assert "faults" in summary

    def test_static_dealing_matches_oracle(self):
        trace = fleet_trace(11)
        oracle = canonical(sharded_summary(trace, workers=1,
                                           dealing="static"))
        assert canonical(sharded_summary(trace, workers=4,
                                         dealing="static")) == oracle

    def test_shard_count_changes_results_but_not_worker_count(self):
        # Sharding is part of the experiment definition (partition +
        # conservative fences change admissions); worker count is not.
        trace = fleet_trace(11)
        two = sharded_summary(trace, workers=1, shards=2)
        four = sharded_summary(trace, workers=1, shards=4)
        assert two["sharding"]["shards"] == 2
        assert four["sharding"]["shards"] == 4

    def test_all_sessions_complete(self):
        trace = fleet_trace(23, sessions=24)
        summary = sharded_summary(trace, workers=2)
        assert summary["sessions_completed"] == 24
        assert summary["sharding"]["epochs"] >= 1
        assert len(summary["sharding"]["per_shard"]) == 4

    def test_single_shard_matches_monolithic_fleet(self):
        # One shard, one worker: the coordinator degenerates to the
        # plain FleetScheduler on the same chips — same completions,
        # same per-session queue-delay tail.
        trace = fleet_trace(3, sessions=16)
        mono = FleetScheduler.homogeneous(8, cores=16)
        mono_summary = mono.serve(trace).summary(
            mono.chips[0].chip.config.frequency_hz)
        shard = sharded_summary(trace, workers=1, shards=1)
        assert (shard["sessions_completed"]
                == mono_summary["sessions_completed"])
        assert (shard["queue_delay_cycles"]["max"]
                == mono_summary["queue_delay_cycles"]["max"])


# -- deferral and spill paths ------------------------------------------------

class TestDeferralAndSpills:
    def test_fleet_wide_outage_defers_then_completes(self):
        # Every chip down across several fences: arrivals reported
        # against an all-unhealthy claim map cannot be routed anywhere
        # and must defer at the coordinator, then land after recovery —
        # nothing is lost.
        trace = generate_fleet_trace(3, 20, chips=4, max_cores=16,
                                     mean_interarrival_cycles=4_000_000,
                                     arrival_process="bursty",
                                     slo_mix=DEFAULT_SLO_MIX)
        faults = FailureSchedule(tuple(
            FailureEvent(cycle=1, chip_index=chip, kind="chip",
                         duration_cycles=30_000_000)
            for chip in range(4)))
        fleet = ShardedFleetScheduler.homogeneous(
            4, cores=16, shards=4, workers=1, epoch_cycles=5_000_000,
            faults=faults)
        summary = fleet.serve(trace)
        assert summary["sessions_completed"] == 20
        assert summary["sharding"]["deferred_total"] > 0

    def test_spill_path_is_worker_invariant(self):
        trace = generate_fleet_trace(3, 60, chips=4, max_cores=16,
                                     mean_interarrival_cycles=400_000,
                                     arrival_process="bursty",
                                     slo_mix=DEFAULT_SLO_MIX)
        def run(workers):
            fleet = ShardedFleetScheduler.homogeneous(
                4, cores=16, shards=4, workers=workers,
                epoch_cycles=5_000_000)
            summary = fleet.serve(trace)
            return summary
        base = run(1)
        assert canonical(run(4)) == canonical(base)

    def test_admit_order_carries_fault_history(self):
        order = AdmitOrder(session=fleet_trace(3, sessions=1)[0],
                           preemptions=2, kills=1,
                           lost_service_cycles=500)
        assert order.preemptions == 2
        assert order.kills == 1
        assert order.lost_service_cycles == 500


# -- worker failure ----------------------------------------------------------

class TestWorkerCrash:
    def test_crash_mid_epoch_recovers_to_oracle(self):
        trace = fleet_trace(11)
        oracle = sharded_summary(list(trace), workers=1)
        crashes = CrashSchedule((CrashEvent("crash", shard=1, epoch=1),))
        fleet = ShardedFleetScheduler.homogeneous(
            8, cores=16, shards=4, workers=2, crashes=crashes,
            respawn_backoff_seconds=0.0)
        summary = fleet.serve(trace)
        recovery = summary.pop("recovery")
        assert recovery["respawns"] == 1
        assert canonical(summary) == canonical(oracle)
        # The pool is torn down — no orphaned processes, no hang.
        assert fleet._pool == {}
