"""Unit tests for vChunk: RTT, range TLB, last_v hints, access counter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import calibration
from repro.core.vchunk import (
    RTT_ENTRY_BITS,
    AccessCounter,
    RangeTranslationTable,
    RangeTranslator,
    RttEntry,
)
from repro.errors import PermissionFault, TranslationFault


def make_table(ranges):
    """ranges: list of (va, pa, size)."""
    return RangeTranslationTable([RttEntry(*r) for r in ranges])


class TestRttEntry:
    def test_entry_bit_budget_matches_paper(self):
        # Fig 14 says each hardware range-TLB entry is 144 bits; the
        # architectural fields total 140 (48+48+32+4+8).
        assert RTT_ENTRY_BITS == 140

    def test_field_width_validation(self):
        with pytest.raises(TranslationFault):
            RttEntry(1 << 48, 0, 10)
        with pytest.raises(TranslationFault):
            RttEntry(0, 1 << 48, 10)
        with pytest.raises(TranslationFault):
            RttEntry(0, 0, 1 << 32)
        with pytest.raises(TranslationFault):
            RttEntry(0, 0, 0)

    def test_covers(self):
        entry = RttEntry(0x1000, 0x9000, 0x100)
        assert entry.covers(0x1000)
        assert entry.covers(0x10FF)
        assert not entry.covers(0x1100)
        assert not entry.covers(0xFFF)


class TestTable:
    def test_entries_sorted_by_va(self):
        table = make_table([(0x3000, 0, 0x1000), (0x1000, 0, 0x1000)])
        vas = [e.virtual_address for e in table.entries]
        assert vas == sorted(vas)

    def test_overlap_rejected(self):
        table = make_table([(0x1000, 0, 0x1000)])
        with pytest.raises(TranslationFault):
            table.insert(RttEntry(0x1800, 0, 0x1000))

    def test_adjacent_ranges_allowed(self):
        table = make_table([(0x1000, 0, 0x1000)])
        table.insert(RttEntry(0x2000, 0x5000, 0x1000))
        assert len(table) == 2

    def test_find_index_binary_search(self):
        table = make_table([(i * 0x1000, i * 0x10000, 0x1000) for i in range(8)])
        assert table.find_index(0x3000) == 3
        assert table.find_index(0x3FFF) == 3
        assert table.find_index(0x9000) is None

    def test_walk_empty_table_faults(self):
        with pytest.raises(TranslationFault):
            RangeTranslationTable().walk(0)

    def test_walk_unmapped_faults_after_full_scan(self):
        table = make_table([(0x1000, 0, 0x1000)])
        with pytest.raises(TranslationFault):
            table.walk(0x9000)


class TestWalkOrder:
    def test_current_entry_is_cheapest(self):
        table = make_table([(0x1000, 0, 0x1000), (0x2000, 0, 0x1000)])
        table.cur_index = 0
        index, cycles = table.walk(0x1800)
        assert index == 0
        assert cycles == calibration.RTT_ENTRY_SCAN

    def test_sequential_scan_finds_next_entry(self):
        table = make_table([(0x1000, 0, 0x1000), (0x2000, 0, 0x1000)])
        table.cur_index = 0
        index, cycles = table.walk(0x2500)
        assert index == 1
        assert table.cur_index == 1

    def test_scan_wraps_to_base(self):
        table = make_table([(i * 0x1000, 0x100000 + i * 0x1000, 0x1000)
                            for i in range(4)])
        table.cur_index = 3
        index, _ = table.walk(0x0800)  # entry 0: requires wraparound
        assert index == 0

    def test_last_v_hint_learned_and_used(self):
        """Iteration loop: after one pass, jumping back costs one probe."""
        table = make_table([(i * 0x1000, 0, 0x1000) for i in range(6)])
        # First iteration walks 0..5 sequentially.
        for i in range(6):
            table.walk(i * 0x1000 + 4)
        # Wrap to entry 0 (start of next iteration): learns last_v.
        _, first_wrap = table.walk(0x0004)
        for i in range(1, 6):
            table.walk(i * 0x1000 + 4)
        _, second_wrap = table.walk(0x0004)
        assert second_wrap == calibration.RTT_LAST_V_HIT
        assert second_wrap < first_wrap


class TestRangeTranslator:
    def test_translation_offsets(self):
        translator = RangeTranslator()
        translator.map_range(0x10000, 0x900000, 0x4000)
        result = translator.translate(0x10123)
        assert result.physical_address == 0x900123
        assert result.contiguous_bytes == 0x4000 - 0x123

    def test_one_entry_per_range_vs_pages(self):
        """The headline footprint win: 1 RTT entry vs thousands of PTEs."""
        from repro.mem.page_table import PageTableTranslator

        rtt = RangeTranslator()
        page = PageTableTranslator()
        rtt.map_range(0, 0x1000000, 8 << 20)
        page.map_range(0, 0x1000000, 8 << 20)
        assert rtt.entry_count == 1
        assert page.entry_count == 2048

    def test_tlb_hit_after_first_access(self):
        translator = RangeTranslator()
        translator.map_range(0, 0x100000, 0x10000)
        first = translator.translate(0)
        second = translator.translate(0x8000)
        assert not first.hit and second.hit

    def test_permission_fault(self):
        translator = RangeTranslator()
        translator.map_range(0, 0, 0x1000, permissions="R")
        with pytest.raises(PermissionFault):
            translator.translate(0, access="W")

    def test_agrees_with_page_table_on_same_mapping(self):
        from repro.mem.page_table import PageTableTranslator

        rtt = RangeTranslator()
        page = PageTableTranslator(tlb_entries=64)
        for va, pa, size in [(0, 0x100000, 0x8000), (0x20000, 0x400000, 0x4000)]:
            rtt.map_range(va, pa, size)
            page.map_range(va, pa, size)
        for va in [0, 0x7FFF, 0x20000, 0x23ABC]:
            assert (rtt.translate(va).physical_address
                    == page.translate(va).physical_address)


@settings(max_examples=150, deadline=None)
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=0x7FFF),
                     min_size=1, max_size=30),
)
def test_property_rtt_matches_reference_lookup(offsets):
    """Hardware walk always lands on the same entry as binary search."""
    table = make_table([(i * 0x8000, i * 0x80000, 0x8000) for i in range(4)])
    for offset in offsets:
        base = (offset % 4) * 0x8000
        va = base + (offset % 0x8000)
        expected = table.find_index(va)
        found, _ = table.walk(va)
        assert found == expected


class TestAccessCounter:
    def test_uncapped_never_stalls(self):
        counter = AccessCounter(window_cycles=1000, max_bytes_per_window=None)
        assert counter.charge(10 ** 9, now=0) == 0

    def test_within_budget_no_stall(self):
        counter = AccessCounter(1000, 4096)
        assert counter.charge(4096, now=10) == 0

    def test_overflow_stalls_to_next_window(self):
        counter = AccessCounter(1000, 4096)
        counter.charge(4096, now=0)
        stall = counter.charge(1, now=100)
        assert stall == 900  # wait for the window at cycle 1000

    def test_window_reset_clears_budget(self):
        counter = AccessCounter(1000, 4096)
        counter.charge(4096, now=0)
        assert counter.charge(4096, now=1500) == 0

    def test_totals_accumulate(self):
        counter = AccessCounter(1000, 4096)
        counter.charge(3000, now=0)
        counter.charge(3000, now=10)
        assert counter.total_bytes == 6000
        assert counter.total_stall_cycles > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AccessCounter(0, 100)
        with pytest.raises(ValueError):
            AccessCounter(100, 0)
        counter = AccessCounter(100, 100)
        with pytest.raises(ValueError):
            counter.charge(-5, now=0)
