"""Unit tests for Resource / Store primitives."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_capacity_one_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="link")
    spans = []

    def user(sim, name, hold):
        yield res.acquire()
        start = sim.now
        yield sim.timeout(hold)
        res.release()
        spans.append((name, start, sim.now))

    sim.process(user(sim, "a", 10))
    sim.process(user(sim, "b", 10))
    sim.run_until_processes_done()
    assert spans == [("a", 0, 10), ("b", 10, 20)]


def test_resource_capacity_two_allows_parallel_holders():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def user(sim):
        yield res.acquire()
        yield sim.timeout(5)
        res.release()
        ends.append(sim.now)

    for _ in range(3):
        sim.process(user(sim))
    sim.run_until_processes_done()
    assert ends == [5, 5, 10]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, name, arrive):
        yield sim.timeout(arrive)
        yield res.acquire()
        order.append(name)
        yield sim.timeout(100)
        res.release()

    sim.process(user(sim, "first", 1))
    sim.process(user(sim, "second", 2))
    sim.process(user(sim, "third", 3))
    sim.run_until_processes_done()
    assert order == ["first", "second", "third"]


def test_resource_tracks_wait_cycles():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        yield res.acquire()
        yield sim.timeout(8)
        res.release()

    def waiter(sim):
        yield sim.timeout(2)
        yield res.acquire()
        res.release()

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run_until_processes_done()
    assert res.total_wait_cycles == 6
    assert res.total_acquisitions == 2


def test_release_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    store.put("x")
    sim.process(consumer(sim))
    sim.run()
    assert got == [(0, "x")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(7)
        store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(7, "late")]


def test_store_fifo_order_many_items():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for item in (1, 2, 3):
        store.put(item)
    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2, 3]
    assert len(store) == 0


def test_store_peek_all_is_nondestructive():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.peek_all() == ["a", "b"]
    assert len(store) == 2
