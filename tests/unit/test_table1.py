"""Unit tests for the Table 1 comparison data."""

from repro.analysis.table1 import (
    MECHANISMS,
    hypervisor_isolated,
    only_interconnect_virtualizer,
    vnpu_row,
)


def test_vnpu_is_full_virtualization_with_all_three_metrics():
    row = vnpu_row()
    assert row.full_virtualization
    assert row.virtualizes_instruction
    assert row.virtualizes_memory
    assert row.virtualizes_interconnect
    assert row.instance_limit is None


def test_vnpu_uniquely_virtualizes_the_interconnect():
    assert only_interconnect_virtualizer().method == "vNPU"


def test_mig_limited_to_seven_instances():
    mig = next(m for m in MECHANISMS if m.method == "MIG")
    assert mig.instance_limit == 7
    assert mig.full_virtualization


def test_time_sliced_virtualizes_nothing_spatially():
    ts = next(m for m in MECHANISMS if m.method == "Time-sliced")
    assert not (ts.virtualizes_instruction or ts.virtualizes_memory
                or ts.virtualizes_interconnect)


def test_hypervisor_threat_model_rows():
    methods = {m.method for m in hypervisor_isolated()}
    assert methods == {"MIG", "V10", "vNPU"}


def test_prior_npu_work_is_para_virtualization():
    for method in ("AuRORA", "V10"):
        row = next(m for m in MECHANISMS if m.method == method)
        assert not row.full_virtualization
        assert not row.virtualizes_interconnect


def test_no_duplicate_mechanism_rows():
    keys = [(m.accelerator, m.method) for m in MECHANISMS]
    assert len(keys) == len(set(keys))


def test_no_empty_catalog_fields():
    """Every row carries a non-empty method and threat-model string."""
    for mechanism in MECHANISMS:
        assert mechanism.accelerator in ("GPU", "NPU")
        assert mechanism.method.strip()
        assert mechanism.threat_model.strip()


def test_instance_limits_are_none_or_positive():
    for mechanism in MECHANISMS:
        assert mechanism.instance_limit is None or mechanism.instance_limit > 0


def test_vnpu_row_is_unique():
    assert sum(1 for m in MECHANISMS if m.method == "vNPU") == 1


def test_full_virtualization_rows():
    full = {m.method for m in MECHANISMS if m.full_virtualization}
    assert full == {"MIG", "Time-sliced", "vNPU"}


def test_api_forwarding_trusts_a_userspace_server():
    """The weakest threat models live in userspace servers, not hypervisors."""
    for method in ("API Forwarding", "MPS"):
        row = next(m for m in MECHANISMS if m.method == method)
        assert not row.full_virtualization
        assert row.threat_model.endswith("server")
        assert row not in hypervisor_isolated()
