"""Unit tests for the Table 1 comparison data."""

from repro.analysis.table1 import (
    MECHANISMS,
    hypervisor_isolated,
    only_interconnect_virtualizer,
    vnpu_row,
)


def test_vnpu_is_full_virtualization_with_all_three_metrics():
    row = vnpu_row()
    assert row.full_virtualization
    assert row.virtualizes_instruction
    assert row.virtualizes_memory
    assert row.virtualizes_interconnect
    assert row.instance_limit is None


def test_vnpu_uniquely_virtualizes_the_interconnect():
    assert only_interconnect_virtualizer().method == "vNPU"


def test_mig_limited_to_seven_instances():
    mig = next(m for m in MECHANISMS if m.method == "MIG")
    assert mig.instance_limit == 7
    assert mig.full_virtualization


def test_time_sliced_virtualizes_nothing_spatially():
    ts = next(m for m in MECHANISMS if m.method == "Time-sliced")
    assert not (ts.virtualizes_instruction or ts.virtualizes_memory
                or ts.virtualizes_interconnect)


def test_hypervisor_threat_model_rows():
    methods = {m.method for m in hypervisor_isolated()}
    assert methods == {"MIG", "V10", "vNPU"}


def test_prior_npu_work_is_para_virtualization():
    for method in ("AuRORA", "V10"):
        row = next(m for m in MECHANISMS if m.method == method)
        assert not row.full_virtualization
        assert not row.virtualizes_interconnect
