"""Unit tests for the scratchpad meta/weight zone split."""

import pytest

from repro.arch.config import KB, CoreConfig
from repro.arch.scratchpad import Scratchpad
from repro.errors import AllocationError, HyperModeViolation


@pytest.fixture
def spad():
    return Scratchpad(CoreConfig(scratchpad_bytes=64 * KB, meta_zone_bytes=8 * KB))


class TestWeightZone:
    def test_alloc_advances_cursor(self, spad):
        first = spad.alloc_weight(1024, label="w0")
        second = spad.alloc_weight(2048)
        assert first.offset == 0
        assert second.offset == 1024
        assert spad.weight_free == spad.weight_capacity - 3072

    def test_exhaustion_raises(self, spad):
        spad.alloc_weight(spad.weight_capacity)
        with pytest.raises(AllocationError):
            spad.alloc_weight(1)

    def test_zero_alloc_rejected(self, spad):
        with pytest.raises(AllocationError):
            spad.alloc_weight(0)

    def test_reset_frees_everything(self, spad):
        spad.alloc_weight(4096)
        spad.reset_weight_zone()
        assert spad.weight_free == spad.weight_capacity
        assert spad.weight_regions == []


class TestMetaZone:
    def test_guest_cannot_install_meta(self, spad):
        with pytest.raises(HyperModeViolation):
            spad.install_meta(128)

    def test_hyper_mode_install(self, spad):
        region = spad.install_meta(128, label="rt", hyper_mode=True)
        assert region.zone == "meta"
        assert spad.meta_free == spad.meta_capacity - 128

    def test_meta_zone_capacity_enforced(self, spad):
        with pytest.raises(AllocationError):
            spad.install_meta(spad.meta_capacity + 1, hyper_mode=True)

    def test_guest_cannot_reset_meta(self, spad):
        with pytest.raises(HyperModeViolation):
            spad.reset_meta_zone()

    def test_hyper_reset(self, spad):
        spad.install_meta(64, hyper_mode=True)
        spad.reset_meta_zone(hyper_mode=True)
        assert spad.meta_free == spad.meta_capacity

    def test_zones_are_disjoint_capacities(self, spad):
        assert spad.weight_capacity + spad.meta_capacity == 64 * KB
