"""Unit tests for the hypervisor: lifecycle, meta tables, memory."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, fpga_config, sim_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import GUEST_VA_BASE, Hypervisor
from repro.core.routing_table import ShapedRoutingTable, StandardRoutingTable
from repro.core.vnpu import VNpuSpec
from repro.errors import (
    AllocationError,
    HypervisorError,
    IsolationViolation,
)


def make_hypervisor(cores=36, **kwargs):
    return Hypervisor(Chip(sim_config(cores)), **kwargs)


def spec(name="vm", rows=2, cols=2, memory=64 * MB, **kwargs):
    return VNpuSpec(name, MeshShape(rows, cols), memory_bytes=memory, **kwargs)


class TestLifecycle:
    def test_create_assigns_vmid_and_cores(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        assert vnpu.vmid == 1
        assert vnpu.core_count == 4
        assert hv.core_utilization() == pytest.approx(4 / 36)

    def test_two_vnpus_disjoint(self):
        hv = make_hypervisor()
        a = hv.create_vnpu(spec("a"))
        b = hv.create_vnpu(spec("b", rows=3, cols=3))
        assert not set(a.physical_cores) & set(b.physical_cores)

    def test_destroy_frees_everything(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        free_before = hv.buddy.free_bytes
        hv.destroy_vnpu(vnpu.vmid)
        assert hv.core_utilization() == 0.0
        assert hv.buddy.free_bytes > free_before
        with pytest.raises(HypervisorError):
            hv.vnpu(vnpu.vmid)

    def test_destroy_unknown_vmid(self):
        with pytest.raises(HypervisorError):
            make_hypervisor().destroy_vnpu(42)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(HypervisorError):
            make_hypervisor(strategy="vibes")
        hv = make_hypervisor()
        with pytest.raises(HypervisorError):
            hv.create_vnpu(spec(), strategy="vibes")

    def test_vmid_not_reused_after_destroy(self):
        hv = make_hypervisor()
        a = hv.create_vnpu(spec("a"))
        hv.destroy_vnpu(a.vmid)
        b = hv.create_vnpu(spec("b"))
        assert b.vmid != a.vmid


class TestRoutingTables:
    def test_contiguous_mesh_gets_shaped_table(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        assert isinstance(vnpu.routing_table, ShapedRoutingTable)

    def test_irregular_mapping_gets_standard_table(self):
        hv = make_hypervisor(cores=25)
        first = hv.create_vnpu(spec("a", rows=3, cols=3, memory=16 * MB))
        second = hv.create_vnpu(spec("b", rows=3, cols=3, memory=16 * MB))
        assert isinstance(second.routing_table, StandardRoutingTable)
        assert second.mapping.distance > 0

    def test_setup_cycles_recorded(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        assert vnpu.setup_cycles > 0

    def test_guest_translation_matches_mapping(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        for v_core, p_core in vnpu.mapping.vmap.items():
            assert vnpu.physical_core(v_core) == p_core

    def test_guest_cannot_reach_other_vm_cores(self):
        hv = make_hypervisor()
        a = hv.create_vnpu(spec("a"))
        outside = max(a.virtual_cores) + 100
        with pytest.raises(IsolationViolation):
            a.physical_core(outside)


class TestMemory:
    def test_rtt_entries_sorted_by_va(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(memory=48 * MB))  # 32M + 16M blocks
        entries = vnpu.translator.table.entries
        vas = [e.virtual_address for e in entries]
        assert vas == sorted(vas)
        assert vas[0] == GUEST_VA_BASE

    def test_memory_rounded_up_to_blocks(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(memory=3 * MB))
        assert vnpu.memory_bytes >= 3 * MB

    def test_few_rtt_entries_for_large_allocation(self):
        """The §5.2 point: whole buddy blocks map to single RTT entries."""
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(memory=256 * MB))
        assert vnpu.translator.entry_count <= 4

    def test_exhausting_memory_raises_and_rolls_back(self):
        chip = Chip(sim_config(36))
        hv = Hypervisor(chip)
        capacity = hv.buddy.capacity
        with pytest.raises(AllocationError):
            hv.create_vnpu(spec(memory=capacity * 2))
        # Rollback: no routing table left behind, no cores allocated.
        assert hv.core_utilization() == 0.0
        assert hv.buddy.free_bytes == capacity

    def test_memory_failure_mid_create_rolls_back(self, monkeypatch):
        """hypervisor.py's create rollback: a mid-create AllocationError
        must remove the already-installed routing table and leave the
        buddy allocator exactly as it was."""
        hv = make_hypervisor()
        capacity = hv.buddy.capacity
        real_alloc = hv.buddy.alloc
        calls = {"count": 0}

        def alloc_once_then_fail(size):
            calls["count"] += 1
            if calls["count"] > 1:
                raise AllocationError("injected mid-create failure")
            return real_alloc(size)

        monkeypatch.setattr(hv.buddy, "alloc", alloc_once_then_fail)
        with pytest.raises(AllocationError):
            hv.create_vnpu(spec(memory=48 * MB))  # 32M + 16M: two allocs
        assert calls["count"] > 1  # the failure really hit mid-allocation
        # Routing table rolled back, buddy blocks coalesced, no cores held.
        assert hv.chip.controller.ivrouter.vmids == []
        assert hv.buddy.free_bytes == capacity
        assert hv.core_utilization() == 0.0
        # The rolled-back VMID is reissued to the next successful create.
        monkeypatch.setattr(hv.buddy, "alloc", real_alloc)
        assert hv.create_vnpu(spec()).vmid == 1

    def test_meta_zone_failure_mid_create_rolls_back(self, monkeypatch):
        """A meta-zone exhaustion during install must free the guest
        memory, clear partial meta installs and remove the routing table."""
        hv = make_hypervisor()
        capacity = hv.buddy.capacity

        def exhausted(*args, **kwargs):
            raise AllocationError("injected meta-zone exhaustion")

        monkeypatch.setattr(hv, "_install_meta_tables", exhausted)
        with pytest.raises(AllocationError):
            hv.create_vnpu(spec())
        assert hv.chip.controller.ivrouter.vmids == []
        assert hv.buddy.free_bytes == capacity
        assert hv.core_utilization() == 0.0
        for core in hv.chip.cores.values():
            assert core.scratchpad.meta_regions == []

    def test_guest_translation_through_vchunk(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(memory=64 * MB))
        result = vnpu.translator.translate(GUEST_VA_BASE + 100)
        block = vnpu.memory_blocks[0]
        assert result.physical_address == block.address + 100

    def test_bandwidth_cap_wired(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(
            spec(memory_cap_bytes_per_window=1 * MB))
        assert vnpu.access_counter is not None
        assert vnpu.access_counter.max_bytes_per_window == 1 * MB


class TestMetaZones:
    def test_meta_tables_installed_on_owned_cores(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        for p_core in vnpu.physical_cores:
            labels = [r.label for r in hv.chip.core(p_core).scratchpad.meta_regions]
            assert "routing-table" in labels
            assert "rtt" in labels

    def test_meta_zones_cleared_on_destroy(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec())
        cores = vnpu.physical_cores
        hv.destroy_vnpu(vnpu.vmid)
        for p_core in cores:
            assert hv.chip.core(p_core).scratchpad.meta_regions == []


class TestNocModes:
    def test_isolated_vnpu_gets_confined_router(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(noc_isolation=True))
        assert vnpu.noc_vrouter.mode == "confined"

    def test_non_isolated_gets_dor(self):
        hv = make_hypervisor()
        vnpu = hv.create_vnpu(spec(noc_isolation=False))
        assert vnpu.noc_vrouter.mode == "dor"


class TestMigStyleOnFpga:
    def test_fpga_chip_small_allocations(self):
        hv = Hypervisor(Chip(fpga_config()), min_block=1 << 16)
        a = hv.create_vnpu(VNpuSpec("a", MeshShape(2, 2), memory_bytes=1 << 20))
        b = hv.create_vnpu(VNpuSpec("b", MeshShape(2, 2), memory_bytes=1 << 20))
        assert hv.core_utilization() == 1.0
        with pytest.raises(AllocationError):
            hv.create_vnpu(VNpuSpec("c", MeshShape(1, 1), memory_bytes=1 << 20))
