"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5)
        seen.append(sim.now)
        yield sim.timeout(7)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [5, 12]


def test_zero_timeout_runs_same_cycle():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(0)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        order.append((sim.now, name))

    sim.process(worker(sim, "slow", 10))
    sim.process(worker(sim, "fast", 3))
    sim.run()
    assert order == [(3, "fast"), (10, "slow")]


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    gate = sim.event("gate")
    got = []

    def waiter(sim):
        value = yield gate
        got.append((sim.now, value))

    def firer(sim):
        yield sim.timeout(4)
        gate.succeed("payload")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert got == [(4, "payload")]


def test_event_cannot_fire_twice():
    sim = Simulator()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_join_running_process_returns_value():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(6)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(6, 42)]


def test_join_already_finished_process_does_not_hang():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1)
        return "done"

    child_proc = sim.process(child(sim))

    def parent(sim):
        yield sim.timeout(10)  # child finished long ago
        value = yield child_proc
        results.append(value)

    sim.process(parent(sim))
    sim.run_until_processes_done()
    assert results == ["done"]


def test_run_until_bounds_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)

    sim.process(proc(sim))
    assert sim.run(until=40) == 40
    assert sim.now == 40


def test_deadlock_detection():
    sim = Simulator()
    gate = sim.event("never")

    def proc(sim):
        yield gate

    sim.process(proc(sim), name="stuck")
    with pytest.raises(SimulationError, match="stuck"):
        sim.run_until_processes_done()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def child(sim, delay):
        yield sim.timeout(delay)
        return delay

    def parent(sim):
        procs = [sim.process(child(sim, d)) for d in (3, 9, 5)]
        values = yield sim.all_of(procs)
        done_at.append((sim.now, values))

    sim.process(parent(sim))
    sim.run()
    assert done_at == [(9, [3, 9, 5])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    fired = []

    def parent(sim):
        values = yield sim.all_of([])
        fired.append((sim.now, values))

    sim.process(parent(sim))
    sim.run()
    assert fired == [(0, [])]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 17

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


class TestHotLoopFastPaths:
    """The micro-optimized run loop must keep every semantic guarantee."""

    def test_finished_processes_are_pruned(self):
        sim = Simulator()

        def worker(sim):
            yield sim.timeout(3)

        sim.process(worker(sim))
        sim.process(worker(sim))
        sim.run_until_processes_done()
        assert sim._processes == []

    def test_pruning_allows_fresh_rounds(self):
        sim = Simulator()
        log = []

        def worker(sim, tag):
            yield sim.timeout(1)
            log.append((tag, sim.now))

        sim.process(worker(sim, "a"))
        sim.run_until_processes_done()
        sim.process(worker(sim, "b"))
        sim.run_until_processes_done()
        assert log == [("a", 1), ("b", 2)]

    def test_deadlock_detection_survives_optimization(self):
        sim = Simulator()

        def stuck(sim):
            yield sim.event("never")

        sim.process(stuck(sim), name="stuck-proc")
        with pytest.raises(SimulationError, match="stuck-proc"):
            sim.run_until_processes_done(limit=100)

    def test_bounded_run_leaves_future_events_queued(self):
        sim = Simulator()
        log = []

        def worker(sim):
            yield sim.timeout(10)
            log.append(sim.now)

        sim.process(worker(sim))
        assert sim.run(until=5) == 5
        assert log == []
        sim.run()
        assert log == [10]

    def test_multi_waiter_event_resumes_all(self):
        sim = Simulator()
        woken = []

        def waiter(sim, ev, tag):
            yield ev
            woken.append(tag)

        ev = sim.event()
        for tag in ("x", "y", "z"):
            sim.process(waiter(sim, ev, tag))

        def firer(sim, ev):
            yield sim.timeout(2)
            ev.succeed()

        sim.process(firer(sim, ev))
        sim.run()
        assert woken == ["x", "y", "z"]

    def test_timeout_carries_delay_without_formatted_name(self):
        sim = Simulator()
        timeout = sim.timeout(7)
        assert timeout.delay == 7
        assert timeout.triggered

    def test_timeout_initializes_every_event_slot(self):
        """Timeout.__init__ inlines Event.__init__ for speed; if a field
        is ever added to Event, this forces the inline copy to follow."""
        from repro.sim.engine import Event
        sim = Simulator()
        timeout = sim.timeout(1)
        for slot in Event.__slots__:
            getattr(timeout, slot)  # AttributeError = drifted inline
