"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5)
        seen.append(sim.now)
        yield sim.timeout(7)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [5, 12]


def test_zero_timeout_runs_same_cycle():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(0)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        order.append((sim.now, name))

    sim.process(worker(sim, "slow", 10))
    sim.process(worker(sim, "fast", 3))
    sim.run()
    assert order == [(3, "fast"), (10, "slow")]


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    gate = sim.event("gate")
    got = []

    def waiter(sim):
        value = yield gate
        got.append((sim.now, value))

    def firer(sim):
        yield sim.timeout(4)
        gate.succeed("payload")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert got == [(4, "payload")]


def test_event_cannot_fire_twice():
    sim = Simulator()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_join_running_process_returns_value():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(6)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(6, 42)]


def test_join_already_finished_process_does_not_hang():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1)
        return "done"

    child_proc = sim.process(child(sim))

    def parent(sim):
        yield sim.timeout(10)  # child finished long ago
        value = yield child_proc
        results.append(value)

    sim.process(parent(sim))
    sim.run_until_processes_done()
    assert results == ["done"]


def test_run_until_bounds_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)

    sim.process(proc(sim))
    assert sim.run(until=40) == 40
    assert sim.now == 40


def test_deadlock_detection():
    sim = Simulator()
    gate = sim.event("never")

    def proc(sim):
        yield gate

    sim.process(proc(sim), name="stuck")
    with pytest.raises(SimulationError, match="stuck"):
        sim.run_until_processes_done()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def child(sim, delay):
        yield sim.timeout(delay)
        return delay

    def parent(sim):
        procs = [sim.process(child(sim, d)) for d in (3, 9, 5)]
        values = yield sim.all_of(procs)
        done_at.append((sim.now, values))

    sim.process(parent(sim))
    sim.run()
    assert done_at == [(9, [3, 9, 5])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    fired = []

    def parent(sim):
        values = yield sim.all_of([])
        fired.append((sim.now, values))

    sim.process(parent(sim))
    sim.run()
    assert fired == [(0, [])]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 17

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


class TestHotLoopFastPaths:
    """The micro-optimized run loop must keep every semantic guarantee."""

    def test_finished_processes_are_pruned(self):
        sim = Simulator()

        def worker(sim):
            yield sim.timeout(3)

        sim.process(worker(sim))
        sim.process(worker(sim))
        sim.run_until_processes_done()
        assert sim._processes == []

    def test_pruning_allows_fresh_rounds(self):
        sim = Simulator()
        log = []

        def worker(sim, tag):
            yield sim.timeout(1)
            log.append((tag, sim.now))

        sim.process(worker(sim, "a"))
        sim.run_until_processes_done()
        sim.process(worker(sim, "b"))
        sim.run_until_processes_done()
        assert log == [("a", 1), ("b", 2)]

    def test_deadlock_detection_survives_optimization(self):
        sim = Simulator()

        def stuck(sim):
            yield sim.event("never")

        sim.process(stuck(sim), name="stuck-proc")
        with pytest.raises(SimulationError, match="stuck-proc"):
            sim.run_until_processes_done(limit=100)

    def test_bounded_run_leaves_future_events_queued(self):
        sim = Simulator()
        log = []

        def worker(sim):
            yield sim.timeout(10)
            log.append(sim.now)

        sim.process(worker(sim))
        assert sim.run(until=5) == 5
        assert log == []
        sim.run()
        assert log == [10]

    def test_multi_waiter_event_resumes_all(self):
        sim = Simulator()
        woken = []

        def waiter(sim, ev, tag):
            yield ev
            woken.append(tag)

        ev = sim.event()
        for tag in ("x", "y", "z"):
            sim.process(waiter(sim, ev, tag))

        def firer(sim, ev):
            yield sim.timeout(2)
            ev.succeed()

        sim.process(firer(sim, ev))
        sim.run()
        assert woken == ["x", "y", "z"]

    def test_timeout_carries_delay_without_formatted_name(self):
        sim = Simulator()
        timeout = sim.timeout(7)
        assert timeout.delay == 7
        assert timeout.triggered

    def test_timeout_initializes_every_event_slot(self):
        """Timeout.__init__ inlines Event.__init__ for speed; if a field
        is ever added to Event, this forces the inline copy to follow."""
        from repro.sim.engine import Event
        sim = Simulator()
        timeout = sim.timeout(1)
        for slot in Event.__slots__:
            getattr(timeout, slot)  # AttributeError = drifted inline


class TestClockSemantics:
    """run() vs run_until_processes_done() treat their bound differently:
    ``until`` is a target the clock reaches even on early drain (SimPy
    semantics); ``limit`` is only a safety horizon and must never
    inflate the clock past the last dispatched event."""

    def test_run_advances_clock_to_until_when_queue_drains_early(self):
        # Regression: the queue empties at cycle 3, but run(until=50)
        # must still leave the clock at 50, not 3.
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(3)

        sim.process(proc(sim))
        assert sim.run(until=50) == 50
        assert sim.now == 50

    def test_run_on_empty_queue_advances_to_until(self):
        sim = Simulator()
        assert sim.run(until=25) == 25
        assert sim.now == 25

    def test_run_without_until_stops_at_last_event(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(7)

        sim.process(proc(sim))
        assert sim.run() == 7
        assert sim.now == 7

    def test_clock_resumes_from_until_after_early_drain(self):
        # Events scheduled after an early-drained bounded run must fire
        # relative to the advanced clock.
        sim = Simulator()
        log = []

        def first(sim):
            yield sim.timeout(2)

        sim.process(first(sim))
        sim.run(until=10)

        def second(sim):
            yield sim.timeout(5)
            log.append(sim.now)

        sim.process(second(sim))
        sim.run()
        assert log == [15]

    def test_run_until_processes_done_keeps_clock_at_last_event(self):
        # The limit is a runaway guard, not a target: a workload that
        # finishes at cycle 42 must report now == 42, not the horizon.
        # Inflating the clock here would change every makespan-derived
        # metric in the serving benches.
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(42)

        sim.process(proc(sim))
        sim.run_until_processes_done(limit=1_000_000)
        assert sim.now == 42


class TestAllOfInternals:
    """all_of uses a counted-down state cell (no dict captures)."""

    def test_results_preserve_argument_order_not_finish_order(self):
        sim = Simulator()
        seen = []

        def child(sim, delay):
            yield sim.timeout(delay)
            return delay

        def parent(sim):
            procs = [sim.process(child(sim, d)) for d in (8, 1, 4)]
            values = yield sim.all_of(procs)
            seen.append(values)

        sim.process(parent(sim))
        sim.run()
        assert seen == [[8, 1, 4]]

    def test_mixed_already_triggered_and_pending_events(self):
        sim = Simulator()
        seen = []
        pre = sim.event("pre")
        pre.succeed("early")

        def firer(sim, ev):
            yield sim.timeout(3)
            ev.succeed("late")

        def parent(sim, pre, post):
            values = yield sim.all_of([pre, post])
            seen.append((sim.now, values))

        post = sim.event("post")
        sim.process(firer(sim, post))
        sim.process(parent(sim, pre, post))
        sim.run()
        assert seen == [(3, ["early", "late"])]

    def test_same_cycle_completions_fire_gate_once(self):
        sim = Simulator()
        seen = []

        def child(sim):
            yield sim.timeout(5)
            return "v"

        def parent(sim):
            procs = [sim.process(child(sim)) for _ in range(6)]
            values = yield sim.all_of(procs)
            seen.append((sim.now, values))

        sim.process(parent(sim))
        sim.run()
        assert seen == [(5, ["v"] * 6)]


class TestSlotHygiene:
    """Hot-path objects must stay dict-free: a stray attribute (or a
    subclass missing __slots__) silently reintroduces a per-instance
    __dict__ and the allocation cost the engine rewrite removed."""

    def _assert_dictless(self, obj):
        assert not hasattr(obj, "__dict__"), (
            f"{type(obj).__name__} grew a __dict__ — check __slots__ on "
            "the class and every base")
        # Slotted classes raise AttributeError; frozen+slots dataclasses
        # raise TypeError from their regenerated __setattr__. Either way
        # a stray attribute must not silently stick.
        with pytest.raises((AttributeError, TypeError)):
            obj.stray_attribute = 1

    def test_engine_objects_have_no_dict(self):
        from repro.sim.engine import _AllOfState, _AllOfWaiter
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1)

        self._assert_dictless(sim.event("e"))
        self._assert_dictless(sim.timeout(2))
        self._assert_dictless(sim.process(proc(sim)))
        state = _AllOfState(sim.event("gate"), 2)
        self._assert_dictless(state)
        self._assert_dictless(_AllOfWaiter(state, 0))
        sim.run()

    def test_serving_objects_have_no_dict(self):
        from repro.serving.metrics import (ClusterSample, FleetSample,
                                           SessionRecord)
        from repro.serving.scheduler import ActiveSession, PendingSession
        from repro.serving.slo import session_slo
        from repro.serving.workload import TenantSession

        session = TenantSession(
            session_id=0, tenant="t0", arrival_cycle=0, rows=2, cols=2,
            memory_bytes=1 << 20, model="bert", inferences=4)
        self._assert_dictless(PendingSession(session=session))
        self._assert_dictless(ActiveSession(
            session=session, vmid=1, admit_cycle=5, strategy="exact",
            mapping_distance=0.0, mapping_connected=True,
            slo=session_slo(session), rows=2, cols=2,
            service_total=100, expected_depart=105))
        self._assert_dictless(ClusterSample(
            cycle=0, free_cores=12, utilization=0.5, fragmentation=0.0,
            queue_length=1))
        self._assert_dictless(FleetSample(
            cycle=0, queue_length=1, free_cores=(12,),
            utilization=(0.5,), fragmentation=(0.0,)))
        self._assert_dictless(SessionRecord(
            session_id=0, tenant="t0", model="bert", cores=4,
            arrival_cycle=0, admit_cycle=5, depart_cycle=105,
            strategy="exact", mapping_distance=0.0,
            mapping_connected=True))
