"""Unit tests for the multi-chip fleet: placement, migration, defrag."""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import MB, sim_config
from repro.arch.topology import MeshShape
from repro.core.hypervisor import Hypervisor
from repro.core.vnpu import VNpuSpec
from repro.errors import HypervisorError, ServingError
from repro.serving import (
    BestFitPlacement,
    DefragPolicy,
    FleetScheduler,
    LeastLoadedPlacement,
    PendingSession,
    PowerOfTwoPlacement,
    TenantSession,
    available_placements,
    generate_fleet_trace,
    register_placement,
    resolve_placement,
    unregister_placement,
)
from repro.serving.fleet import FleetChip
from repro.sim import Simulator


def session(session_id=0, arrival=0, rows=2, cols=2, model="alexnet",
            inferences=10):
    return TenantSession(
        session_id=session_id, tenant=f"t{session_id}",
        arrival_cycle=arrival, rows=rows, cols=cols,
        memory_bytes=rows * cols * 8 * MB, model=model,
        inferences=inferences,
    )


def make_fleet_chips(count=3, cores=16):
    sim = Simulator()
    chips = []
    for index in range(count):
        chip = Chip(sim_config(cores), sim=sim)
        chips.append(FleetChip(index, chip, Hypervisor(chip)))
    return chips


class TestPlacementRegistry:
    def test_builtins_registered(self):
        for name in ("least_loaded", "best_fit", "power_of_two"):
            assert name in available_placements()

    def test_unknown_name_raises(self):
        with pytest.raises(ServingError):
            resolve_placement("round-robin")

    def test_custom_placement_registers_and_unregisters(self):
        class FirstChip:
            name = "test-first-chip"

            def rank(self, chips, session):
                return [c for c in chips
                        if session.core_count <= c.free_cores()][:1]

        register_placement(FirstChip())
        try:
            assert resolve_placement("test-first-chip")
        finally:
            unregister_placement("test-first-chip")


class TestPlacementPolicies:
    def test_least_loaded_prefers_emptiest_chip(self):
        chips = make_fleet_chips()
        chips[0].hypervisor.create_vnpu(
            VNpuSpec("a", MeshShape(3, 3), 32 * MB))
        chips[2].hypervisor.create_vnpu(
            VNpuSpec("b", MeshShape(2, 2), 32 * MB))
        ranked = LeastLoadedPlacement().rank(chips, session())
        assert [c.index for c in ranked] == [1, 2, 0]

    def test_least_loaded_excludes_chips_without_room(self):
        chips = make_fleet_chips(count=2)
        chips[0].hypervisor.create_vnpu(
            VNpuSpec("a", MeshShape(4, 4), 32 * MB))
        ranked = LeastLoadedPlacement().rank(chips, session(rows=2, cols=2))
        assert [c.index for c in ranked] == [1]

    def test_best_fit_prefers_lower_mapping_distance(self):
        chips = make_fleet_chips(count=2)
        # Chip 0: several small tenants shatter the free set; chip 1 keeps
        # a pristine contiguous region after one compact allocation.
        hv0 = chips[0].hypervisor
        for name, shape in (("a", (1, 3)), ("b", (1, 2)), ("c", (2, 2))):
            hv0.create_vnpu(VNpuSpec(name, MeshShape(*shape), 16 * MB))
        chips[1].hypervisor.create_vnpu(
            VNpuSpec("d", MeshShape(2, 2), 16 * MB))
        ranked = BestFitPlacement().rank(chips, session(rows=2, cols=3))
        assert ranked, "best-fit found no candidate"
        # Chip 1 still has a pristine 2x3 region -> distance 0 -> first.
        assert ranked[0].index == 1

    def test_power_of_two_is_deterministic_per_session(self):
        chips = make_fleet_chips(count=4)
        policy = PowerOfTwoPlacement(seed=3)
        one = [c.index for c in policy.rank(chips, session(session_id=9))]
        two = [c.index for c in policy.rank(chips, session(session_id=9))]
        assert one == two
        assert len(one) == 2

    def test_power_of_two_with_two_chips_ranks_both(self):
        chips = make_fleet_chips(count=2)
        ranked = PowerOfTwoPlacement().rank(chips, session())
        assert len(ranked) == 2


class TestDefragPolicy:
    def test_threshold_validated(self):
        with pytest.raises(ServingError):
            DefragPolicy(fragmentation_threshold=1.5)

    def test_migration_budget_validated(self):
        with pytest.raises(ServingError):
            DefragPolicy(max_migrations_per_trigger=0)


class TestFleetScheduler:
    def make(self, chips=2, cores=16, **kwargs):
        return FleetScheduler.homogeneous(chips, cores=cores, **kwargs)

    def test_needs_at_least_one_chip(self):
        with pytest.raises(ServingError):
            FleetScheduler([])
        with pytest.raises(ServingError):
            FleetScheduler.homogeneous(0)

    def test_chips_share_one_clock(self):
        fleet = self.make(chips=3)
        sims = {fc.chip.sim for fc in fleet.chips}
        assert sims == {fleet.sim}

    def test_serves_whole_trace_and_frees_every_chip(self):
        fleet = self.make(chips=3)
        trace = generate_fleet_trace(11, 30, chips=3, max_cores=16)
        metrics = fleet.serve(trace)
        assert len(metrics.records) + metrics.rejected == len(trace)
        assert metrics.rejected == 0
        for fleet_chip in fleet.chips:
            assert fleet_chip.hypervisor.vnpus == []
            assert fleet_chip.hypervisor.buddy.fully_coalesced

    def test_sessions_spread_across_chips(self):
        fleet = self.make(chips=3)
        trace = generate_fleet_trace(5, 30, chips=3, max_cores=16,
                                     mean_interarrival_cycles=600_000)
        metrics = fleet.serve(trace)
        assert len({r.chip for r in metrics.records}) > 1

    def test_oversized_session_rejected_at_submit(self):
        fleet = self.make(chips=2, cores=16)
        with pytest.raises(ServingError):
            fleet.submit([session(rows=6, cols=6)])

    def test_unknown_model_rejected_at_submit(self):
        fleet = self.make()
        with pytest.raises(ServingError):
            fleet.submit([session(model="skynet")])

    def test_run_before_submit_raises(self):
        with pytest.raises(ServingError):
            self.make().run()

    def test_invalid_policy_instance_rejected(self):
        with pytest.raises(ServingError):
            self.make(policy=object())

    def test_defrag_migration_extends_session_timeline(self):
        """A migrated session departs later than its solo service time."""
        fleet = self.make(chips=3, cores=16, defrag=DefragPolicy(0.1))
        trace = generate_fleet_trace(11, 60, chips=3, max_cores=16,
                                     mean_interarrival_cycles=20_000_000,
                                     fragmentation_heavy=True)
        metrics = fleet.serve(trace)
        assert metrics.migrations > 0
        assert metrics.migration_cycles > 0
        migrated = [r for r in metrics.records if r.migrations > 0]
        assert migrated, "no session carried a migration count"
        assert sum(r.migrations for r in migrated) == metrics.migrations

    def test_fleet_summary_shape(self):
        fleet = self.make(chips=2)
        metrics = fleet.serve(generate_fleet_trace(3, 10, chips=2,
                                                   max_cores=16))
        summary = metrics.summary(500_000_000)
        fleet_digest = summary["fleet"]
        assert fleet_digest["chips"] == 2
        assert len(fleet_digest["per_chip_utilization_time_weighted"]) == 2
        assert fleet_digest["migrations"] == 0


class TestMigrateVnpuApi:
    def test_unknown_vmid_raises(self):
        hypervisor = Hypervisor(Chip(sim_config(16)))
        with pytest.raises(HypervisorError):
            hypervisor.migrate_vnpu(404)

    def test_unknown_strategy_raises_before_any_mutation(self):
        hypervisor = Hypervisor(Chip(sim_config(16)))
        vnpu = hypervisor.create_vnpu(
            VNpuSpec("t", MeshShape(2, 2), 32 * MB))
        with pytest.raises(HypervisorError):
            hypervisor.migrate_vnpu(vnpu.vmid, strategy="teleport")
        assert hypervisor.vnpu(vnpu.vmid) is vnpu

    def test_in_place_compaction_reduces_fragmentation(self):
        """Destroying a corner tenant then migrating the stranded one
        re-places it into the freed contiguous region."""
        hypervisor = Hypervisor(Chip(sim_config(16)))
        first = hypervisor.create_vnpu(
            VNpuSpec("a", MeshShape(2, 4), 32 * MB))
        second = hypervisor.create_vnpu(
            VNpuSpec("b", MeshShape(2, 4), 32 * MB))
        hypervisor.destroy_vnpu(first.vmid)
        migrated, cost = hypervisor.migrate_vnpu(second.vmid)
        assert migrated.vmid == second.vmid
        assert cost > 0
        assert migrated.mapping.connected
        assert len(hypervisor.vnpus) == 1
